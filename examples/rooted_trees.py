"""Rooted trees: certificates, witnesses, and orientation-powered coloring.

§1.4 contrasts the paper's unrooted-tree result with the rooted-tree
world of [8], where the parent-child orientation enables certificate-based
decision procedures.  This example shows the rooted side:

1. a greatest-fixpoint *certificate of unbounded solvability* decides
   whether a rooted LCL is solvable on all trees — constructively (the
   certificate drives a top-down labeling) and refutably (an empty
   certificate comes with a concrete unsolvable witness tree);
2. the orientation collapses Θ(log* n) machinery: Cole–Vishkin on parent
   pointers 3-colors arbitrary bounded-degree rooted trees, no Linial
   polynomials needed.

Run:  python examples/rooted_trees.py
"""

import itertools

from repro.graphs.core import HalfEdgeLabeling
from repro.graphs.ids import random_ids
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm
from repro.rooted import (
    RootedCVColoring,
    RootedLCL,
    certificate_family,
    check_rooted_solution,
    complete_rooted_tree,
    is_solvable_on_all,
    random_rooted_tree,
    solvable_on_tree,
    top_down_labeling,
    unsolvability_witness,
)


def build_increasing(num_labels: int, max_arity: int) -> RootedLCL:
    """Children must carry strictly larger labels — dies at depth |Σ|."""
    labels = list(range(num_labels))
    configurations = [(label, ()) for label in labels]
    for label in labels:
        larger = [x for x in labels if x > label]
        for arity in range(1, max_arity + 1):
            for combo in itertools.combinations_with_replacement(larger, arity):
                configurations.append((label, combo))
    return RootedLCL(labels, configurations, name="strictly-increasing")


def build_parent_distinct(num_colors: int, max_arity: int) -> RootedLCL:
    colors = [f"c{i}" for i in range(num_colors)]
    configurations = []
    for label in colors:
        others = [c for c in colors if c != label]
        for arity in range(0, max_arity + 1):
            for combo in itertools.combinations_with_replacement(others, arity):
                configurations.append((label, combo))
    return RootedLCL(colors, configurations, name="rooted-coloring")


def main() -> None:
    # ------------------------------------------------ certificates at work
    coloring = build_parent_distinct(2, max_arity=3)
    family = certificate_family(coloring, {0, 1, 2, 3})
    rendered = {arity: sorted(labels) for arity, labels in sorted(family.items())}
    print(f"{coloring.name}: certificate family = {rendered}")
    tree = random_rooted_tree(40, max_children=3, seed=11)
    labeling = top_down_labeling(coloring, tree, family)
    assert check_rooted_solution(coloring, tree, labeling) == []
    print(f"  top-down labeling of a random 40-node tree: valid")

    increasing = build_increasing(3, max_arity=2)
    print(f"\n{increasing.name}: solvable on all binary trees? "
          f"{is_solvable_on_all(increasing, {0, 2})}")
    witness = unsolvability_witness(increasing, branching=2)
    print(
        f"  witness: complete binary tree of height {witness.height} "
        f"({witness.num_nodes} nodes) is unsolvable"
    )
    assert solvable_on_tree(increasing, witness) is None
    shallow = complete_rooted_tree(2, witness.height - 1)
    assert solvable_on_tree(increasing, shallow) is not None
    print(f"  ...while height {witness.height - 1} still is solvable — the "
          "label budget argument, measured")

    # --------------------------------- orientation-powered 3-coloring
    tree = random_rooted_tree(60, max_children=3, seed=3)
    graph, inputs = tree.as_graph()
    result = run_local_algorithm(
        graph, RootedCVColoring(), inputs=inputs, ids=random_ids(graph, seed=1)
    )
    problem = catalog.coloring(3, max_degree=graph.max_degree)
    assert is_valid_solution(
        problem, graph, HalfEdgeLabeling.constant(graph, catalog.NO_INPUT), result.outputs
    )
    print(
        f"\nrooted CV: 3-colored a 60-node rooted tree with locality "
        f"{result.max_radius_used} (log* regime, no Linial machinery)"
    )
    print("\nrooted trees OK.")


if __name__ == "__main__":
    main()
