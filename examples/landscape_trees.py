"""The Figure-1 trees panel, measured: classes O(1), Θ(log* n), Θ(log n), Θ(n).

Runs one representative algorithm per inhabited complexity class on
bounded-degree trees across a grid of sizes, records the locality each
node *actually used* (the simulator's charge meter), fits the growth
shape, and prints the landscape table — including the mechanical check
that no measured series falls in the paper's forbidden ω(1)–o(log* n)
band (Theorem 1.1).

Run:  python examples/landscape_trees.py
"""

from repro.graphs import complete_regular_tree, path, random_ids, random_tree
from repro.landscape import LandscapePanel
from repro.local import run_local_algorithm
from repro.local.algorithms import (
    AdaptivePeeling,
    ColorClassMIS,
    LinialColoring,
    TwoHopMaxDegree,
)
from repro.local.model import LocalAlgorithm


class EccentricityProbe(LocalAlgorithm):
    """A genuinely global problem: output the node's eccentricity."""

    name = "eccentricity-probe"

    def radius(self, n):
        return max(1, n)

    def run(self, ctx):
        radius = 1
        while radius <= ctx.declared_n:
            ball = ctx.ball(radius)
            if max(ball.distance) < radius:
                # The whole component is strictly inside the ball.
                return {p: max(ball.distance) for p in range(ctx.degree)}
            radius = min(2 * radius, ctx.declared_n)
            if radius == ctx.declared_n:
                ball = ctx.ball(radius)
                return {p: max(ball.distance) for p in range(ctx.degree)}
        raise RuntimeError("graph larger than declared n")


def measured_locality(graph, algorithm, seed, sample=24):
    step = max(1, graph.num_nodes // sample)
    nodes = list(range(0, graph.num_nodes, step))
    result = run_local_algorithm(
        graph,
        algorithm,
        ids=random_ids(graph, seed=seed),
        nodes=nodes,
    )
    return max(result.radius_per_node)


def balanced_tree(n, _delta, _seed):
    """The complete binary-branching tree with ~n nodes (rake depth log n)."""
    depth = max(1, (n // 3).bit_length())
    return complete_regular_tree(3, depth)


def main() -> None:
    ns = [2**k for k in range(5, 11)]
    panel = LandscapePanel("LCL landscape on trees (Figure 1, top left)")

    rows = [
        ("two-hop-max-degree", "O(1)", lambda: TwoHopMaxDegree(), random_tree),
        ("linial-(Δ+1)-coloring", "Theta(log* n)", lambda: LinialColoring(3), random_tree),
        (
            "mis-by-color-sweep",
            "Theta(log* n)",
            lambda: ColorClassMIS(LinialColoring(3)),
            random_tree,
        ),
        ("rake-decomposition-depth", "Theta(log n)", lambda: AdaptivePeeling(), balanced_tree),
        ("eccentricity", "Theta(n)", lambda: EccentricityProbe(), lambda n, d, seed: path(n)),
    ]
    for name, expected, make_algorithm, make_graph in rows:
        values = []
        for n in ns:
            graph = make_graph(n, 3, 7)
            values.append(measured_locality(graph, make_algorithm(), seed=n))
        panel.add(name, expected, ns, values)

    print(panel.render())
    assert not panel.gap_violations(), "Theorem 1.1: the gap must be empty"


if __name__ == "__main__":
    main()
