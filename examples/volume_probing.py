"""The VOLUME model: probe complexities and the Theorem 4.1 machinery.

Measures the probe-complexity landscape on consistently oriented cycles
(Figure 1, bottom right): a constant-probe aggregate, the Θ(log* n)
chain Cole–Vishkin coloring, and the Θ(n) component count.  Then
exercises the two executable halves of Theorem 4.1: order-invariance
checking (Definition 2.10) and the Theorem 2.11 fooling speedup, plus
the §2.2 LCA bridge (far probes counted, ID-range padding).

Run:  python examples/volume_probing.py
"""

from repro.graphs import HalfEdgeLabeling, cycle, random_ids, star
from repro.landscape import LandscapePanel
from repro.lcl import catalog, is_valid_solution
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.volume import (
    ChainColeVishkin,
    ComponentCount,
    NeighborhoodAggregate,
    check_volume_order_invariance,
    far_probe_free_equivalent,
    fooled_constant_volume,
    run_volume_algorithm,
)
from repro.volume.lca import run_lca_algorithm


def main() -> None:
    ns = [2**k for k in range(4, 11)]
    panel = LandscapePanel("VOLUME landscape (Figure 1, bottom right)")

    aggregate_values, chain_values, component_values = [], [], []
    for n in ns:
        graph = cycle(n)
        inputs = orient_path_inputs(graph)
        ids = random_ids(graph, seed=n)

        aggregate = run_volume_algorithm(graph, NeighborhoodAggregate(2), ids=ids)
        aggregate_values.append(aggregate.max_probes_used)

        chain = run_volume_algorithm(graph, ChainColeVishkin(), inputs=inputs, ids=ids)
        chain_values.append(chain.max_probes_used)
        assert is_valid_solution(
            catalog.coloring(3, 2),
            graph,
            HalfEdgeLabeling.constant(graph, catalog.NO_INPUT),
            chain.outputs,
        )

        component = run_volume_algorithm(graph, ComponentCount(), ids=ids)
        component_values.append(component.max_probes_used)

    panel.add("neighborhood-max-degree", "O(1)", ns, aggregate_values)
    panel.add("chain-CV 3-coloring", "Theta(log* n)", ns, chain_values)
    panel.add("component-count", "Theta(n)", ns, component_values)
    print(panel.render())
    assert not panel.gap_violations(), "Theorem 1.3: the gap must be empty"
    print()

    # ---------------------------------------------------- order invariance
    hub = star(3)
    print(
        "aggregate order-invariant:",
        check_volume_order_invariance(NeighborhoodAggregate(3), hub, ids=[4, 8, 15, 16]),
    )
    ring = cycle(12)
    print(
        "chain-CV order-invariant:  ",
        check_volume_order_invariance(
            ChainColeVishkin(),
            ring,
            ids=random_ids(ring, seed=5),
            inputs=orient_path_inputs(ring),
            trials=8,
        ),
    )

    # ------------------------------------------------- Theorem 2.11 fooling
    fooled = fooled_constant_volume(NeighborhoodAggregate(2), n0=32)
    for n in (64, 512):
        graph = cycle(n)
        result = run_volume_algorithm(graph, fooled, ids=random_ids(graph, seed=n))
        print(
            f"fooled aggregate on n={n}: {result.max_probes_used} probes "
            f"(budget pinned at T(32)={fooled.probes(n)})"
        )
        assert result.max_probes_used <= fooled.probes(n)

    # ----------------------------------------------------------- LCA bridge
    graph = cycle(16)
    lca_result = run_lca_algorithm(
        graph, ChainColeVishkin(), inputs=orient_path_inputs(graph)
    )
    print(
        f"\nLCA run: {lca_result.max_probes_used} probes, "
        f"{lca_result.far_probes_used} far probes (none needed — §2.2)"
    )
    padded = far_probe_free_equivalent(ChainColeVishkin(id_exponent=1))
    poly_ids = random_ids(graph, seed=3, exponent=3)
    padded_result = run_volume_algorithm(
        graph, padded, inputs=orient_path_inputs(graph), ids=poly_ids
    )
    assert is_valid_solution(
        catalog.coloring(3, 2),
        graph,
        HalfEdgeLabeling.constant(graph, catalog.NO_INPUT),
        padded_result.outputs,
    )
    print("range-padded algorithm handles polynomial-range IDs: valid coloring")
    print("\nvolume probing OK.")


if __name__ == "__main__":
    main()
