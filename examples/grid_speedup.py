"""Oriented grids: the §5 landscape and the Proposition 5.3–5.5 speedup.

Demonstrates, on 2-dimensional oriented toroidal grids:

* the three inhabited classes of Corollary 1.5 — a 0-round orientation
  problem, the Θ(log* n) product Cole–Vishkin coloring, and the
  Θ(n^{1/d}) side-length measurement;
* PROD-LOCAL order invariance (Definition 5.2): the 0-round problem is
  order-invariant, the coloring is not (it reads raw identifier bits);
* the Prop. 5.5 synthesis: fooling the order-invariant algorithm with a
  fixed n₀ and the orientation-derived canonical identifiers yields a
  constant-round algorithm that stays correct on much larger grids.

Run:  python examples/grid_speedup.py
"""

from repro.graphs import HalfEdgeLabeling
from repro.grids import (
    DimensionLengthProbe,
    FollowDimensionOrientation,
    GridProductColoring,
    OrientedGrid,
    check_prod_order_invariance,
    coordinate_prod_ids,
    fooled_grid_algorithm,
    prod_ids,
)
from repro.landscape import LandscapePanel
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm


def no_inputs(graph):
    return HalfEdgeLabeling.constant(graph, catalog.NO_INPUT)


def main() -> None:
    sides = [5, 7, 10, 14, 20]
    ns = [s * s for s in sides]
    panel = LandscapePanel("LCL landscape on oriented 2-d grids (Figure 1, top right)")

    follow_values, coloring_values, length_values = [], [], []
    for side in sides:
        grid = OrientedGrid([side, side])
        inputs = grid.orientation_inputs()
        ids = prod_ids(grid, seed=side)

        follow = run_local_algorithm(grid.graph, FollowDimensionOrientation(), inputs=inputs)
        follow_values.append(follow.max_radius_used)

        coloring = run_local_algorithm(
            grid.graph, GridProductColoring(dimensions=2), inputs=inputs, ids=ids
        )
        coloring_values.append(coloring.max_radius_used)
        assert is_valid_solution(
            catalog.coloring(9, 4), grid.graph, no_inputs(grid.graph), coloring.outputs
        )

        probe = run_local_algorithm(grid.graph, DimensionLengthProbe(), inputs=inputs)
        length_values.append(probe.max_radius_used)

    panel.add("follow-orientation (sinkless)", "O(1)", ns, follow_values)
    panel.add("product-CV 9-coloring", "Theta(log* n)", ns, coloring_values)
    panel.add("dim-0 side length", "Theta(n^{1/2})", ns, length_values)
    print(panel.render())
    assert not panel.gap_violations(), "Theorem 1.4: the gap must be empty"
    print()

    # ---------------------------------------------------- order invariance
    grid = OrientedGrid([6, 6])
    invariant = check_prod_order_invariance(
        FollowDimensionOrientation(), grid, prod_ids(grid, seed=1)
    )
    not_invariant = check_prod_order_invariance(
        GridProductColoring(dimensions=2), grid, prod_ids(grid, seed=1), trials=8
    )
    print(f"follow-orientation order-invariant: {invariant}")
    print(f"product coloring order-invariant:   {not_invariant}")
    assert invariant and not not_invariant

    # -------------------------------------------------------- Prop 5.5 demo
    fooled = fooled_grid_algorithm(FollowDimensionOrientation(), n0=9)
    for side in (6, 12):
        grid = OrientedGrid([side, side])
        result = run_local_algorithm(
            grid.graph,
            fooled,
            inputs=grid.orientation_inputs(),
            ids=coordinate_prod_ids(grid),
        )
        assert is_valid_solution(
            catalog.sinkless_orientation(4),
            grid.graph,
            no_inputs(grid.graph),
            result.outputs,
        )
        print(
            f"fooled(n0=9) on {side}x{side} grid: radius {result.max_radius_used}, valid"
        )
    print("\ngrid speedup OK: constant locality survives arbitrarily large grids.")


if __name__ == "__main__":
    main()
