"""Quickstart: define an LCL, run the gap pipeline, verify the synthesis.

This walks the paper's headline result (Theorem 3.11) end to end on the
"echo" problem (copy the opposite input across every edge — an LCL *with
inputs*, complexity exactly 1):

1. build the node-edge-checkable problem;
2. run the round elimination walk ``Π, f(Π), …`` until some ``f^k(Π)``
   is deterministically 0-round solvable;
3. lift the 0-round table back to a k-round LOCAL algorithm (Lemma 3.9);
4. run the synthesized algorithm on a random forest and check the output.

Run:  python examples/quickstart.py
"""

from repro.graphs import HalfEdgeLabeling, random_forest, random_ids
from repro.lcl import catalog, check_solution
from repro.local import run_local_algorithm
from repro.roundelim import speedup
from repro.utils.rng import SplittableRNG


def main() -> None:
    problem = catalog.echo(max_degree=3)
    print("The LCL under study:")
    print(problem.summary())
    print()

    # --- the Theorem 3.10/3.11 walk -------------------------------------
    result = speedup(problem, max_steps=3)
    print(result.summary())
    assert result.status == "constant", "echo is a constant-time problem"
    algorithm = result.algorithm
    print(f"synthesized algorithm: {algorithm.name}, radius {algorithm.radius(10**6)}")
    print()

    # --- run it on a concrete forest -------------------------------------
    rng = SplittableRNG("quickstart")
    graph = random_forest([9, 6, 4], max_degree=3, seed=7)
    inputs = HalfEdgeLabeling(
        graph,
        {h: str(rng.integer(0, 1)) for h in graph.half_edges()},
    )
    ids = random_ids(graph, seed=13)
    simulation = run_local_algorithm(graph, algorithm, inputs=inputs, ids=ids)
    report = check_solution(problem, graph, inputs, simulation.outputs)

    print(f"forest: {graph}, radius used: {simulation.max_radius_used}")
    print(f"solution check: {report}")
    assert report.is_valid

    # The synthesized algorithm really echoes the opposite input:
    sample = next(iter(graph.half_edges()))
    mine, guess = simulation.outputs[sample]
    opposite = graph.opposite(sample)
    print(
        f"half-edge {sample}: input {inputs[sample]!r}, "
        f"output ({mine!r}, guess {guess!r}), opposite input {inputs[opposite]!r}"
    )
    assert guess == inputs[opposite]
    print("\nquickstart OK: a constant-round algorithm was derived, run, and verified.")


if __name__ == "__main__":
    main()
