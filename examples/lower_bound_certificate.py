"""Round elimination as a lower-bound tool: sinkless orientation.

The "standard use case" of round elimination (§1.1) is certifying that a
concrete problem has no fast algorithm.  This example:

1. walks sinkless orientation through ``f = R̄∘R`` and finds that the
   sequence stabilizes after one step into a problem isomorphic to its
   own image — a *fixed point*;
2. checks that the fixed point is not 0-round solvable, which (by the
   Theorem 3.10 walk) rules out every o(log* n) algorithm on trees;
3. prints the Theorem 3.4 failure-probability trajectory showing *why*
   iterating cannot help: each elimination step multiplies the local
   failure probability by the huge constant ``S``;
4. contrasts with the echo problems, whose sequences instead terminate in
   0-round-solvable problems (Question 1.7 semidecision, CONSTANT side).

Run:  python examples/lower_bound_certificate.py
"""

import math

from repro.decidability import find_fixed_point_certificate, semidecide_constant_time
from repro.lcl import catalog
from repro.roundelim.failure_bounds import (
    FailureBoundParameters,
    failure_after_steps,
    n0_conditions,
    theorem_3_4_S,
)


def main() -> None:
    so = catalog.sinkless_orientation(3)
    print(so.summary())
    print()

    certificate = find_fixed_point_certificate(so, max_steps=3)
    assert certificate is not None and certificate.certifies_lower_bound
    print(certificate.summary())
    print("fixed-point problem:")
    print(certificate.fixed_problem.summary())
    print()

    # --------------------------- Theorem 3.4 quantitative bookkeeping ----
    params = FailureBoundParameters(
        delta=3,
        sigma_in_size=1,
        sigma_out_size=len(so.sigma_out),
        sigma_out_R_size=2 ** len(so.sigma_out) - 1,
        runtime=3,
    )
    print(f"log10 S (one elimination step): {theorem_3_4_S(params) / math.log(10):.1f}")
    trajectory = failure_after_steps(params, math.log(1e-12), steps=4)
    rendered = ", ".join(f"{x / math.log(10):+.1f}" for x in trajectory)
    print(f"log10 local failure probability along the walk: {rendered}")
    print("(each step pays the factor S — the walk must stay short, which is")
    print(" why the speedup tops out exactly at o(log* n))")
    print()

    report = n0_conditions(n0=2**20, runtime_at_n0=1, delta=3, sigma_in_size=1)
    print(
        f"n0 = 2^20 feasible for the Theorem 3.10 constants? {report.feasible} "
        f"(3.2: {report.condition_3_2}, 3.3: {report.condition_3_3}, "
        f"3.4: {report.condition_3_4})"
    )
    print("(the paper's n0 is astronomically large; the executable pipeline")
    print(" instead searches for the smallest workable elimination depth)")
    print()

    # ------------------------------------ contrast: constant-time problems
    for problem in (catalog.echo(3), catalog.echo2()):
        verdict = semidecide_constant_time(problem, max_steps=3)
        print(verdict.summary())

    verdict = semidecide_constant_time(so, max_steps=3)
    print(verdict.summary())
    assert verdict.verdict == "NOT_CONSTANT"
    print("\nlower-bound certificate OK.")


if __name__ == "__main__":
    main()
