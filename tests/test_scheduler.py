"""Unit tests for :mod:`repro.scheduler`: backoff policy, leases, the
sharded task queue, journal shards, and clean multi-worker campaigns.

The end-to-end crash-recovery contract (SIGKILLed workers + resume
bit-identical to a clean serial run) lives in
``tests/test_scheduler_chaos.py``; this file covers each layer in
isolation plus the no-fault scheduler/serial equivalence.
"""

import json

import pytest

from repro.exceptions import SchedulerError, SupervisorError
from repro.scheduler import SchedulerConfig, run_scheduled_campaign
from repro.scheduler.leases import LeaseTable
from repro.scheduler.queue import ShardedTaskQueue, Task, shard_of
from repro.supervisor import (
    CampaignConfig,
    CellSpec,
    open_journal,
    register_runner,
    run_campaign,
)
from repro.supervisor.backoff import (
    TRANSIENT_CLASSIFICATIONS,
    BackoffPolicy,
    is_transient,
)
from repro.supervisor.cells import CLASSIFICATIONS
from repro.supervisor.journal import ShardWriter, load_cell_records
from repro.utils import faults


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
    for knob in (
        "REPRO_SCHED_WORKERS",
        "REPRO_SCHED_LEASE_SECS",
        "REPRO_SCHED_BACKOFF_BASE",
        "REPRO_SCHED_BACKOFF_FACTOR",
        "REPRO_SCHED_BACKOFF_MAX",
        "REPRO_SCHED_BACKOFF_JITTER",
    ):
        monkeypatch.delenv(knob, raising=False)
    faults.reset_faults()
    yield
    faults.reset_faults()


@register_runner("sched.bits")
def _bits(spec, rng):
    # RNG-stream dependent: a worker consuming stale generator state
    # (or a double-run diverging) would visibly change the value.
    return rng.child("measurement").bits(48)


CELLS = [CellSpec.make("sched.bits", "p", n, seed=n) for n in range(1, 9)]


def serial_baseline(tmp_path, cells=CELLS, seed=7, retries=1):
    """A clean serial run of the same campaign, with its journal bytes."""
    directory = tmp_path / "serial"
    directory.mkdir(exist_ok=True)
    journal = open_journal(cells, seed=seed, directory=directory)
    config = CampaignConfig(seed=seed, isolation="inline", retries=retries)
    report = run_campaign(cells, config, journal=journal)
    assert not report.quarantined
    return report, journal.path.read_bytes()


# ---------------------------------------------------------------- backoff
class TestBackoffPolicy:
    def test_delay_is_deterministic(self):
        policy = BackoffPolicy()
        a = [policy.delay(7, "cell-a", k) for k in range(4)]
        b = [policy.delay(7, "cell-a", k) for k in range(4)]
        assert a == b

    def test_delay_grows_exponentially_up_to_cap(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=0.3, jitter=0.0)
        assert policy.delay(0, "c", 0) == pytest.approx(0.1)
        assert policy.delay(0, "c", 1) == pytest.approx(0.2)
        assert policy.delay(0, "c", 2) == pytest.approx(0.3)
        assert policy.delay(0, "c", 9) == pytest.approx(0.3)

    def test_jitter_stays_within_band_and_splits_by_cell(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, max_delay=10.0, jitter=0.5)
        delays = {policy.delay(3, f"cell-{i}", 0) for i in range(32)}
        assert all(0.5 <= d <= 1.0 for d in delays)
        assert len(delays) > 1, "jitter must differ across cells"

    def test_zero_base_disables_backoff(self):
        policy = BackoffPolicy(base=0.0)
        assert policy.delay(0, "c", 5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)

    def test_resolved_reads_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_BACKOFF_BASE", "0.25")
        monkeypatch.setenv("REPRO_SCHED_BACKOFF_JITTER", "0.0")
        policy = BackoffPolicy.resolved(factor=3.0)
        assert policy.base == 0.25
        assert policy.factor == 3.0
        assert policy.jitter == 0.0

    def test_transience_taxonomy(self):
        assert set(TRANSIENT_CLASSIFICATIONS) < set(CLASSIFICATIONS) | {
            "lost"
        }
        for kind in ("timeout", "oom", "signal", "lost"):
            assert is_transient(kind)
        assert not is_transient("error")


# ------------------------------------------------------------------ leases
class TestLeaseTable:
    def test_grant_renew_expire_release(self):
        table = LeaseTable(lease_secs=5.0)
        lease = table.grant("cell-a", worker_id=1, now=100.0)
        assert lease.deadline == 105.0
        assert not table.expired(104.9)
        table.renew_worker(1, now=104.0)
        assert table.expired(110.0) == [lease]
        table.release("cell-a")
        assert not table.expired(1000.0)
        assert len(table) == 0

    def test_double_grant_is_an_integrity_error(self):
        table = LeaseTable(lease_secs=5.0)
        table.grant("cell-a", worker_id=1, now=0.0)
        with pytest.raises(SchedulerError, match="already leased"):
            table.grant("cell-a", worker_id=2, now=1.0)

    def test_renew_only_touches_that_workers_leases(self):
        table = LeaseTable(lease_secs=5.0)
        a = table.grant("cell-a", worker_id=1, now=0.0)
        b = table.grant("cell-b", worker_id=2, now=0.0)
        table.renew_worker(1, now=4.0)
        assert a.deadline == 9.0
        assert b.deadline == 5.0
        assert table.of_worker(2) == [b]

    def test_nonpositive_lease_rejected(self):
        with pytest.raises(SchedulerError):
            LeaseTable(lease_secs=0.0)


# ------------------------------------------------------------------- queue
class TestShardedTaskQueue:
    def test_shard_is_a_pure_function_of_cell_id(self):
        for spec in CELLS:
            assert shard_of(spec.cell_id(), 4) == shard_of(spec.cell_id(), 4)
        assert 0 <= shard_of("x", 3) < 3

    def test_fifo_within_shard_round_robin_across(self):
        queue = ShardedTaskQueue(nshards=2)
        for spec in CELLS:
            queue.push(Task(spec=spec))
        popped = []
        while len(queue):
            task = queue.pop_ready(now=0.0)
            popped.append(task.cell_id())
        assert sorted(popped) == sorted(spec.cell_id() for spec in CELLS)
        # Within each shard, campaign order is preserved.
        by_shard = {}
        for cell_id in popped:
            by_shard.setdefault(shard_of(cell_id, 2), []).append(cell_id)
        for shard, ids in by_shard.items():
            expected = [
                spec.cell_id()
                for spec in CELLS
                if shard_of(spec.cell_id(), 2) == shard
            ]
            assert ids == expected

    def test_not_before_gates_dispatch(self):
        queue = ShardedTaskQueue(nshards=1)
        queue.push(Task(spec=CELLS[0]), not_before=10.0)
        queue.push(Task(spec=CELLS[1]), not_before=0.0)
        ready = queue.pop_ready(now=5.0)
        assert ready.cell_id() == CELLS[1].cell_id()
        assert queue.pop_ready(now=5.0) is None
        assert len(queue) == 1
        assert queue.next_ready_at() == 10.0
        assert queue.pop_ready(now=10.0).cell_id() == CELLS[0].cell_id()


# ------------------------------------------------------------------ shards
class TestJournalShards:
    def test_shard_writer_records_load_back(self, tmp_path):
        path = tmp_path / "shard-000.jsonl"
        writer = ShardWriter(path)
        writer.append_cell({"cell": "a", "status": "OK", "value": 1})
        writer.append_cell({"cell": "b", "status": "OK", "value": 2})
        records = load_cell_records(path)
        assert [body["cell"] for body in records] == ["a", "b"]

    def test_torn_shard_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "shard-000.jsonl"
        writer = ShardWriter(path)
        writer.append_cell({"cell": "a", "status": "OK", "value": 1})
        writer.append_cell({"cell": "b", "status": "OK", "value": 2})
        raw = path.read_text()
        lines = raw.splitlines(keepends=True)
        path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        records = load_cell_records(path)
        assert [body["cell"] for body in records] == ["a"]

    def test_shard_paths_are_campaign_keyed_and_sorted(self, tmp_path):
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        other = open_journal(CELLS[:2], seed=8, directory=tmp_path)
        for shard_id in (2, 0, 1):
            ShardWriter(journal.shard_path(shard_id)).append_cell(
                {"cell": f"c{shard_id}", "status": "OK", "value": shard_id}
            )
        ShardWriter(other.shard_path(0)).append_cell(
            {"cell": "x", "status": "OK", "value": 0}
        )
        assert [p.name for p in journal.shard_paths()] == [
            journal.shard_path(i).name for i in range(3)
        ]
        assert journal.shard_paths()[0] != other.shard_paths()[0]
        journal.delete_shards()
        assert journal.shard_paths() == []
        assert len(other.shard_paths()) == 1

    def test_rewrite_cells_matches_appended_journal_bytes(self, tmp_path):
        payloads = [
            {"cell": spec.cell_id(), "status": "OK", "value": spec.n}
            for spec in CELLS[:3]
        ]
        appended = open_journal(CELLS[:3], seed=7, directory=tmp_path / "a")
        appended.ensure_header()
        for payload in payloads:
            appended.append_cell(dict(payload))
        rewritten = open_journal(CELLS[:3], seed=7, directory=tmp_path / "b")
        rewritten.rewrite_cells([dict(p) for p in payloads])
        assert appended.path.read_bytes() == rewritten.path.read_bytes()


# --------------------------------------------------- clean scheduled runs
class TestScheduledCampaign:
    def test_matches_serial_values_and_journal_bytes(self, tmp_path):
        serial, baseline_bytes = serial_baseline(tmp_path)
        journal = open_journal(CELLS, seed=7, directory=tmp_path / "sched")
        config = CampaignConfig(seed=7, isolation="inline", retries=1)
        report = run_scheduled_campaign(
            CELLS,
            config,
            scheduler=SchedulerConfig(workers=3, lease_secs=5.0),
            journal=journal,
        )
        assert not report.quarantined
        assert report.values() == serial.values()
        assert journal.path.read_bytes() == baseline_bytes
        assert report.stats.dispatches == len(CELLS)
        assert report.stats.reclaims == 0

    def test_single_worker_and_no_journal(self):
        config = CampaignConfig(seed=7, isolation="inline", retries=1)
        report = run_scheduled_campaign(
            CELLS[:4], config, scheduler=SchedulerConfig(workers=1)
        )
        serial = run_campaign(CELLS[:4], config)
        assert report.values() == serial.values()

    def test_progress_callback_sees_every_completion(self, tmp_path):
        lines = []
        config = CampaignConfig(seed=7, isolation="inline", retries=1)
        run_scheduled_campaign(
            CELLS[:4],
            config,
            scheduler=SchedulerConfig(workers=2),
            progress=lines.append,
        )
        assert len(lines) == 4
        assert "[4/4]" in lines[-1]

    def test_resume_refuses_mismatched_campaign_key(self, tmp_path):
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        with pytest.raises(SupervisorError, match="different"):
            run_scheduled_campaign(
                CELLS, CampaignConfig(seed=8), journal=journal, resume=True
            )

    def test_config_resolves_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_WORKERS", "2")
        monkeypatch.setenv("REPRO_SCHED_LEASE_SECS", "9.5")
        config = SchedulerConfig()
        assert config.resolved_workers() == 2
        assert config.resolved_lease_secs() == 9.5
        assert config.resolved_heartbeat_secs() == pytest.approx(9.5 / 3.0)
        explicit = SchedulerConfig(workers=5, lease_secs=3.0, heartbeat_secs=1.0)
        assert explicit.resolved_workers() == 5
        assert explicit.resolved_heartbeat_secs() == 1.0
