"""CLI-surface tests: the three lint entrypoints (``repro-lint``,
``python -m repro.analysis``, ``lcl-landscape lint``) share one flag set
and one backend, and the newer flags (SARIF, cache control, changed-only,
unused-suppression reporting) behave identically everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.cli import build_parser as build_lint_parser
from repro.analysis.cli import main as lint_main
from repro.analysis.report import SARIF_SCHEMA, SARIF_VERSION
from repro.cli import build_parser as build_landscape_parser
from repro.cli import main as landscape_main

BARE_EXCEPT = "def f():\n    try:\n        return 1\n    except:\n        return 2\n"


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def option_strings(parser: argparse.ArgumentParser):
    """The full flag surface of a parser, for drift comparison."""
    flags = set()
    for action in parser._actions:
        flags.update(action.option_strings)
    return flags


def find_lint_subparser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices["lint"]
    raise AssertionError("lcl-landscape has no lint verb")


class TestParity:
    def test_flag_surfaces_cannot_drift(self):
        """``repro-lint`` and ``lcl-landscape lint`` are built from the
        same ``add_lint_arguments`` — their flags must stay identical."""
        standalone = option_strings(build_lint_parser())
        verb = option_strings(find_lint_subparser(build_landscape_parser()))
        assert standalone == verb

    def test_new_flags_are_present_everywhere(self):
        expected = {
            "--format",
            "--changed-only",
            "--no-cache",
            "--cache-dir",
            "--clear-cache",
            "--report-unused-suppressions",
            "--baseline",
            "--write-baseline",
        }
        for parser in (build_lint_parser(), find_lint_subparser(build_landscape_parser())):
            assert expected <= option_strings(parser)

    def test_module_entrypoint_matches_standalone(self, tmp_path):
        """``python -m repro.analysis`` routes through the same main()."""
        write(tmp_path, "mod.py", BARE_EXCEPT)
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = str(src)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                str(tmp_path),
                "--root",
                str(tmp_path),
                "--no-cache",
                "--format",
                "json",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 1, proc.stderr
        body = json.loads(proc.stdout)
        assert body["summary"]["by_rule"] == {"REP007": 1}

    def test_landscape_verb_and_standalone_render_identically(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        args = [str(tmp_path), "--root", str(tmp_path), "--no-cache", "--format", "json"]
        assert lint_main(args) == 1
        standalone_out = capsys.readouterr().out
        assert landscape_main(["lint"] + args) == 1
        verb_out = capsys.readouterr().out
        assert standalone_out == verb_out


class TestSarif:
    def run_sarif(self, tmp_path, capsys, *extra):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        code = lint_main(
            [str(tmp_path), "--root", str(tmp_path), "--no-cache", "--format", "sarif"]
            + list(extra)
        )
        return code, json.loads(capsys.readouterr().out)

    def test_sarif_envelope(self, tmp_path, capsys):
        code, body = self.run_sarif(tmp_path, capsys)
        assert code == 1
        assert body["version"] == SARIF_VERSION
        assert body["$schema"] == SARIF_SCHEMA
        (run,) = body["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_results_reference_registered_rules(self, tmp_path, capsys):
        _, body = self.run_sarif(tmp_path, capsys)
        (run,) = body["runs"]
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [rule["id"] for rule in rules]
        assert "REP010" in rule_ids and "REP011" in rule_ids and "REP012" in rule_ids
        (res,) = run["results"]
        assert res["ruleId"] == "REP007"
        assert rules[res["ruleIndex"]]["id"] == "REP007"
        assert res["partialFingerprints"]["reproLintFingerprint/v2"]
        location = res["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "mod.py"
        assert location["region"]["startLine"] == 4


class TestUnusedSuppressions:
    def test_stale_directive_exits_one(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "VALUE = 1  # repro-lint: disable=REP007\n")
        code = lint_main(
            [str(tmp_path), "--root", str(tmp_path), "--no-cache",
             "--report-unused-suppressions"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REP007" in out and "mod.py" in out

    def test_active_directive_exits_zero(self, tmp_path, capsys):
        write(
            tmp_path,
            "mod.py",
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:  # repro-lint: disable=REP007\n"
            "        return 2\n",
        )
        code = lint_main(
            [str(tmp_path), "--root", str(tmp_path), "--no-cache",
             "--report-unused-suppressions"]
        )
        assert code == 0
        assert "0 unused suppression(s)" in capsys.readouterr().out


class TestCacheFlags:
    def test_clear_cache_flag_reports_removal(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "VALUE = 1\n")
        args = [
            str(tmp_path), "--root", str(tmp_path),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert lint_main(args) == 0
        capsys.readouterr()
        assert lint_main(args + ["--clear-cache"]) == 0
        captured = capsys.readouterr()
        assert "cleared" in captured.err

    def test_changed_only_without_git_reports_everything(self, tmp_path, capsys):
        """Outside a git checkout the filter must fail open (report all)
        rather than silently reporting nothing."""
        write(tmp_path, "mod.py", BARE_EXCEPT)
        code = lint_main(
            [str(tmp_path), "--root", str(tmp_path), "--no-cache", "--changed-only"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "REP007" in captured.out
        assert "warning: --changed-only" in captured.err
