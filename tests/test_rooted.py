"""Tests for the rooted-tree subpackage (§1.4 companion machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, UnsolvableError
from repro.graphs.ids import random_ids
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm
from repro.rooted import (
    RootedCVColoring,
    RootedLCL,
    RootedTree,
    certificate_family,
    check_rooted_solution,
    complete_rooted_tree,
    is_solvable_on_all,
    oblivious_certificate,
    random_rooted_tree,
    solvable_on_tree,
    top_down_labeling,
    unsolvability_witness,
)


def rooted_coloring(num_colors: int, max_arity: int) -> RootedLCL:
    """Proper coloring: children differ from their parent."""
    colors = [f"c{i}" for i in range(num_colors)]
    configurations = []
    import itertools

    for label in colors:
        others = [c for c in colors if c != label]
        for arity in range(0, max_arity + 1):
            for combo in itertools.combinations_with_replacement(others, arity):
                configurations.append((label, combo))
    return RootedLCL(colors, configurations, name=f"rooted-{num_colors}-coloring")


def increasing_labels(num_labels: int, max_arity: int) -> RootedLCL:
    """Children must carry strictly larger labels: dies at depth |Σ|."""
    labels = list(range(num_labels))
    configurations = []
    import itertools

    for label in labels:
        larger = [x for x in labels if x > label]
        configurations.append((label, ()))
        for arity in range(1, max_arity + 1):
            for combo in itertools.combinations_with_replacement(larger, arity):
                configurations.append((label, combo))
    return RootedLCL(labels, configurations, name="strictly-increasing")


class TestRootedTree:
    def test_depths_and_height(self):
        tree = RootedTree([None, 0, 0, 1, 1, 2])
        assert tree.depth(0) == 0
        assert tree.depth(3) == 2
        assert tree.height == 2
        assert tree.arity(1) == 2
        assert set(tree.leaves()) == {3, 4, 5}

    def test_cycle_detected(self):
        with pytest.raises(GraphError):
            RootedTree([1, 0])

    def test_two_roots_rejected(self):
        with pytest.raises(GraphError):
            RootedTree([None, None])

    def test_complete_tree_shape(self):
        tree = complete_rooted_tree(2, 3)
        assert tree.num_nodes == 15
        assert tree.height == 3
        assert all(tree.arity(v) in (0, 2) for v in range(tree.num_nodes))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10))
    def test_property_random_tree_well_formed(self, n, seed):
        tree = random_rooted_tree(n, max_children=3, seed=seed)
        assert tree.num_nodes == n
        assert sum(tree.arity(v) for v in range(n)) == n - 1

    def test_as_graph_orientation(self):
        from repro.rooted.tree import TO_CHILD, TO_PARENT

        tree = RootedTree([None, 0, 0])
        graph, labeling = tree.as_graph()
        assert graph.is_tree()
        up = sum(1 for h in graph.half_edges() if labeling[h] == TO_PARENT)
        down = sum(1 for h in graph.half_edges() if labeling[h] == TO_CHILD)
        assert up == down == 2


class TestRootedLCLAndDP:
    def test_checker_accepts_valid_coloring(self):
        problem = rooted_coloring(2, max_arity=2)
        tree = RootedTree([None, 0, 0, 1])
        labeling = ["c0", "c1", "c1", "c0"]
        assert check_rooted_solution(problem, tree, labeling) == []

    def test_checker_flags_equal_parent_child(self):
        problem = rooted_coloring(2, max_arity=2)
        tree = RootedTree([None, 0])
        assert check_rooted_solution(problem, tree, ["c0", "c0"]) == [0]

    def test_root_whitelist(self):
        problem = RootedLCL(
            ["a", "b"],
            [("a", ()), ("b", ()), ("a", ("b",)), ("b", ("a",))],
            root_allowed=["a"],
        )
        tree = RootedTree([None, 0])
        assert check_rooted_solution(problem, tree, ["b", "a"]) == [0]
        assert check_rooted_solution(problem, tree, ["a", "b"]) == []

    def test_dp_solves_colorable_trees(self):
        problem = rooted_coloring(2, max_arity=3)
        tree = random_rooted_tree(25, max_children=3, seed=4)
        labeling = solvable_on_tree(problem, tree)
        assert labeling is not None
        assert check_rooted_solution(problem, tree, labeling) == []

    def test_dp_detects_depth_limit_of_increasing_labels(self):
        problem = increasing_labels(3, max_arity=2)
        shallow = complete_rooted_tree(2, 2)  # height 2 < 3 labels
        deep = complete_rooted_tree(2, 3)  # height 3 needs 4 labels
        assert solvable_on_tree(problem, shallow) is not None
        assert solvable_on_tree(problem, deep) is None

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=20))
    def test_property_dp_solutions_verify(self, n, seed):
        problem = rooted_coloring(3, max_arity=3)
        tree = random_rooted_tree(n, max_children=3, seed=seed)
        labeling = solvable_on_tree(problem, tree)
        assert labeling is not None
        assert check_rooted_solution(problem, tree, labeling) == []


class TestCertificates:
    def test_coloring_certificate_is_everything(self):
        problem = rooted_coloring(2, max_arity=2)
        family = certificate_family(problem, {0, 1, 2})
        assert all(family[a] == problem.labels for a in (0, 1, 2))
        assert is_solvable_on_all(problem, {0, 1, 2})
        assert oblivious_certificate(problem, {0, 1, 2}) == problem.labels

    def test_increasing_labels_certificate_dies(self):
        problem = increasing_labels(4, max_arity=2)
        family = certificate_family(problem, {0, 2})
        assert family[0] == problem.labels  # leaves are always fine
        assert family[2] == frozenset()  # arity-2 nodes die out
        assert not is_solvable_on_all(problem, {0, 2})

    def test_top_down_labeling_valid(self):
        problem = rooted_coloring(2, max_arity=3)
        tree = random_rooted_tree(30, max_children=3, seed=9)
        labeling = top_down_labeling(problem, tree)
        assert check_rooted_solution(problem, tree, labeling) == []

    def test_top_down_raises_on_empty_certificate(self):
        problem = increasing_labels(2, max_arity=2)
        tree = complete_rooted_tree(2, 4)
        with pytest.raises(UnsolvableError):
            top_down_labeling(problem, tree)

    def test_unsolvability_witness_found(self):
        problem = increasing_labels(3, max_arity=2)
        witness = unsolvability_witness(problem, branching=2)
        assert witness is not None
        assert solvable_on_tree(problem, witness) is None
        # The witness height matches the label-budget argument exactly.
        assert witness.height == 3

    def test_no_witness_for_solvable_problems(self):
        problem = rooted_coloring(2, max_arity=2)
        assert unsolvability_witness(problem, branching=2) is None

    def test_certificate_agrees_with_dp_on_deep_trees(self):
        # Family dead <=> sufficiently deep complete trees unsolvable.
        for num_labels in (2, 3):
            problem = increasing_labels(num_labels, max_arity=2)
            solvable = is_solvable_on_all(problem, {0, 2})
            deep = complete_rooted_tree(2, num_labels + 1)
            assert solvable == (solvable_on_tree(problem, deep) is not None)


class TestRootedCV:
    @pytest.mark.parametrize("builder", [
        lambda: complete_rooted_tree(2, 4),
        lambda: random_rooted_tree(40, max_children=3, seed=2),
        lambda: random_rooted_tree(15, max_children=2, seed=7),
    ])
    def test_three_coloring_valid(self, builder):
        tree = builder()
        graph, inputs = tree.as_graph()
        result = run_local_algorithm(
            graph,
            RootedCVColoring(),
            inputs=inputs,
            ids=random_ids(graph, seed=5),
        )
        problem = catalog.coloring(3, max_degree=graph.max_degree)
        from repro.graphs.core import HalfEdgeLabeling

        assert is_valid_solution(
            problem, graph, HalfEdgeLabeling.constant(graph, catalog.NO_INPUT), result.outputs
        )

    def test_log_star_rounds(self):
        algorithm = RootedCVColoring()
        assert algorithm.rounds(2**64) <= algorithm.rounds(2**16) + 4

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=50))
    def test_property_valid_on_random_trees(self, n, seed):
        tree = random_rooted_tree(n, max_children=3, seed=seed)
        graph, inputs = tree.as_graph()
        result = run_local_algorithm(
            graph, RootedCVColoring(), inputs=inputs, ids=random_ids(graph, seed=seed)
        )
        for u, pu, v, pv in graph.edges():
            assert result.outputs[(u, pu)] != result.outputs[(v, pv)]


class TestRootedCatalog:
    def test_standard_catalog_builds(self):
        from repro.rooted.catalog import standard_rooted_catalog

        problems = standard_rooted_catalog(2)
        assert len(problems) == 5
        assert len({p.name for p in problems}) == 5

    def test_leaf_marked_certificate_and_solutions(self):
        from repro.rooted.catalog import leaf_marked

        problem = leaf_marked(2)
        family = certificate_family(problem, {0, 1, 2})
        assert family[0] == frozenset({"leaf"})
        assert "inner" in family[1] and "inner" in family[2]
        assert is_solvable_on_all(problem, {0, 1, 2})
        # ...although the *oblivious* certificate is empty: no single label
        # supports both arity 0 and arity 2 — the distinction between the
        # two certificate notions, exhibited.
        assert oblivious_certificate(problem, {0, 1, 2}) == frozenset()
        tree = random_rooted_tree(20, max_children=2, seed=3)
        labeling = solvable_on_tree(problem, tree)
        assert labeling is not None
        for v in range(tree.num_nodes):
            expected = "leaf" if tree.arity(v) == 0 else "inner"
            assert labeling[v] == expected

    def test_parity_of_depth_is_forced(self):
        from repro.rooted.catalog import parity_of_depth

        problem = parity_of_depth(2)
        tree = complete_rooted_tree(2, 3)
        labeling = solvable_on_tree(problem, tree)
        assert labeling is not None
        for v in range(tree.num_nodes):
            assert labeling[v] == ("even" if tree.depth(v) % 2 == 0 else "odd")

    def test_catalog_matches_local_builders(self):
        from repro.rooted.catalog import rooted_coloring as catalog_coloring

        mine = rooted_coloring(2, max_arity=2)
        theirs = catalog_coloring(2, max_arity=2)
        assert mine.labels == theirs.labels
