"""Unit tests for :mod:`repro.supervisor`: cells, journal, isolation,
campaign supervision, and the landscape measurement plans.

The end-to-end chaos contract (faulty run + resume bit-identical to a
clean serial run) lives in ``tests/test_supervisor_chaos.py``; this file
covers each layer in isolation.
"""

import json
import os
import signal

import pytest

from repro.exceptions import LandscapeError, SupervisorError
from repro.landscape import LandscapePanel
from repro.supervisor import (
    CampaignConfig,
    CampaignJournal,
    CellResult,
    CellSpec,
    STATUS_OK,
    STATUS_QUARANTINED,
    cell_rng,
    campaign_key,
    open_journal,
    register_runner,
    resolve_runner,
    run_campaign,
    supervise_cell,
)
from repro.supervisor.isolation import run_attempt_inline, run_attempt_process
from repro.supervisor.measurements import assemble_panel, plan_panel
from repro.utils import faults


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
    monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_CELL_MEM_MB", raising=False)
    monkeypatch.delenv("REPRO_CELL_RETRIES", raising=False)
    faults.reset_faults()
    yield
    faults.reset_faults()


# ---------------------------------------------------------------- test runners
@register_runner("test.square")
def _square(spec, rng):
    return spec.n * spec.n


@register_runner("test.rng-bits")
def _rng_bits(spec, rng):
    return rng.child("draw").bits(32)


@register_runner("test.always-raises")
def _always_raises(spec, rng):
    raise ArithmeticError(f"division disaster at n={spec.n}")


@register_runner("test.hang")
def _hang(spec, rng):
    import time

    time.sleep(120.0)
    return None


@register_runner("test.hard-exit")
def _hard_exit(spec, rng):
    os._exit(0)


@register_runner("test.self-kill")
def _self_kill(spec, rng):
    os.kill(os.getpid(), signal.SIGKILL)


def cells_for(runner, ns, seed=0):
    return [CellSpec.make(runner, "p", n, seed=seed) for n in ns]


# -------------------------------------------------------------------- CellSpec
class TestCellSpec:
    def test_cell_id_canonical(self):
        spec = CellSpec.make("r", "prob", 8, seed=3)
        assert spec.cell_id() == "r:prob:n=8:seed=3"

    def test_params_sorted_into_identity(self):
        a = CellSpec.make("r", "p", 4, seed=0, params={"b": 2, "a": 1})
        b = CellSpec.make("r", "p", 4, seed=0, params={"a": 1, "b": 2})
        assert a == b
        assert a.cell_id() == b.cell_id()
        assert "a=1" in a.cell_id() and "b=2" in a.cell_id()

    def test_param_lookup(self):
        spec = CellSpec.make("r", "p", 4, seed=0, params={"side": 7})
        assert spec.param("side") == 7
        assert spec.param("absent", 42) == 42

    def test_payload_roundtrip(self):
        spec = CellSpec.make("r", "p", 4, seed=9, params={"side": 7})
        assert CellSpec.from_payload(spec.payload()) == spec

    def test_payload_roundtrip_through_json(self):
        spec = CellSpec.make("r", "p", 4, seed=9, params={"side": 7})
        assert CellSpec.from_payload(json.loads(json.dumps(spec.payload()))) == spec


class TestCellResult:
    def test_payload_roundtrip_marks_resumed(self):
        spec = CellSpec.make("r", "p", 4, seed=0)
        result = CellResult(spec=spec, status=STATUS_OK, value=16, attempts=2)
        restored = CellResult.from_payload(result.payload())
        assert restored.spec == spec
        assert restored.value == 16
        assert restored.attempts == 2
        assert restored.resumed and not result.resumed
        assert restored == result  # resumed is excluded from equality


class TestRunnerRegistry:
    def test_reregistering_same_function_is_idempotent(self):
        assert register_runner("test.square")(_square) is _square

    def test_conflicting_registration_rejected(self):
        with pytest.raises(SupervisorError):
            register_runner("test.square")(_rng_bits)

    def test_unknown_runner_named_loudly(self):
        with pytest.raises(SupervisorError) as excinfo:
            resolve_runner("test.no-such-runner")
        assert "test.no-such-runner" in str(excinfo.value)

    def test_builtin_measurement_runners_lazily_importable(self):
        assert resolve_runner("landscape.trees") is not None


class TestCellRng:
    def test_pure_function_of_seed_and_cell(self):
        spec = CellSpec.make("r", "p", 4, seed=0)
        assert (
            cell_rng(7, spec).child("x").bits(64)
            == cell_rng(7, spec).child("x").bits(64)
        )

    def test_cells_and_campaigns_get_distinct_streams(self):
        a = CellSpec.make("r", "p", 4, seed=0)
        b = CellSpec.make("r", "p", 8, seed=0)
        assert cell_rng(7, a).child("x").bits(64) != cell_rng(7, b).child("x").bits(64)
        assert cell_rng(7, a).child("x").bits(64) != cell_rng(8, a).child("x").bits(64)


# --------------------------------------------------------------------- journal
class TestJournal:
    def test_requires_a_directory(self):
        with pytest.raises(SupervisorError):
            CampaignJournal({"seed": 0, "cells": []})

    def test_env_knob_supplies_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path))
        journal = CampaignJournal({"seed": 0, "cells": []})
        assert journal.directory == tmp_path

    def test_append_and_load_roundtrip(self, tmp_path):
        cells = cells_for("test.square", [2, 3])
        journal = open_journal(cells, seed=0, directory=tmp_path)
        journal.append_cell({"cell": "a", "value": 1})
        journal.append_cell({"cell": "b", "value": 2})
        completed = journal.completed_cells()
        assert set(completed) == {"a", "b"}
        assert completed["a"]["value"] == 1

    def test_same_campaign_same_file_different_campaign_different_file(self, tmp_path):
        cells = cells_for("test.square", [2, 3])
        assert (
            open_journal(cells, seed=0, directory=tmp_path).path
            == open_journal(list(reversed(cells)), seed=0, directory=tmp_path).path
        )
        assert (
            open_journal(cells, seed=0, directory=tmp_path).path
            != open_journal(cells, seed=1, directory=tmp_path).path
        )

    def test_torn_line_skipped_later_lines_survive(self, tmp_path):
        cells = cells_for("test.square", [2, 3])
        journal = open_journal(cells, seed=0, directory=tmp_path)
        journal.append_cell({"cell": "a", "value": 1})
        journal.append_cell({"cell": "b", "value": 2})
        journal.append_cell({"cell": "c", "value": 3})
        lines = journal.path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # tear the "b" record
        journal.path.write_text("\n".join(lines) + "\n")
        completed = journal.completed_cells()
        assert set(completed) == {"a", "c"}

    def test_later_records_win(self, tmp_path):
        cells = cells_for("test.square", [2])
        journal = open_journal(cells, seed=0, directory=tmp_path)
        journal.append_cell({"cell": "a", "value": 1})
        journal.append_cell({"cell": "a", "value": 99})
        assert journal.completed_cells()["a"]["value"] == 99

    def test_foreign_header_rejected(self, tmp_path):
        cells = cells_for("test.square", [2])
        journal = open_journal(cells, seed=0, directory=tmp_path)
        journal.ensure_header()
        other = open_journal(cells, seed=1, directory=tmp_path)
        other.ensure_header()
        journal.path.write_text(other.path.read_text())
        with pytest.raises(SupervisorError):
            journal.load()

    def test_checksum_guards_against_bit_rot(self, tmp_path):
        cells = cells_for("test.square", [2])
        journal = open_journal(cells, seed=0, directory=tmp_path)
        journal.append_cell({"cell": "a", "value": 1})
        text = journal.path.read_text().replace('"value":1', '"value":7')
        journal.path.write_text(text)
        assert journal.completed_cells() == {}


# ------------------------------------------------------------------- isolation
class TestIsolation:
    def test_inline_ok(self):
        spec = CellSpec.make("test.square", "p", 5, seed=0)
        outcome = run_attempt_inline(spec, 0)
        assert outcome.ok and outcome.value == 25

    def test_inline_error_captures_traceback(self):
        spec = CellSpec.make("test.always-raises", "p", 5, seed=0)
        outcome = run_attempt_inline(spec, 0)
        assert not outcome.ok
        assert outcome.classification == "error"
        assert "division disaster" in outcome.reason
        assert "ArithmeticError" in outcome.traceback

    def test_process_matches_inline(self):
        spec = CellSpec.make("test.rng-bits", "p", 5, seed=0)
        inline = run_attempt_inline(spec, 3)
        isolated = run_attempt_process(spec, 3, timeout=30.0, mem_mb=None)
        assert isolated.ok
        assert isolated.value == inline.value

    def test_process_error_classified(self):
        spec = CellSpec.make("test.always-raises", "p", 5, seed=0)
        outcome = run_attempt_process(spec, 0, timeout=30.0, mem_mb=None)
        assert not outcome.ok and outcome.classification == "error"
        assert "ArithmeticError" in outcome.traceback

    def test_process_timeout_kills_cell(self):
        spec = CellSpec.make("test.hang", "p", 5, seed=0)
        outcome = run_attempt_process(spec, 0, timeout=0.5, mem_mb=None)
        assert not outcome.ok and outcome.classification == "timeout"

    def test_process_hard_exit_is_lost(self):
        spec = CellSpec.make("test.hard-exit", "p", 5, seed=0)
        outcome = run_attempt_process(spec, 0, timeout=30.0, mem_mb=None)
        assert not outcome.ok and outcome.classification == "lost"

    def test_process_signal_death_classified(self):
        spec = CellSpec.make("test.self-kill", "p", 5, seed=0)
        outcome = run_attempt_process(spec, 0, timeout=30.0, mem_mb=None)
        assert not outcome.ok and outcome.classification == "signal"
        assert str(signal.SIGKILL.value) in outcome.reason

    def test_sim_oom_instruction_classified_oom(self):
        spec = CellSpec.make("test.square", "p", 5, seed=0)
        outcome = run_attempt_inline(spec, 0, instructions=("sim_oom",))
        assert not outcome.ok and outcome.classification == "oom"

    def test_inline_skips_sim_hang(self):
        spec = CellSpec.make("test.square", "p", 5, seed=0)
        outcome = run_attempt_inline(spec, 0, instructions=("sim_hang",))
        assert outcome.ok and outcome.value == 25


# -------------------------------------------------------------------- campaign
class TestCampaignConfig:
    def test_unknown_isolation_rejected(self):
        with pytest.raises(SupervisorError):
            CampaignConfig(isolation="thread")

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_CELL_MEM_MB", "256")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "3")
        config = CampaignConfig()
        assert config.resolved_timeout() == 12.5
        assert config.resolved_mem_mb() == 256
        assert config.resolved_retries() == 3

    def test_explicit_values_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "3")
        assert CampaignConfig(retries=0).resolved_retries() == 0

    def test_negative_retries_floored(self):
        assert CampaignConfig(retries=-5).resolved_retries() == 0


class TestSupervision:
    def test_quarantine_after_retry_exhaustion(self):
        spec = CellSpec.make("test.always-raises", "p", 3, seed=0)
        result = supervise_cell(spec, CampaignConfig(retries=2, isolation="inline"))
        assert result.quarantined
        assert result.status == STATUS_QUARANTINED
        assert result.attempts == 3
        assert result.classification == "error"
        assert "ArithmeticError" in result.traceback

    @staticmethod
    def _crash_once_seed():
        # A fault seed whose first sim_crash occurrence fires and whose
        # second does not: attempt 1 crashes, attempt 2 completes.
        for s in range(1000):
            plan = faults.FaultPlan({"sim_crash": 0.5}, seed=s)
            if [plan.fire("sim_crash") for _ in range(2)] == [True, False]:
                return s
        raise AssertionError("no crash-once fault seed in range")

    def test_crash_retried_then_succeeds(self):
        faults.configure_faults({"sim_crash": 0.5}, seed=self._crash_once_seed())
        spec = CellSpec.make("test.square", "p", 4, seed=0)
        result = supervise_cell(spec, CampaignConfig(retries=1, isolation="inline"))
        assert result.ok
        assert result.attempts == 2
        assert result.value == 16

    def test_retried_cell_value_bit_identical(self):
        clean = supervise_cell(
            CellSpec.make("test.rng-bits", "p", 4, seed=0),
            CampaignConfig(retries=1, isolation="inline"),
        )
        faults.configure_faults({"sim_crash": 0.5}, seed=self._crash_once_seed())
        retried = supervise_cell(
            CellSpec.make("test.rng-bits", "p", 4, seed=0),
            CampaignConfig(retries=1, isolation="inline"),
        )
        assert retried.ok and retried.attempts == 2
        assert retried.value == clean.value

    def test_campaign_never_aborts(self):
        cells = cells_for("test.square", [2, 3]) + cells_for(
            "test.always-raises", [4]
        )
        report = run_campaign(cells, CampaignConfig(retries=0, isolation="inline"))
        assert len(report.results) == 3
        assert len(report.ok_results) == 2
        assert len(report.quarantined) == 1
        assert report.values() == {
            "test.square:p:n=2:seed=0": 4,
            "test.square:p:n=3:seed=0": 9,
        }

    def test_resume_requires_journal(self):
        with pytest.raises(SupervisorError):
            run_campaign([], resume=True)

    def test_resume_restores_bit_identically(self, tmp_path):
        cells = cells_for("test.rng-bits", [2, 3, 4])
        config = CampaignConfig(seed=5, isolation="inline")
        journal = open_journal(cells, seed=5, directory=tmp_path)
        first = run_campaign(cells, config, journal=journal)
        resumed = run_campaign(cells, config, journal=journal, resume=True)
        assert resumed.values() == first.values()
        assert resumed.resumed_count == 3
        assert all(result.resumed for result in resumed.results)

    def test_partial_journal_runs_only_the_rest(self, tmp_path):
        cells = cells_for("test.rng-bits", [2, 3, 4])
        config = CampaignConfig(seed=5, isolation="inline")
        journal = open_journal(cells, seed=5, directory=tmp_path)
        full = run_campaign(cells, config, journal=journal)
        lines = journal.path.read_text().splitlines()
        journal.path.write_text("\n".join(lines[:3]) + "\n")  # drop last cell
        resumed = run_campaign(cells, config, journal=journal, resume=True)
        assert resumed.resumed_count == 2
        assert resumed.values() == full.values()

    def test_resume_refuses_mismatched_campaign_key(self, tmp_path):
        cells = cells_for("test.rng-bits", [2, 3])
        journal = open_journal(cells, seed=5, directory=tmp_path)
        run_campaign(cells, CampaignConfig(seed=5, isolation="inline"), journal=journal)
        # Same journal object, different campaign seed: the recorded
        # values would be silently wrong for seed=6, so resume refuses.
        with pytest.raises(SupervisorError, match="different campaign"):
            run_campaign(
                cells,
                CampaignConfig(seed=6, isolation="inline"),
                journal=journal,
                resume=True,
            )
        # The matching key still resumes cleanly (the happy path).
        resumed = run_campaign(
            cells,
            CampaignConfig(seed=5, isolation="inline"),
            journal=journal,
            resume=True,
        )
        assert resumed.resumed_count == 2

    def test_campaign_key_excludes_supervision(self):
        cells = cells_for("test.square", [2])
        assert campaign_key(cells, 0) == {
            "seed": 0,
            "cells": ["test.square:p:n=2:seed=0"],
        }


class TestBackoffDelays:
    def test_transient_failures_record_positive_seeded_delays(self):
        faults.configure_faults({"sim_oom": 1.0}, seed=1)
        spec = CellSpec.make("test.square", "p", 3, seed=0)
        config = CampaignConfig(
            seed=5, retries=2, isolation="inline", backoff_base=0.001
        )
        result = supervise_cell(spec, config)
        assert result.quarantined and result.classification == "oom"
        assert len(result.delays) == 2
        assert all(d > 0.0 for d in result.delays)
        assert result.delays[0] < result.delays[1]  # exponential growth
        # Deterministic: the same cell re-run draws the same delays.
        faults.configure_faults({"sim_oom": 1.0}, seed=1)
        again = supervise_cell(spec, config)
        assert again.delays == result.delays

    def test_permanent_failures_retry_without_pausing(self):
        spec = CellSpec.make("test.always-raises", "p", 3, seed=0)
        result = supervise_cell(spec, CampaignConfig(retries=2, isolation="inline"))
        assert result.quarantined and result.classification == "error"
        assert result.delays == (0.0, 0.0)

    def test_successful_first_attempt_records_no_delays(self):
        result = supervise_cell(
            CellSpec.make("test.square", "p", 3, seed=0),
            CampaignConfig(retries=2, isolation="inline"),
        )
        assert result.ok and result.delays == ()

    def test_delays_survive_payload_roundtrip(self):
        faults.configure_faults({"sim_oom": 1.0}, seed=1)
        spec = CellSpec.make("test.square", "p", 3, seed=0)
        config = CampaignConfig(
            seed=5, retries=1, isolation="inline", backoff_base=0.001
        )
        result = supervise_cell(spec, config)
        restored = CellResult.from_payload(
            json.loads(json.dumps(result.payload()))
        )
        assert restored.delays == result.delays


# ---------------------------------------------------------------- measurements
class TestMeasurementPlans:
    def test_unknown_panel_rejected(self):
        with pytest.raises(SupervisorError):
            plan_panel("re", 3)

    @pytest.mark.parametrize(
        "panel,series_count", [("trees", 2), ("volume", 3), ("grids", 3)]
    )
    def test_plan_shape(self, panel, series_count):
        plan = plan_panel(panel, 3)
        assert len(plan.series) == series_count
        assert len(plan.cells) == 3 * series_count
        assert len({spec.cell_id() for spec in plan.cells}) == len(plan.cells)

    def test_assemble_complete_panel(self):
        plan = plan_panel("volume", 3)
        report = run_campaign(plan.cells, CampaignConfig(isolation="inline"))
        panel = assemble_panel(plan, report)
        assert panel.complete
        assert len(panel.rows) == 3
        assert not panel.gap_violations()

    def test_assemble_partial_series_notes_degradation(self):
        plan = plan_panel("volume", 3)
        report = run_campaign(plan.cells, CampaignConfig(isolation="inline"))
        # Quarantine one cell of the first series after the fact.
        victim = plan.series[0].cells[1]
        for result in report.results:
            if result.spec == victim:
                result.status = STATUS_QUARANTINED
                result.classification = "timeout"
        panel = assemble_panel(plan, report)
        assert not panel.complete
        row = next(r for r in panel.rows if r.problem == plan.series[0].problem)
        assert "quarantined" in row.note and "timeout" in row.note
        assert len(row.ns) == 2
        assert "degraded panel" in panel.render()

    def test_assemble_dead_series_becomes_quarantined_row(self):
        plan = plan_panel("volume", 2)
        report = run_campaign(plan.cells, CampaignConfig(isolation="inline"))
        for result in report.results:
            if result.spec.problem == plan.series[0].problem:
                result.status = STATUS_QUARANTINED
                result.classification = "oom"
                result.reason = "MemoryError"
        panel = assemble_panel(plan, report)
        assert len(panel.rows) == 2
        assert len(panel.quarantined) == 1
        assert panel.quarantined[0].classification == "oom"
        assert "QUARANTINED [oom]" in panel.render()


# -------------------------------------------------------- panel validation
class TestPanelValidation:
    def test_empty_series_rejected(self):
        panel = LandscapePanel("t")
        with pytest.raises(LandscapeError) as excinfo:
            panel.add("prob", "O(1)", [], [])
        assert "prob" in str(excinfo.value)

    def test_mismatched_lengths_rejected(self):
        panel = LandscapePanel("t")
        with pytest.raises(LandscapeError):
            panel.add("prob", "O(1)", [2, 4, 8], [1.0, 1.0])

    def test_non_finite_values_rejected(self):
        panel = LandscapePanel("t")
        with pytest.raises(LandscapeError) as excinfo:
            panel.add("prob", "O(1)", [2, 4], [1.0, float("nan")])
        assert "non-finite" in str(excinfo.value)

    def test_quarantined_rows_never_count_as_gap_evidence(self):
        from repro.utils.numbers import iterated_log

        panel = LandscapePanel("t")
        ns = [2**k for k in range(4, 12)]
        # A genuinely gap-inhabiting measured row is reported...
        panel.add(
            "in-gap", "Theta(log log* n)", ns, [float(max(1, iterated_log(n) - 1).bit_length()) for n in ns]
        )
        in_gap_before = [row.problem for row in panel.gap_violations()]
        # ...while a quarantined series with the same expected class is not.
        panel.quarantine("crashed", "Theta(log log* n)", classification="error")
        assert [row.problem for row in panel.gap_violations()] == in_gap_before
        assert all(row.problem != "crashed" for row in panel.gap_violations())
