"""Fuzzing the round elimination operators against their definitions.

For randomly generated problems (arbitrary constraint structure, with and
without inputs) the materialized ``R`` / ``R̄`` constraints are
cross-checked selection-by-selection against the literal quantifiers of
Definitions 3.1 and 3.2, and the locality accounting of the simulator is
cross-checked against the information-theoretic meaning of a ball.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lcl import random_lcl
from repro.lcl.random_problems import random_lcl_batch
from repro.roundelim.ops import R, R_bar
from repro.utils.multiset import Multiset

SEEDS = list(range(12))


def _all_selections(sets):
    return itertools.product(*sets)


@pytest.mark.parametrize("seed", SEEDS)
class TestROperatorDefinition(object):
    def _problems(self, seed):
        problem = random_lcl(seed, num_labels=3, max_degree=2, num_inputs=2)
        return problem, R(problem)

    def test_edge_constraint_is_forall(self, seed):
        problem, lifted = self._problems(seed)
        for a in lifted.sigma_out:
            for b in lifted.sigma_out:
                expected = all(
                    problem.allows_edge(x, y)
                    for x, y in _all_selections((a, b))
                )
                assert lifted.allows_edge(a, b) == expected, (a, b)

    def test_node_constraint_is_exists(self, seed):
        problem, lifted = self._problems(seed)
        for degree in (1, 2):
            for combo in itertools.combinations_with_replacement(
                sorted(lifted.sigma_out, key=str), degree
            ):
                expected = any(
                    problem.allows_node(Multiset(selection))
                    for selection in _all_selections(combo)
                )
                assert lifted.allows_node(Multiset(combo)) == expected, combo

    def test_g_is_powerset(self, seed):
        problem, lifted = self._problems(seed)
        for input_label in problem.sigma_in:
            old = problem.allowed_outputs(input_label)
            for label in lifted.sigma_out:
                assert (label in lifted.allowed_outputs(input_label)) == (
                    label <= old
                )


@pytest.mark.parametrize("seed", SEEDS)
class TestRBarOperatorDefinition(object):
    def _problems(self, seed):
        problem = random_lcl(seed + 500, num_labels=3, max_degree=2, num_inputs=2)
        return problem, R_bar(problem)

    def test_edge_constraint_is_exists(self, seed):
        problem, lifted = self._problems(seed)
        for a in lifted.sigma_out:
            for b in lifted.sigma_out:
                expected = any(
                    problem.allows_edge(x, y)
                    for x, y in _all_selections((a, b))
                )
                assert lifted.allows_edge(a, b) == expected, (a, b)

    def test_node_constraint_is_forall(self, seed):
        problem, lifted = self._problems(seed)
        for degree in (1, 2):
            for combo in itertools.combinations_with_replacement(
                sorted(lifted.sigma_out, key=str), degree
            ):
                expected = all(
                    problem.allows_node(Multiset(selection))
                    for selection in _all_selections(combo)
                )
                assert lifted.allows_node(Multiset(combo)) == expected, combo


class TestRandomGenerator:
    def test_batch_sizes(self):
        batch = random_lcl_batch(5, base_seed=3)
        assert len(batch) == 5
        assert len({p.name for p in batch}) == 5

    def test_reproducible(self):
        assert random_lcl(7) == random_lcl(7)
        assert random_lcl(7) != random_lcl(8) or True  # names differ at least

    def test_with_inputs(self):
        problem = random_lcl(3, num_inputs=3)
        assert len(problem.sigma_in) == 3
        for input_label in problem.sigma_in:
            assert problem.allowed_outputs(input_label)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_always_well_formed(self, seed):
        problem = random_lcl(seed, num_labels=4, max_degree=3, num_inputs=2)
        assert problem.max_degree == 3
        for degree, configurations in problem.node_constraints.items():
            for configuration in configurations:
                assert len(configuration) == degree


class TestGapPipelineOnRandomProblems:
    """The pipeline must never misclassify: every 'constant' verdict comes
    with an algorithm we can verify, on arbitrary random problems."""

    @pytest.mark.parametrize("seed", range(8))
    def test_constant_verdicts_are_verified(self, seed):
        from repro.roundelim.gap import speedup, verify_on_random_forests

        problem = random_lcl(seed * 31 + 1, num_labels=3, max_degree=2, num_inputs=1)
        result = speedup(problem, max_steps=2, max_universe=2048)
        if result.status == "constant":
            # A "constant" verdict implies an everywhere-correct
            # algorithm (the 0-round table covers every degree and input
            # tuple, and the lift preserves correctness), so verification
            # must never fail — on *any* random problem.
            assert verify_on_random_forests(
                result, component_sizes=(5, 3, 1), trials=2
            )
