"""Property tests for the 0-round CNF encoder and the bundled solver.

The encoder is the trust anchor of the SAT decision kernels: every
verdict the dispatch serves starts as clauses produced by
:class:`ZeroRoundEncoder` and ends as a model validated by
``decode_clique``, so the differential guarantees of
``tests/test_sat_differential.py`` reduce to the properties pinned here:

* **round-trip** — on instances with a *planted* deterministic 0-round
  solution (:func:`solvable_random_lcl`), some maximal-clique query is
  satisfiable, the model satisfies the formula, and the decoded clique
  survives the decoder's full validation (totality, clause
  satisfaction, cliqueness, cover);
* **relabeling invariance** — renaming output labels changes neither
  the clause *set* (modulo the variable correspondence induced by the
  encoder's own semantics) nor, for order-preserving renamings, a
  single literal of the clause *list*.  This is the CNF-level analogue
  of :func:`canonical_hash` identity, which the same test asserts;
* **loud refusal** — shapes beyond the encoder caps raise
  :exc:`SatUnsupported` before any clause is emitted, which is what
  lets the dispatch fall back to enumeration;
* **bounded search** — step budgets, the interrupt callback, and the
  driver's wall-clock deadline all surface as
  :exc:`SatBudgetExceeded`, never as a hang or a wrong answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lcl import catalog
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.lcl.random_problems import random_lcl, solvable_random_lcl
from repro.roundelim.canonical import canonical_hash
from repro.sat import (
    CnfFormula,
    DpllSolver,
    MAX_DEGREE,
    SatBudgetExceeded,
    SatSolver,
    SatUnsupported,
    ZeroRoundEncoder,
    solve_formula,
)
from repro.utils.multiset import Multiset, label_sort_key

seeds = st.integers(min_value=0, max_value=9_999)


def relabel(problem, mapping):
    """``problem`` with every output label pushed through ``mapping``."""
    return NodeEdgeCheckableLCL(
        sigma_in=problem.sigma_in,
        sigma_out=[mapping[label] for label in problem.sigma_out],
        node_constraints={
            degree: [
                Multiset(mapping[x] for x in configuration.items)
                for configuration in configurations
            ]
            for degree, configurations in problem.node_constraints.items()
        },
        edge_constraint=[
            Multiset(mapping[x] for x in configuration.items)
            for configuration in problem.edge_constraint
        ],
        g={
            label: [mapping[output] for output in problem.allowed_outputs(label)]
            for label in problem.sigma_in
        },
        name=problem.name,
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_planted_instances_solve_and_decode(self, seed):
        problem = solvable_random_lcl(seed, num_labels=4, max_degree=3)
        encoder = ZeroRoundEncoder(problem)
        covering = None
        with SatSolver(
            encoder.formula, decision_order=encoder.decision_order()
        ) as solver:
            for clique in encoder.maximal_cliques():
                model = solver.solve(encoder.assumptions_excluding(clique))
                if model is None:
                    continue
                assert encoder.formula.satisfied_by(model)
                decoded = encoder.decode_clique(model)
                assert decoded <= clique
                assert encoder.first_uncoverable(decoded) is None
                covering = decoded
                break
        assert covering is not None, f"planted 0-round solution lost (seed {seed})"

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_global_solve_agrees_with_clique_queries(self, seed):
        # The un-assumed formula is satisfiable exactly when some
        # maximal-clique query is: monotonicity of covering in the
        # clique, which the per-clique dispatch relies on.
        problem = random_lcl(seed, num_labels=4, max_degree=2, num_inputs=1)
        encoder = ZeroRoundEncoder(problem)
        with SatSolver(
            encoder.formula, decision_order=encoder.decision_order()
        ) as solver:
            per_clique = any(
                solver.solve(encoder.assumptions_excluding(clique)) is not None
                for clique in encoder.maximal_cliques()
            )
            unassumed = solver.solve()
        if unassumed is not None:
            assert encoder.formula.satisfied_by(unassumed)
            encoder.decode_clique(unassumed)
        assert (unassumed is not None) == per_clique


class TestRelabelingInvariance:
    @staticmethod
    def _semantic_key(role, map_label):
        if role[0] == "s":
            return ("s", map_label(role[1]))
        return ("u", role[1], Multiset(map_label(x) for x in role[2]))

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.data())
    def test_clause_set_invariant_under_any_relabeling(self, seed, data):
        problem = random_lcl(seed, num_labels=4, max_degree=2, num_inputs=2)
        labels = sorted(problem.sigma_out, key=label_sort_key)
        fresh = data.draw(
            st.permutations([f"relabeled-{index}" for index in range(len(labels))])
        )
        mapping = dict(zip(labels, fresh))
        renamed = relabel(problem, mapping)
        assert canonical_hash(renamed) == canonical_hash(problem)

        original = ZeroRoundEncoder(problem)
        relabeled = ZeroRoundEncoder(renamed)
        assert relabeled.formula.num_vars == original.formula.num_vars
        assert relabeled.formula.num_clauses == original.formula.num_clauses

        # Translate the original clauses into the relabeled encoder's
        # variable numbering via each encoder's own semantics.
        target = {
            self._semantic_key(role, lambda x: x): var
            for var, role in relabeled.var_semantics().items()
        }
        translate = {
            var: target[self._semantic_key(role, lambda x: mapping[x])]
            for var, role in original.var_semantics().items()
        }
        translated = {
            frozenset(
                (1 if literal > 0 else -1) * translate[abs(literal)]
                for literal in clause
            )
            for clause in original.formula.clauses
        }
        expected = {frozenset(clause) for clause in relabeled.formula.clauses}
        assert translated == expected

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_order_preserving_relabeling_is_a_no_op(self, seed):
        # A renaming that preserves label_sort_key order preserves every
        # rank, so the encoder must emit literally identical clauses.
        problem = random_lcl(seed, num_labels=4, max_degree=2, num_inputs=1)
        labels = sorted(problem.sigma_out, key=label_sort_key)
        mapping = {label: f"q{index:03d}" for index, label in enumerate(labels)}
        renamed = relabel(problem, mapping)

        original = ZeroRoundEncoder(problem)
        relabeled = ZeroRoundEncoder(renamed)
        assert relabeled.formula.clauses == original.formula.clauses
        assert relabeled.decision_order() == original.decision_order()
        assert [
            frozenset(mapping[x] for x in clique)
            for clique in original.maximal_cliques()
        ] == [frozenset(clique) for clique in relabeled.maximal_cliques()]


class TestLoudRefusal:
    def test_degree_beyond_cap_is_unsupported(self):
        wide = catalog.trivial(MAX_DEGREE + 1)
        with pytest.raises(SatUnsupported, match="degree"):
            ZeroRoundEncoder(wide)

    def test_no_degrees_is_unsupported(self):
        problem = catalog.trivial(2)
        with pytest.raises(SatUnsupported, match="degrees"):
            ZeroRoundEncoder(problem, degrees=())

    def test_tuple_blow_up_is_unsupported(self, monkeypatch):
        monkeypatch.setattr("repro.sat.encode.MAX_TUPLES", 2)
        with pytest.raises(SatUnsupported, match="tuple count"):
            ZeroRoundEncoder(catalog.trivial(3))

    def test_variable_blow_up_is_unsupported(self, monkeypatch):
        monkeypatch.setattr("repro.sat.cnf.MAX_VARIABLES", 3)
        formula = CnfFormula()
        for _ in range(3):
            formula.new_var()
        with pytest.raises(SatUnsupported, match="variable"):
            formula.new_var()

    def test_unknown_solver_mode_is_unsupported(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVER", "minisat")
        with pytest.raises(SatUnsupported, match="REPRO_SAT_SOLVER"):
            SatSolver(CnfFormula())

    def test_pysat_mode_without_pysat_is_unsupported(self, monkeypatch):
        import repro.sat.solver as solver_module

        monkeypatch.setattr(solver_module, "_pysat_probe", False)
        monkeypatch.setenv("REPRO_SAT_SOLVER", "pysat")
        with pytest.raises(SatUnsupported, match="pysat"):
            SatSolver(CnfFormula())


def _chain_formula(num_vars):
    """A long implication chain: one unit clause, then v_i -> v_{i+1}.

    Propagation assigns every variable, costing ``num_vars`` steps —
    enough to cross the interrupt poll mask deterministically.
    """
    formula = CnfFormula()
    variables = [formula.new_var() for _ in range(num_vars)]
    formula.add_clause((variables[0],))
    for previous, current in zip(variables, variables[1:]):
        formula.add_clause((-previous, current))
    return formula


class TestBoundedSearch:
    def test_step_budget_trips(self):
        formula = _chain_formula(64)
        with pytest.raises(SatBudgetExceeded, match="step budget"):
            solve_formula(formula, max_steps=8)

    def test_interrupt_callback_trips(self):
        formula = _chain_formula(600)
        solver = DpllSolver(formula, interrupt=lambda: True)
        with pytest.raises(SatBudgetExceeded, match="interrupted"):
            solver.solve()

    def test_wall_clock_deadline_trips(self):
        formula = _chain_formula(600)
        with SatSolver(formula, timeout=0.0) as solver:
            with pytest.raises(SatBudgetExceeded):
                solver.solve()

    def test_budget_survivor_is_still_correct(self):
        formula = _chain_formula(64)
        model = solve_formula(formula)
        assert model is not None and formula.satisfied_by(model)
        assert all(model[var] for var in model)

    def test_assumption_conflict_does_not_poison_later_queries(self):
        formula = _chain_formula(8)
        solver = DpllSolver(formula)
        assert solver.solve(assumptions=(-8,)) is None
        model = solver.solve()
        assert model is not None and formula.satisfied_by(model)
