"""Smoke test for the ``lcl-landscape certify`` verb.

Drives the CLI entry point (``repro.cli.main``) end to end: a full
catalog sweep writing one certificate per problem, single-problem
certification with ``--out`` + ``--replay``, a fixed-point verdict, and
the offline engine-free ``--check`` path — including that a tampered
certificate file makes ``--check`` exit non-zero.

The sweep runs at ``--max-steps 1``: the verdicts differ from the
deeper conformance run (echo2/sinkless stay ``unknown``) but every
certificate must still check, and the f^2 alphabet blow-ups that make a
2-step sweep minutes-long never happen.  ``--max-configs`` guards the
rare remaining explosion.
"""

from __future__ import annotations

import json

from repro.cli import CATALOG, main

FAST = ["--max-configs", "5000", "--trials", "1"]


def test_certify_catalog_sweep_writes_checkable_certificates(tmp_path, capsys):
    out_dir = tmp_path / "certs"
    code = main(
        ["certify", "--catalog", "--max-steps", "1", "--out", str(out_dir), *FAST]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    for name in CATALOG:
        assert name in out
    assert "certificate OK" in out
    assert "REJECTED" not in out

    written = {p.stem for p in out_dir.glob("*.json")}
    assert written == {name.replace(":", "_") for name in CATALOG}
    for path in sorted(out_dir.glob("*.json")):
        assert main(["certify", "--check", str(path)]) == 0


def test_certify_single_problem_out_replay_and_check(tmp_path, capsys):
    target = tmp_path / "echo.json"
    code = main(
        ["certify", "echo:3", "--max-steps", "2", "--out", str(target), "--replay", *FAST]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "constant" in out and "certificate OK" in out
    assert "replay: bit-identical" in out
    assert target.exists()

    assert main(["certify", "--check", str(target)]) == 0
    out = capsys.readouterr().out
    assert "certificate OK" in out


def test_certify_fixed_point_verdict(capsys):
    assert main(["certify", "sinkless:3", "--max-steps", "2", *FAST]) == 0
    out = capsys.readouterr().out
    assert "fixed-point" in out and "certificate OK" in out


def test_certify_check_rejects_tampered_file(tmp_path, capsys):
    target = tmp_path / "cert.json"
    args = ["certify", "trivial:3", "--max-steps", "1", "--out", str(target), *FAST]
    assert main(args) == 0
    capsys.readouterr()

    envelope = json.loads(target.read_text())
    envelope["body"]["kind"] = "fixed-point"
    target.write_text(json.dumps(envelope))
    assert main(["certify", "--check", str(target)]) == 1
    out = capsys.readouterr().out
    assert "checksum" in out


def test_certify_usage_error_without_target(capsys):
    assert main(["certify"]) == 2
    assert "catalog" in capsys.readouterr().err
