"""Unit tests for the operator cache layer (:mod:`repro.utils.cache`).

Cover the LRU policy, the on-disk JSON layer (roundtrip, atomicity side
effects, key-echo verification), the poisoning guard (corrupt entries
degrade to recomputation, never to a crash or a wrong result), the
``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment knobs, and the stats
accounting surface.
"""

import json

import pytest

from repro.lcl import catalog
from repro.roundelim.ops import R, simplify
from repro.utils import cache as cache_module
from repro.utils.cache import RoundElimCache


@pytest.fixture(autouse=True)
def fresh_engine(monkeypatch):
    from repro.utils import faults

    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    # This suite asserts exact hit/error counts; ambient chaos (the CI
    # fault-injection job) must not skew them — test_faults.py covers
    # cache corruption under injected faults deterministically.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.reset_faults()
    cache_module.reset()
    cache_module.reset_stats()
    yield
    faults.reset_faults()
    cache_module.reset()
    cache_module.reset_stats()


def key(n: int):
    return ("R", f"hash{n}", "flags")


class TestMemoryLRU:
    def test_roundtrip(self):
        store = RoundElimCache(memory_entries=4)
        store.put(key(1), {"v": 1})
        assert store.get(key(1)) == {"v": 1}
        assert store.get(key(2)) is None

    def test_eviction_drops_least_recently_used(self):
        store = RoundElimCache(memory_entries=2)
        store.put(key(1), {"v": 1})
        store.put(key(2), {"v": 2})
        store.get(key(1))  # touch 1 so 2 becomes the LRU entry
        store.put(key(3), {"v": 3})
        assert store.get(key(2)) is None
        assert store.get(key(1)) == {"v": 1}
        assert store.get(key(3)) == {"v": 3}
        assert len(store) == 2

    def test_invalidate(self):
        store = RoundElimCache()
        store.put(key(1), {"v": 1})
        store.invalidate(key(1))
        assert store.get(key(1)) is None


class TestDiskLayer:
    def test_disk_roundtrip_and_promotion(self, tmp_path):
        writer = RoundElimCache(disk_dir=tmp_path)
        writer.put(key(1), {"v": 1})
        files = list(tmp_path.glob("R-*.json"))
        assert len(files) == 1

        reader = RoundElimCache(disk_dir=tmp_path)  # cold memory, same disk
        assert reader.get(key(1), stat_key="R") == {"v": 1}
        assert len(reader) == 1  # promoted into memory
        assert cache_module.stats()["operators"]["R"]["disk_hits"] == 1
        assert not list(tmp_path.glob("*.tmp*")), "atomic write left a temp file"

    def test_disk_entry_echoes_its_key(self, tmp_path):
        store = RoundElimCache(disk_dir=tmp_path)
        store.put(key(1), {"v": 1})
        entry = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert entry["key"] == list(key(1))
        assert entry["payload"] == {"v": 1}

    def test_corrupt_json_is_deleted_and_misses(self, tmp_path):
        store = RoundElimCache(disk_dir=tmp_path)
        store.put(key(1), {"v": 1})
        path = next(tmp_path.glob("*.json"))
        path.write_text("{truncated", encoding="utf-8")

        reader = RoundElimCache(disk_dir=tmp_path)
        assert reader.get(key(1), stat_key="R") is None
        assert not path.exists(), "poisoned entry must be removed"
        assert cache_module.stats()["operators"]["R"]["disk_errors"] == 1

    def test_key_mismatch_is_treated_as_poison(self, tmp_path):
        store = RoundElimCache(disk_dir=tmp_path)
        store.put(key(1), {"v": 1})
        path = next(tmp_path.glob("*.json"))
        path.write_text(
            json.dumps({"key": ["R", "other", "flags"], "payload": {"v": 1}}),
            encoding="utf-8",
        )
        reader = RoundElimCache(disk_dir=tmp_path)
        assert reader.get(key(1), stat_key="R") is None
        assert not path.exists()

    def test_clear_disk(self, tmp_path):
        store = RoundElimCache(disk_dir=tmp_path)
        store.put(key(1), {"v": 1})
        store.clear(disk=True)
        assert len(store) == 0
        assert not list(tmp_path.glob("*.json"))

    def test_poisoned_disk_cache_recomputes_correct_result(self, tmp_path):
        # End-to-end guard: corrupt every disk entry between two R() calls;
        # the second call must silently recompute the same problem.
        cache_module.configure(enabled=True, disk_dir=tmp_path)
        problem = catalog.mis(2)
        first = R(problem)
        for path in tmp_path.glob("*.json"):
            path.write_text("\x00garbage", encoding="utf-8")
        cache_module.configure(disk_dir=tmp_path)  # rebuild → cold memory
        assert R(problem) == first


class TestEnvironmentKnobs:
    def test_repro_cache_0_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache_module.reset()
        assert cache_module.get_cache().enabled is False
        problem = catalog.trivial(2)
        R(problem)
        R(problem)
        counters = cache_module.stats()["operators"]["R"]
        assert counters["hits"] == 0 and counters["misses"] == 0
        assert counters["computes"] == 2

    @pytest.mark.parametrize("value", ["false", "OFF", "no"])
    def test_disable_spellings(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE", value)
        cache_module.reset()
        assert cache_module.get_cache().enabled is False

    def test_repro_cache_dir_enables_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache_module.reset()
        problem = catalog.trivial(2)
        simplify(R(problem), domination=True)
        assert list(tmp_path.glob("*.json")), "disk layer did not persist entries"

    def test_configure_overrides_and_preserves(self, tmp_path):
        cache_module.configure(enabled=True, memory_entries=7, disk_dir=tmp_path)
        store = cache_module.get_cache()
        assert store.memory_entries == 7 and store.disk_dir == tmp_path
        store = cache_module.configure(enabled=False)  # others preserved
        assert store.enabled is False
        assert store.memory_entries == 7 and store.disk_dir == tmp_path
        store = cache_module.configure(disk_dir=None)
        assert store.disk_dir is None


class TestStats:
    def test_record_rejects_unknown_fields(self):
        with pytest.raises(KeyError):
            cache_module.record("R", bogus_counter=1)

    def test_hit_rate_none_when_idle(self):
        assert cache_module.hit_rate() is None

    def test_counters_accumulate_and_reset(self):
        cache_module.record("R", hits=2, misses=1, wall_time=0.5)
        assert cache_module.hit_rate("R") == pytest.approx(2 / 3)
        assert cache_module.stats()["operators"]["R"]["wall_time"] == pytest.approx(0.5)
        cache_module.reset_stats()
        assert cache_module.stats()["operators"] == {}

    def test_format_stats_renders_table(self):
        cache_module.record("R", hits=1, misses=1, computes=1, configurations_tested=42)
        text = cache_module.format_stats()
        assert "operator" in text and "R" in text
        assert "overall hit rate: 50.0%" in text


class TestDiskBudget:
    def fill(self, store, count):
        for n in range(count):
            store.put(key(n), {"v": n, "pad": "x" * 200})

    def test_untouched_without_bound(self, tmp_path):
        store = RoundElimCache(disk_dir=tmp_path)
        self.fill(store, 6)
        assert len(list(tmp_path.glob("*.json"))) == 6
        assert store.disk_evictions == 0

    def test_lru_eviction_by_mtime(self, tmp_path):
        import os
        import time

        unbounded = RoundElimCache(disk_dir=tmp_path)
        self.fill(unbounded, 4)
        entry_size = max(p.stat().st_size for p in tmp_path.glob("*.json"))
        # Age the files oldest-first so mtime order is unambiguous.
        now = time.time()
        for age, path in enumerate(sorted(tmp_path.glob("*.json"))):
            os.utime(path, (now - 100 + age, now - 100 + age))
        oldest = min(tmp_path.glob("*.json"), key=lambda p: p.stat().st_mtime)

        bounded = RoundElimCache(
            disk_dir=tmp_path, max_disk_bytes=entry_size * 4
        )
        bounded.put(key(99), {"v": 99, "pad": "x" * 200})
        remaining = list(tmp_path.glob("*.json"))
        assert bounded.disk_evictions >= 1
        assert oldest not in remaining, "LRU (oldest mtime) entry must go first"
        assert sum(p.stat().st_size for p in remaining) <= entry_size * 4
        assert bounded.get(key(99)) == {"v": 99, "pad": "x" * 200}

    def test_just_written_entry_survives_unless_alone(self, tmp_path):
        store = RoundElimCache(disk_dir=tmp_path, max_disk_bytes=1)
        store.put(key(1), {"v": 1})
        # The sole entry exceeds the whole budget: it is allowed to go.
        store.put(key(2), {"v": 2})
        assert len(list(tmp_path.glob("*.json"))) <= 1

    def test_env_knob_and_stats_surface(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "600")
        cache_module.reset()
        store = cache_module.get_cache()
        assert store.max_disk_bytes == 600
        for n in range(10):
            store.put(key(n), {"v": n, "pad": "y" * 200})
        info = cache_module.stats()["cache"]
        assert info["max_disk_bytes"] == 600
        assert info["disk_evictions"] == store.disk_evictions > 0
        assert "disk budget: 600 bytes" in cache_module.format_stats()
        total = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
        assert total <= 600

    def test_bad_env_value_is_ignored_with_warning(self, tmp_path, monkeypatch, caplog):
        import logging

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        cache_module.reset()
        with caplog.at_level(logging.WARNING, logger="repro.utils.cache"):
            store = cache_module.get_cache()
        assert store.max_disk_bytes is None
        assert any("REPRO_CACHE_MAX_BYTES" in r.message for r in caplog.records)
