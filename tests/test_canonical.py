"""Property tests for the canonical problem hash (roundelim.canonical).

The operator cache is only sound if the hash is (a) invariant under
output relabeling, (b) discriminating on genuinely different problems,
and (c) stable across interpreter processes (no ``PYTHONHASHSEED``
dependence).  Each property is exercised here on catalog and random
problems.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.lcl import catalog
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.lcl.random_problems import random_lcl
from repro.roundelim.canonical import (
    canonical_encoding,
    canonical_form,
    canonical_hash,
    canonical_order,
    canonically_equal,
    decode_result,
    encode_result,
    is_search_exhaustive,
)
from repro.roundelim.ops import R, R_bar, simplify
from repro.utils.multiset import Multiset

CATALOG = [
    ("trivial", lambda: catalog.trivial(3)),
    ("consensus", lambda: catalog.consensus(3)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
    ("mis", lambda: catalog.mis(3)),
    ("matching", lambda: catalog.maximal_matching(3)),
    ("sinkless", lambda: catalog.sinkless_orientation(3)),
    ("echo", lambda: catalog.echo(2)),
    ("echo2", lambda: catalog.echo2()),
    ("input-copy", lambda: catalog.input_copy(3)),
]


def permuted(problem: NodeEdgeCheckableLCL, seed: int) -> NodeEdgeCheckableLCL:
    """A relabeling of the outputs by a seeded random bijection."""
    labels = sorted(problem.sigma_out, key=repr)
    renamed = [f"p{seed}_{i}" for i in range(len(labels))]
    random.Random(seed).shuffle(renamed)
    return problem.rename_outputs(dict(zip(labels, renamed)))


class TestRelabelingInvariance:
    @pytest.mark.parametrize("name, build", CATALOG)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_catalog_permutations_hash_equal(self, name, build, seed):
        problem = build()
        twin = permuted(problem, seed)
        assert canonical_hash(twin) == canonical_hash(problem)
        assert canonically_equal(problem, twin)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_problem_permutations_hash_equal(self, seed):
        problem = random_lcl(seed, num_labels=4, max_degree=3, num_inputs=2)
        twin = permuted(problem, seed + 100)
        assert canonical_hash(twin) == canonical_hash(problem)

    def test_name_does_not_affect_hash(self):
        a = catalog.mis(3)
        b = NodeEdgeCheckableLCL(
            sigma_in=a.sigma_in,
            sigma_out=a.sigma_out,
            node_constraints=a.node_constraints,
            edge_constraint=a.edge_constraint,
            g=a.g,
            name="something-else",
        )
        assert canonical_hash(a) == canonical_hash(b)

    def test_operator_output_relabelings(self):
        # Frozenset-valued labels (the post-R world) canonicalize too.
        base = catalog.sinkless_orientation(3)
        r = simplify(R(base), domination=True)
        twin = permuted(r, 7)
        assert canonical_hash(twin) == canonical_hash(r)


class TestDiscrimination:
    def test_mutated_node_configuration_changes_hash(self):
        problem = catalog.coloring(3, 2)
        degree = 2
        configurations = list(problem.node_constraints[degree])
        mutated = NodeEdgeCheckableLCL(
            sigma_in=problem.sigma_in,
            sigma_out=problem.sigma_out,
            node_constraints={
                **problem.node_constraints,
                degree: configurations[:-1],
            },
            edge_constraint=problem.edge_constraint,
            g=problem.g,
            name=problem.name,
        )
        assert canonical_hash(mutated) != canonical_hash(problem)
        assert not canonically_equal(mutated, problem)

    def test_mutated_edge_constraint_changes_hash(self):
        problem = catalog.mis(2)
        label = sorted(problem.sigma_out, key=repr)[0]
        extended = NodeEdgeCheckableLCL(
            sigma_in=problem.sigma_in,
            sigma_out=problem.sigma_out,
            node_constraints=problem.node_constraints,
            edge_constraint=list(problem.edge_constraint) + [Multiset((label, label))],
            g=problem.g,
            name=problem.name,
        )
        if Multiset((label, label)) in problem.edge_constraint:
            pytest.skip("mutation was a no-op for this problem")
        assert canonical_hash(extended) != canonical_hash(problem)

    def test_mutated_g_changes_hash(self):
        problem = catalog.echo(2)
        some_input = sorted(problem.sigma_in, key=repr)[0]
        shrunk_g = dict(problem.g)
        allowed = sorted(shrunk_g[some_input], key=repr)
        assert len(allowed) > 1
        shrunk_g[some_input] = frozenset(allowed[:-1])
        mutated = NodeEdgeCheckableLCL(
            sigma_in=problem.sigma_in,
            sigma_out=problem.sigma_out,
            node_constraints=problem.node_constraints,
            edge_constraint=problem.edge_constraint,
            g=shrunk_g,
            name=problem.name,
        )
        assert canonical_hash(mutated) != canonical_hash(problem)

    def test_different_input_labels_distinguished(self):
        # Inputs are part of the instance: renaming them must NOT be
        # identified (mirrors is_isomorphic's contract).
        problem = catalog.echo(2)
        renamed_inputs = {label: f"in_{label}" for label in problem.sigma_in}
        twin = NodeEdgeCheckableLCL(
            sigma_in=renamed_inputs.values(),
            sigma_out=problem.sigma_out,
            node_constraints=problem.node_constraints,
            edge_constraint=problem.edge_constraint,
            g={renamed_inputs[k]: v for k, v in problem.g.items()},
            name=problem.name,
        )
        assert canonical_hash(twin) != canonical_hash(problem)

    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_with_backtracking_isomorphism(self, seed):
        left = random_lcl(seed, num_labels=3, max_degree=2)
        right = random_lcl(seed + 1000, num_labels=3, max_degree=2)
        assert canonically_equal(left, right) == left.is_isomorphic(right)


class TestCrossProcessStability:
    def _subprocess_hash(self, extra_env: dict) -> str:
        code = (
            "from repro.lcl import catalog\n"
            "from repro.roundelim.canonical import canonical_hash\n"
            "from repro.roundelim.ops import R, simplify\n"
            "p = simplify(R(catalog.mis(3)), domination=True, use_cache=False)\n"
            "print(canonical_hash(p))\n"
        )
        env = {**os.environ, **extra_env}
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE"] = "0"
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        return output.stdout.strip()

    def test_hash_stable_across_hash_seeds(self):
        here = simplify(R(catalog.mis(3)), domination=True, use_cache=False)
        expected = canonical_hash(here)
        for seed in ("0", "1", "424242"):
            assert self._subprocess_hash({"PYTHONHASHSEED": seed}) == expected


class TestCanonicalForm:
    @pytest.mark.parametrize("name, build", CATALOG)
    def test_canonical_forms_of_relabelings_coincide(self, name, build):
        problem = build()
        twin = permuted(problem, 5)
        assert canonical_form(problem) == canonical_form(twin)

    def test_canonical_form_is_isomorphic_to_original(self):
        problem = catalog.maximal_matching(3)
        form = canonical_form(problem)
        assert form.is_isomorphic(problem)
        assert canonical_hash(form) == canonical_hash(problem)

    def test_order_is_a_permutation_of_sigma_out(self):
        problem = catalog.mis(3)
        order = canonical_order(problem)
        assert frozenset(order) == problem.sigma_out
        assert len(order) == len(problem.sigma_out)

    def test_encoding_is_pure_structure(self):
        # The encoding must contain no output label spellings at all.
        problem = catalog.coloring(3, 2)
        flattened = repr(canonical_encoding(problem))
        for label in problem.sigma_out:
            assert repr(label) not in flattened

    @pytest.mark.parametrize("name, build", CATALOG)
    def test_search_exhaustive_on_catalog(self, name, build):
        assert is_search_exhaustive(build())


class TestResultCodec:
    @pytest.mark.parametrize(
        "operator", [lambda p: R(p, use_cache=False), lambda p: R_bar(p, use_cache=False)]
    )
    def test_roundtrip_same_spelling(self, operator):
        base = catalog.mis(2)
        result = operator(base)
        payload = encode_result(base, result)
        assert decode_result(base, payload, name=result.name) == result

    def test_decode_against_relabeled_base(self):
        base = catalog.sinkless_orientation(3)
        twin = permuted(base, 11)
        payload = encode_result(base, R(base, use_cache=False))
        direct = R(twin, use_cache=False)
        decoded = decode_result(twin, payload, name=direct.name)
        assert decoded == direct

    def test_payload_is_json_roundtrippable(self):
        import json

        base = catalog.echo(2)
        result = simplify(R(base, use_cache=False), domination=True, use_cache=False)
        payload = encode_result(base, result)
        assert (
            decode_result(base, json.loads(json.dumps(payload)), name=result.name)
            == result
        )
