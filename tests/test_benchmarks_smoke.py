"""Smoke coverage for the benchmark harness.

The ``benchmarks/`` experiments are not part of the tier-1 suite (they
take minutes), so regressions in their imports or main paths used to
surface only when someone ran them by hand.  This module imports every
``bench_*`` module and drives the round-elimination experiments' main
entry points on tiny problem subsets, plus the conftest helpers the
``--no-cache`` flag relies on.
"""

import importlib
import pathlib
import sys

import pytest

BENCHMARKS_DIR = pathlib.Path(__file__).parent.parent / "benchmarks"
BENCH_MODULES = sorted(p.stem for p in BENCHMARKS_DIR.glob("bench_*.py"))


@pytest.fixture(autouse=True)
def benchmarks_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    yield


@pytest.fixture(autouse=True)
def fresh_cache():
    from repro.utils import cache as operator_cache

    operator_cache.reset()
    operator_cache.reset_stats()
    yield
    operator_cache.reset()
    operator_cache.reset_stats()


@pytest.mark.parametrize("module_name", BENCH_MODULES)
def test_bench_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lost its experiment description"


def test_bench_roundelim_main_path(tmp_path, monkeypatch):
    import conftest as bench_conftest

    monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
    bench = importlib.import_module("bench_roundelim")

    tiny = [(n, b) for n, b in bench.PROBLEMS if n in ("trivial", "sinkless-orientation")]
    sizes, certificate, report = bench.run_experiment(problems=tiny)
    assert sizes["sinkless-orientation"][2] == 2
    assert certificate.certifies_lower_bound
    assert "RE-fixedpoint" in report

    cached_sizes, _, _ = bench.run_experiment(problems=tiny, use_cache=True)
    uncached_sizes, _, _ = bench.run_experiment(problems=tiny, use_cache=False)
    assert cached_sizes == sizes == uncached_sizes

    target = bench_conftest.write_report("smoke", report)
    assert target.read_text().startswith("RE-fixedpoint")


def test_bench_roundelim_backend_comparison(tmp_path, monkeypatch):
    """Smoke the bitset-vs-oracle experiment: the compiled backend must
    not be slower than the oracle on the smoke problem, outputs must be
    identical (asserted inside the experiment), and the run must append
    a ``BENCH_bitset.json`` trajectory entry."""
    import json

    bench = importlib.import_module("bench_roundelim")

    smoke = [row for row in bench.BACKEND_PROBLEMS if row[0] == "5-edge-coloring"]
    assert smoke, "smoke problem disappeared from BACKEND_PROBLEMS"
    rows, report = bench.run_backend_experiment(problems=smoke)

    assert "RE-bitset" in report
    for row in rows:
        assert row["speedup"] > 1.0, (
            f"{row['problem']}: bitset path slower than the oracle "
            f"({row['bitset_seconds']}s vs {row['oracle_seconds']}s)"
        )

    target = bench.append_bitset_trajectory(rows, results_dir=tmp_path)
    assert target.name == "BENCH_bitset.json"
    trajectory = json.loads(target.read_text())
    assert len(trajectory) == 1 and trajectory[0]["rows"] == rows

    bench.append_bitset_trajectory(rows, results_dir=tmp_path)
    trajectory = json.loads(target.read_text())
    assert len(trajectory) == 2, "trajectory entries must accumulate"


def test_bench_roundelim_sat_comparison(tmp_path, monkeypatch):
    """Smoke the SAT-vs-enumeration experiment: the CNF kernel must not
    be slower than enumeration on the smoke problem, outputs must be
    identical (asserted inside the experiment), and the run must append
    a ``BENCH_sat.json`` trajectory entry."""
    import json

    bench = importlib.import_module("bench_roundelim")

    smoke = [row for row in bench.SAT_PROBLEMS if row[0] == "3-coloring f^1"]
    assert smoke, "smoke problem disappeared from SAT_PROBLEMS"
    rows, report = bench.run_sat_experiment(problems=smoke, repetitions=2)

    assert "RE-sat" in report
    for row in rows:
        assert row["speedup"] > 1.0, (
            f"{row['problem']}: SAT path slower than enumeration "
            f"({row['sat_seconds']}s vs {row['enumeration_seconds']}s)"
        )

    target = bench.append_sat_trajectory(rows, results_dir=tmp_path)
    assert target.name == "BENCH_sat.json"
    trajectory = json.loads(target.read_text())
    assert len(trajectory) == 1 and trajectory[0]["rows"] == rows

    bench.append_sat_trajectory(rows, results_dir=tmp_path)
    trajectory = json.loads(target.read_text())
    assert len(trajectory) == 2, "trajectory entries must accumulate"


def test_bench_roundelim_main_path_oracle_backend():
    """The classic experiment must also hold with the bitset knob off."""
    from repro.roundelim.ops import configure_bitset

    bench = importlib.import_module("bench_roundelim")
    tiny = [(n, b) for n, b in bench.PROBLEMS if n in ("trivial", "sinkless-orientation")]
    try:
        configure_bitset(enabled=False)
        sizes, certificate, _ = bench.run_experiment(problems=tiny, use_cache=False)
    finally:
        configure_bitset(enabled=None)
    assert sizes["sinkless-orientation"][2] == 2
    assert certificate.certifies_lower_bound


def test_bench_speedup_trees_main_path():
    bench = importlib.import_module("bench_speedup_trees")

    constant = [case for case in bench.CONSTANT_CASES if case[0] in ("trivial", "echo(d=2)")]
    outcomes, report = bench.run_all(constant_cases=constant, hard_cases=[])
    for name, _, expected_rounds in constant:
        result, verified = outcomes[name]
        assert result.status == "constant" and result.constant_rounds == expected_rounds
        assert verified
    so, _ = outcomes["sinkless-orientation"]
    assert so.status == "fixed-point" and so.fixed_point_at == 1
    assert "T-3.11" in report


def test_cache_report_lines_helper():
    from repro.utils import cache as operator_cache

    import conftest as bench_conftest

    operator_cache.record("R", hits=3, misses=1)
    lines = bench_conftest.cache_report_lines(operator_cache)
    joined = "\n".join(lines)
    assert "cache mode:" in joined
    assert "75.0%" in joined
