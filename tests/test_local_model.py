"""Tests for the LOCAL simulator: contexts, charging, iterative replay."""

import pytest

from repro.exceptions import AlgorithmError, SimulationError
from repro.graphs import HalfEdgeLabeling, cycle, path, random_ids, star
from repro.local import (
    IterativeAlgorithm,
    LocalAlgorithm,
    run_local_algorithm,
)
from repro.local.model import NodeContext


class EchoInputs(LocalAlgorithm):
    """0-round: copy the input of each half-edge to its output."""

    name = "echo-inputs"

    def radius(self, n):
        return 0

    def run(self, ctx):
        return {p: ctx.input(p) for p in range(ctx.degree)}


class NeighborIds(LocalAlgorithm):
    """1-round: output the neighbor's ID on each half-edge."""

    name = "neighbor-ids"

    def radius(self, n):
        return 1

    def run(self, ctx):
        ball = ctx.ball(1)
        outputs = {}
        for port in range(ball.center_degree()):
            local, _ = ball.adj[0][port]
            outputs[port] = ball.ids[local]
        return outputs


class Overreacher(LocalAlgorithm):
    """Declares radius 1 but reads radius 2."""

    name = "overreacher"

    def radius(self, n):
        return 1

    def run(self, ctx):
        ctx.ball(2)
        return {p: "x" for p in range(ctx.degree)}


class CountToThree(IterativeAlgorithm):
    """Iterative smoke test: state counts rounds; output = final count."""

    name = "count-to-three"
    finalize_lookahead = 0

    def rounds(self, n):
        return 3

    def initial_state(self, node_id, degree, inputs, bits, n):
        return 0

    def step(self, round_index, state, neighbor_states, n):
        assert all(s == state for s in neighbor_states if s is not None)
        return state + 1

    def finalize(self, state, neighbor_states, degree, inputs, n):
        return {p: state for p in range(degree)}


class SumIdsWithinRadius(IterativeAlgorithm):
    """Output the sum of IDs within distance = rounds (flood aggregation)."""

    name = "sum-ids"
    finalize_lookahead = 0

    def __init__(self, rounds):
        self._rounds = rounds

    def rounds(self, n):
        return self._rounds

    def initial_state(self, node_id, degree, inputs, bits, n):
        return {node_id}

    def step(self, round_index, state, neighbor_states, n):
        merged = set(state)
        for s in neighbor_states:
            if s is not None:
                merged |= s
        return merged

    def finalize(self, state, neighbor_states, degree, inputs, n):
        return {p: sum(state) for p in range(degree)}


class TestRunLocalAlgorithm:
    def test_zero_round_outputs(self):
        g = path(4)
        inputs = HalfEdgeLabeling(g, {h: f"in{h}" for h in g.half_edges()})
        result = run_local_algorithm(g, EchoInputs(), inputs=inputs)
        assert result.max_radius_used == 0
        for h in g.half_edges():
            assert result.outputs[h] == f"in{h}"

    def test_one_round_sees_neighbors(self):
        g = star(3)
        ids = [10, 20, 30, 40]
        result = run_local_algorithm(g, NeighborIds(), ids=ids)
        assert result.outputs[(0, 0)] == 20
        assert result.outputs[(1, 0)] == 10
        assert result.max_radius_used == 1

    def test_radius_enforcement(self):
        g = path(5)
        with pytest.raises(AlgorithmError):
            run_local_algorithm(g, Overreacher())

    def test_radius_enforcement_can_be_disabled(self):
        g = path(5)
        result = run_local_algorithm(g, Overreacher(), enforce_radius=False)
        assert result.max_radius_used == 2
        assert not result.within_declared_radius

    def test_duplicate_ids_rejected(self):
        g = path(3)
        with pytest.raises(SimulationError):
            run_local_algorithm(g, NeighborIds(), ids=[1, 1, 2])

    def test_missing_port_output_rejected(self):
        class Lazy(LocalAlgorithm):
            name = "lazy"

            def radius(self, n):
                return 0

            def run(self, ctx):
                return {}

        g = path(3)
        with pytest.raises(AlgorithmError):
            run_local_algorithm(g, Lazy())

    def test_randomized_requires_seed(self):
        class Coin(LocalAlgorithm):
            name = "coin"
            bits_per_node = 8

            def radius(self, n):
                return 0

            def run(self, ctx):
                return {p: ctx.my_bits[0] for p in range(ctx.degree)}

        g = path(3)
        with pytest.raises(SimulationError):
            run_local_algorithm(g, Coin())
        result = run_local_algorithm(g, Coin(), seed=7)
        repeat = run_local_algorithm(g, Coin(), seed=7)
        for h in g.half_edges():
            assert result.outputs[h] == repeat.outputs[h]

    def test_declared_n_override(self):
        class ReportN(LocalAlgorithm):
            name = "report-n"

            def radius(self, n):
                return 0

            def run(self, ctx):
                return {p: ctx.declared_n for p in range(ctx.degree)}

        g = path(3)
        result = run_local_algorithm(g, ReportN(), declared_n=999)
        assert result.outputs[(0, 0)] == 999


class TestDelegationCharging:
    def test_delegate_charges_one_hop(self):
        class AskNeighborInput(LocalAlgorithm):
            name = "ask-neighbor"

            def radius(self, n):
                return 1

            def run(self, ctx):
                outputs = {}
                for port in range(ctx.degree):
                    neighbor = ctx.delegate(port)
                    outputs[port] = neighbor.input(0)
                return outputs

        g = path(3)
        inputs = HalfEdgeLabeling(g, {h: h[0] * 10 + h[1] for h in g.half_edges()})
        result = run_local_algorithm(g, AskNeighborInput(), inputs=inputs)
        assert result.max_radius_used == 1

    def test_nested_delegation_accumulates(self):
        class TwoHops(LocalAlgorithm):
            name = "two-hops"

            def radius(self, n):
                return 2

            def run(self, ctx):
                for port in range(ctx.degree):
                    neighbor = ctx.delegate(port)
                    for neighbor_port in range(neighbor.degree):
                        neighbor.delegate(neighbor_port).my_id
                return {p: "x" for p in range(ctx.degree)}

        g = path(4)
        result = run_local_algorithm(g, TwoHops(), ids=random_ids(g))
        assert result.max_radius_used == 2


class TestIterativeReplay:
    def test_round_counting(self):
        g = cycle(8)
        result = run_local_algorithm(g, CountToThree())
        for h in g.half_edges():
            assert result.outputs[h] == 3

    def test_flood_aggregation_matches_truth(self):
        g = path(7)
        ids = [5, 11, 2, 7, 3, 13, 1]
        radius = 2
        result = run_local_algorithm(g, SumIdsWithinRadius(radius), ids=ids)
        for v in range(g.num_nodes):
            expected = sum(ids[u] for u, d in g.bfs_distances(v).items() if d <= radius)
            for port in range(g.degree(v)):
                assert result.outputs[(v, port)] == expected

    def test_declared_radius_matches_rounds_plus_lookahead(self):
        algorithm = SumIdsWithinRadius(3)
        assert algorithm.radius(100) == 3  # finalize_lookahead = 0
        algorithm.finalize_lookahead = 1
        assert algorithm.radius(100) == 4


class CrashAtNode(LocalAlgorithm):
    """Raises a low-level error at one node; elsewhere outputs 'x'."""

    name = "crash-at-node"

    def __init__(self, bad_node):
        self.bad_node = bad_node

    def radius(self, n):
        return 0

    def run(self, ctx):
        if ctx.node == self.bad_node:
            raise KeyError("missing lookup-table entry")
        return {port: "x" for port in range(ctx.degree)}


class RaisesSimulationError(LocalAlgorithm):
    name = "raises-simulation-error"

    def radius(self, n):
        return 0

    def run(self, ctx):
        raise SimulationError("deliberate structured failure")


class TestStructuredFailureSurfacing:
    def test_crash_surfaces_as_node_execution_error(self):
        from repro.exceptions import NodeExecutionError

        with pytest.raises(NodeExecutionError) as excinfo:
            run_local_algorithm(cycle(6), CrashAtNode(bad_node=4))
        error = excinfo.value
        assert error.node == 4
        assert error.algorithm == "crash-at-node"
        assert "node 4" in str(error)
        assert "KeyError" in str(error)
        assert isinstance(error.__cause__, KeyError)

    def test_repro_errors_pass_through_untranslated(self):
        from repro.exceptions import NodeExecutionError

        with pytest.raises(SimulationError) as excinfo:
            run_local_algorithm(cycle(6), RaisesSimulationError())
        assert not isinstance(excinfo.value, NodeExecutionError)

    def test_estimate_strict_reraises_with_seed(self):
        from repro.exceptions import NodeExecutionError
        from repro.lcl import catalog
        from repro.local.randomized import estimate_local_failure

        with pytest.raises(NodeExecutionError) as excinfo:
            estimate_local_failure(
                catalog.coloring(3, 2),
                cycle(6),
                CrashAtNode(bad_node=2),
                seeds=[17, 18],
            )
        assert excinfo.value.node == 2
        assert "trial seed 17" in str(excinfo.value)

    def test_estimate_non_strict_counts_crashes_as_failures(self):
        from repro.lcl import catalog
        from repro.local.randomized import estimate_local_failure

        estimate = estimate_local_failure(
            catalog.coloring(3, 2),
            cycle(6),
            CrashAtNode(bad_node=2),
            seeds=[17, 18, 19],
            strict=False,
        )
        assert estimate["crashed"] == 1.0
        assert estimate["global"] == 1.0
        assert estimate["local"] == 1.0

    def test_estimate_reports_zero_crashed_on_clean_runs(self):
        from repro.lcl import catalog
        from repro.local.randomized import RandomizedTrialColoring, estimate_local_failure

        estimate = estimate_local_failure(
            catalog.coloring(3, 2),
            cycle(6),
            RandomizedTrialColoring(2, trial_rounds=3),
            seeds=list(range(5)),
            ids=random_ids(cycle(6), seed=3),
        )
        assert estimate["crashed"] == 0.0
