"""Tests for the §1.4 decision procedures."""

import pytest

from repro.decidability import (
    LabelAutomaton,
    classify_cycle_problem,
    classify_path_problem,
    find_fixed_point_certificate,
    semidecide_constant_time,
)
from repro.decidability.paths import CONSTANT, GLOBAL, LOG_STAR, UNSOLVABLE
from repro.exceptions import DecidabilityError
from repro.lcl import catalog
from repro.lcl.nec import NodeEdgeCheckableLCL, all_multisets
from repro.utils.multiset import Multiset

NO = catalog.NO_INPUT


def directed_problem(node2, edge, node1=None, labels=None):
    """Helper: small input-free degree-<=2 problems from raw constraints."""
    used = set()
    for pair in list(node2) + list(edge) + list(node1 or []):
        used |= set(pair) if isinstance(pair, (tuple, list)) else {pair}
    labels = labels or sorted(used)
    return NodeEdgeCheckableLCL(
        sigma_in=[NO],
        sigma_out=labels,
        node_constraints={
            1: [Multiset([x]) for x in (node1 or labels)],
            2: [Multiset(pair) for pair in node2],
        },
        edge_constraint=[Multiset(pair) for pair in edge],
        g={NO: labels},
    )


class TestLabelAutomaton:
    def test_rejects_inputs(self):
        with pytest.raises(DecidabilityError):
            LabelAutomaton(catalog.echo(2))

    def test_trivial_problem_full_automaton(self):
        automaton = LabelAutomaton(catalog.trivial(2))
        assert automaton.has_arc("T", "T")
        assert automaton.self_loop_states() == ["T"]

    def test_three_coloring_automaton(self):
        automaton = LabelAutomaton(catalog.coloring(3, 2))
        # a -> b iff some witness L differs from a (edge) and equals b (node:
        # monochromatic pairs only), i.e. b != a.
        assert automaton.has_arc("c0", "c1")
        assert not automaton.has_arc("c0", "c0")
        assert automaton.self_loop_states() == []
        assert set(automaton.flexible_states()) == {"c0", "c1", "c2"}

    def test_two_coloring_automaton_period_two(self):
        automaton = LabelAutomaton(catalog.two_coloring(2))
        assert automaton.flexible_states() == []
        assert automaton.has_cycle()
        components = automaton.strongly_connected_components()
        gcds = {automaton.component_cycle_gcd(c) for c in components}
        assert 2 in gcds

    def test_legal_endpoint_states(self):
        automaton = LabelAutomaton(catalog.coloring(3, 2))
        assert set(automaton.legal_start_states()) == {"c0", "c1", "c2"}
        assert set(automaton.legal_end_states()) == {"c0", "c1", "c2"}


class TestCycleClassification:
    def test_trivial_is_constant(self):
        assert classify_cycle_problem(catalog.trivial(2)).complexity == CONSTANT

    def test_consensus_is_constant(self):
        assert classify_cycle_problem(catalog.consensus(2)).complexity == CONSTANT

    def test_three_coloring_is_log_star(self):
        result = classify_cycle_problem(catalog.coloring(3, 2))
        assert result.complexity == LOG_STAR
        assert result.witness in {"c0", "c1", "c2"}

    def test_two_coloring_is_global(self):
        assert classify_cycle_problem(catalog.two_coloring(2)).complexity == GLOBAL

    def test_mis_is_log_star(self):
        assert classify_cycle_problem(catalog.mis(2)).complexity == LOG_STAR

    def test_maximal_matching_is_log_star(self):
        assert classify_cycle_problem(catalog.maximal_matching(2)).complexity == LOG_STAR

    def test_source_sink_alternation_is_global(self):
        # All-in/all-out nodes alternate with period 2 along a cycle, so
        # the problem sits in the global class, like 2-coloring.
        result = classify_cycle_problem(catalog.edge_orientation_consistent(2))
        assert result.complexity == GLOBAL

    def test_unsolvable_problem(self):
        # Edge constraint empty: nothing can be written on any edge.
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a"],
            node_constraints={1: [Multiset(["a"])], 2: [Multiset(["a", "a"])]},
            edge_constraint=[],
            g={NO: ["a"]},
        )
        assert classify_cycle_problem(problem).complexity == UNSOLVABLE


class TestPathClassification:
    def test_three_coloring_on_paths(self):
        assert classify_path_problem(catalog.coloring(3, 2)).complexity == LOG_STAR

    def test_two_coloring_on_paths_is_global(self):
        # Solvable on every path, but requires global coordination.
        assert classify_path_problem(catalog.two_coloring(2)).complexity == GLOBAL

    def test_trivial_on_paths(self):
        assert classify_path_problem(catalog.trivial(2)).complexity == CONSTANT

    def test_no_legal_endpoints_unsolvable(self):
        problem = directed_problem(
            node2=[("a", "a")],
            edge=[("a", "a")],
            node1=[],
            labels=["a"],
        )
        # Empty N^1: no degree-1 node can be labeled.
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a"],
            node_constraints={1: [], 2: [Multiset(["a", "a"])]},
            edge_constraint=[Multiset(["a", "a"])],
            g={NO: ["a"]},
        )
        assert classify_path_problem(problem).complexity == UNSOLVABLE

    def test_dead_end_states_pruned(self):
        # b is only reachable but never co-reachable: walks through b die.
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b"],
            node_constraints={
                1: [Multiset(["a"])],
                2: [Multiset(["a", "a"])],
            },
            edge_constraint=[Multiset(["a", "a"]), Multiset(["a", "b"])],
            g={NO: ["a", "b"]},
        )
        result = classify_path_problem(problem)
        assert result.complexity == CONSTANT
        assert result.witness == "a"


class TestFixedPointCertificates:
    def test_sinkless_orientation_certified(self):
        certificate = find_fixed_point_certificate(catalog.sinkless_orientation(3))
        assert certificate is not None
        assert certificate.certifies_lower_bound
        assert certificate.depth == 1
        assert "NOT o(log* n)" in certificate.summary()

    def test_trivial_fixed_point_is_harmless(self):
        certificate = find_fixed_point_certificate(catalog.trivial(3))
        if certificate is not None:
            assert not certificate.certifies_lower_bound

    def test_no_fixed_point_for_echo(self):
        # echo's sequence terminates in a 0-round-solvable problem before
        # (or instead of) stabilizing into a hard fixed point.
        certificate = find_fixed_point_certificate(catalog.echo(2), max_steps=2)
        assert certificate is None or not certificate.certifies_lower_bound


class TestQuestion17Semidecision:
    def test_echo_constant(self):
        verdict = semidecide_constant_time(catalog.echo(3))
        assert verdict.verdict == "CONSTANT"
        assert verdict.rounds == 1
        assert verdict.algorithm is not None

    def test_sinkless_orientation_not_constant(self):
        verdict = semidecide_constant_time(catalog.sinkless_orientation(3))
        assert verdict.verdict == "NOT_CONSTANT"

    def test_coloring_inconclusive_within_budget(self):
        verdict = semidecide_constant_time(catalog.coloring(4, 3), max_steps=1)
        assert verdict.verdict == "INCONCLUSIVE"

    def test_summaries_render(self):
        for builder in (catalog.echo(2), catalog.sinkless_orientation(3)):
            verdict = semidecide_constant_time(builder)
            assert builder.name.split("(")[0] in verdict.summary()
