"""Tests for the R / R̄ operators and label hygiene (Defs 3.1 / 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemDefinitionError
from repro.lcl import catalog
from repro.lcl.nec import NodeEdgeCheckableLCL, all_multisets
from repro.roundelim.ops import (
    R,
    R_bar,
    merge_equivalent_labels,
    remove_dominated_labels,
    restrict_to_usable,
    simplify,
)
from repro.utils.multiset import Multiset

NO = catalog.NO_INPUT


def tiny_problem() -> NodeEdgeCheckableLCL:
    """2-coloring on paths: small enough to verify R / R̄ by hand."""
    return catalog.coloring(2, max_degree=2)


class TestROperator:
    def test_alphabet_is_nonempty_powerset(self):
        r = R(tiny_problem())
        assert len(r.sigma_out) == 3  # {c0}, {c1}, {c0,c1}
        assert all(isinstance(label, frozenset) and label for label in r.sigma_out)

    def test_inputs_unchanged(self):
        problem = catalog.echo(2)
        assert R(problem).sigma_in == problem.sigma_in

    def test_edge_constraint_is_universal(self):
        # {c0} vs {c1}: every cross pair is a proper coloring -> allowed.
        # {c0,c1} vs anything: contains a monochromatic pair -> forbidden.
        r = R(tiny_problem())
        c0, c1 = frozenset({"c0"}), frozenset({"c1"})
        both = frozenset({"c0", "c1"})
        assert r.allows_edge(c0, c1)
        assert not r.allows_edge(c0, c0)
        assert not r.allows_edge(both, c0)
        assert not r.allows_edge(both, both)

    def test_node_constraint_is_existential(self):
        # Around a degree-2 node, {A1, A2} is allowed iff some selection is
        # monochromatic (2-coloring node constraint = both ports equal).
        r = R(tiny_problem())
        c0, c1 = frozenset({"c0"}), frozenset({"c1"})
        both = frozenset({"c0", "c1"})
        assert r.allows_node([c0, c0])
        assert not r.allows_node([c0, c1])
        assert r.allows_node([both, c1])  # select c1 from `both`
        assert r.allows_node([both, both])

    def test_g_is_powerset_of_old_g(self):
        problem = catalog.input_copy(2)
        r = R(problem)
        for input_label in problem.sigma_in:
            old = problem.allowed_outputs(input_label)
            new = r.allowed_outputs(input_label)
            assert new == frozenset(
                s for s in r.sigma_out if s <= old
            )

    def test_universe_guard(self):
        with pytest.raises(ProblemDefinitionError):
            R(catalog.mis(3), max_universe=3)


class TestRBarOperator:
    def test_quantifiers_are_swapped(self):
        rbar = R_bar(tiny_problem())
        c0, c1 = frozenset({"c0"}), frozenset({"c1"})
        both = frozenset({"c0", "c1"})
        # Node: all selections must be monochromatic.
        assert rbar.allows_node([c0, c0])
        assert not rbar.allows_node([both, c0])
        # Edge: some selection must be bichromatic.
        assert rbar.allows_edge(both, both)
        assert rbar.allows_edge(c0, c1)
        assert not rbar.allows_edge(c0, c0)

    def test_name_records_history(self):
        assert R_bar(R(tiny_problem())).name.startswith("Rbar(R(")


class TestHygiene:
    def test_restrict_to_usable_reaches_fixed_point(self):
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b", "c"],
            node_constraints={1: [Multiset(["a"]), Multiset(["b"]), Multiset(["c"])]},
            # b only pairs with c, and c appears in no node... -> cascade.
            edge_constraint=[Multiset(["a", "a"]), Multiset(["b", "c"])],
            g={NO: ["a", "b"]},
        )
        reduced = restrict_to_usable(problem)
        assert reduced.sigma_out == frozenset({"a"})

    def test_restrict_keeps_placeholder_when_nothing_usable(self):
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b"],
            node_constraints={1: [Multiset(["a"])]},
            edge_constraint=[Multiset(["b", "b"])],
            g={NO: ["a", "b"]},
        )
        reduced = restrict_to_usable(problem)
        assert len(reduced.sigma_out) == 1

    def test_merge_equivalent_twins(self):
        # b and c are perfect twins; they must merge.
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b", "c"],
            node_constraints={1: [Multiset(["a"]), Multiset(["b"]), Multiset(["c"])]},
            edge_constraint=[
                Multiset(["a", "b"]),
                Multiset(["a", "c"]),
                Multiset(["b", "b"]),
                Multiset(["b", "c"]),
                Multiset(["c", "c"]),
            ],
            g={NO: ["a", "b", "c"]},
        )
        merged = merge_equivalent_labels(problem)
        assert len(merged.sigma_out) == 2

    def test_merge_does_not_conflate_different_roles(self):
        problem = catalog.coloring(3, 2)
        assert merge_equivalent_labels(problem).sigma_out == problem.sigma_out

    def test_domination_removes_weaker_label(self):
        # b is allowed strictly less often than a.
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b"],
            node_constraints={1: [Multiset(["a"]), Multiset(["b"])]},
            edge_constraint=[
                Multiset(["a", "a"]),
                Multiset(["a", "b"]),
            ],
            g={NO: ["a", "b"]},
        )
        reduced = remove_dominated_labels(problem)
        assert reduced.sigma_out == frozenset({"a"})

    def test_domination_keeps_incomparable_labels(self):
        problem = catalog.sinkless_orientation(3)
        assert remove_dominated_labels(problem).sigma_out == problem.sigma_out

    def test_simplify_idempotent(self):
        for problem in catalog.standard_catalog(2):
            once = simplify(problem, domination=True)
            twice = simplify(once, domination=True)
            assert once == twice


class TestRoundTripSemantics:
    """R and R̄ must interact with solvability exactly as §3 requires."""

    def test_solution_of_pi_projects_into_R(self):
        # Any Π-solution, with each label wrapped as a singleton set, is an
        # R(Π)-solution: this is the T=0 base case in the proof of Thm 3.4.
        from repro.graphs import path, HalfEdgeLabeling
        from repro.lcl.checker import brute_force_solution, is_valid_solution

        problem = catalog.coloring(3, max_degree=2)
        r = R(problem)
        g = path(4)
        inputs = HalfEdgeLabeling.constant(g, NO)
        solution = brute_force_solution(problem, g, inputs)
        assert solution is not None
        wrapped = HalfEdgeLabeling(
            g, {h: frozenset({label}) for h, label in solution.items()}
        )
        assert is_valid_solution(r, g, inputs, wrapped)

    def test_sinkless_orientation_is_a_sequence_fixed_point(self):
        from repro.roundelim.sequence import ProblemSequence

        so = catalog.sinkless_orientation(3)
        sequence = ProblemSequence(so, use_domination=True)
        assert sequence.find_fixed_point(max_steps=3) == 1

    def test_fixed_point_survives_more_steps(self):
        from repro.roundelim.sequence import ProblemSequence

        so = catalog.sinkless_orientation(3)
        sequence = ProblemSequence(so, use_domination=True)
        p1 = sequence.problem(1)
        p3 = sequence.problem(3)
        assert p3.is_isomorphic(p1)

    def test_alphabet_sizes_reported(self):
        from repro.roundelim.sequence import ProblemSequence

        sequence = ProblemSequence(catalog.echo(2), use_domination=True)
        sizes = sequence.alphabet_sizes(1)
        assert sizes[0] == 4
        assert sizes[1] >= 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=3))
    def test_property_simplified_echo_sequence_is_small(self, unused):
        from repro.roundelim.sequence import ProblemSequence

        sequence = ProblemSequence(catalog.echo(2), use_domination=True)
        assert all(size <= 4 for size in sequence.alphabet_sizes(1))
