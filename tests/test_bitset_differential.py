"""Differential-oracle harness for the compiled bitset backend.

The bitset kernels (:mod:`repro.roundelim.bitset`) promise to be
*representation-blind*: flipping ``REPRO_BITSET`` must never change a
single output bit.  This suite drives every catalog problem, a seeded
population of :func:`solvable_random_lcl` draws, and multi-step
``ProblemSequence`` walks through both backends and asserts

* identical operator outputs (``==`` on the problems themselves — the
  backends share input spellings, so equality is exact, not just
  canonical);
* identical canonical hashes (what the operator cache and certificates
  key on);
* identical gap-pipeline verdicts and *certificate checksums* — the
  strongest end-to-end statement: the bytes a certificate signs are the
  same bytes;
* identical budget verdicts when a budget trips mid-operator.

A second block pins the engine accounting: the compiled path must
actually run (``bitset_steps``), unsupported shapes must fall back
loudly (``bitset_fallbacks``), and the ``_nonempty_subsets`` memo must
stop rebuilding the powerset on every call (the latent perf bug fixed
alongside the backend).

The fuzz sweep scales with ``REPRO_BITSET_DIFF_COUNT`` (default 100) and
is marked ``fuzz`` like the conformance harness, so tier-1 runs the
catalog + accounting tests while nightly jobs widen the population.
"""

import re

import pytest

from repro.analysis import run_lint
from repro.exceptions import BudgetExceededError, ProblemDefinitionError
from repro.lcl import catalog
from repro.lcl.catalog import standard_catalog
from repro.lcl.random_problems import random_lcl, solvable_random_lcl
from repro.roundelim import ProblemSequence
from repro.roundelim import ops
from repro.roundelim.canonical import canonical_hash
from repro.roundelim.gap import speedup
from repro.roundelim.ops import (
    R,
    R_bar,
    configure_bitset,
    configure_parallel,
    simplify,
)
from repro.utils import cache as operator_cache
from repro.utils import env
from repro.utils.budget import Budget
from repro.verify.certificate import body_checksum

CATALOG_PROBLEMS = [(p.name, p) for p in standard_catalog(max_degree=3)]

#: Universe cap for the harness: every live catalog universe is ≤ 31
#: labels, so this changes no outcome — it only makes the (deliberate)
#: blow-up proofs raise after 512 boxes instead of 4096.
MAX_UNIVERSE = 512

#: Fuzz population size (``REPRO_BITSET_DIFF_COUNT``, default 100).
DIFF_COUNT = int(env.get_int("REPRO_BITSET_DIFF_COUNT") or 100)
#: Seeds per parametrized fuzz chunk (narrow failure ranges, cheap collection).
CHUNK = 25


@pytest.fixture(autouse=True)
def fresh_engine():
    """Serial, uncached, zeroed counters; backend restored to the env knob."""
    operator_cache.reset()
    operator_cache.reset_stats()
    operator_cache.configure(enabled=True, disk_dir=None)
    configure_parallel(workers=1)
    yield
    configure_bitset(enabled=None)
    operator_cache.reset()
    operator_cache.reset_stats()
    configure_parallel(workers=None, threshold=None)


def engine_trace(problem, enabled):
    """Everything one backend produces for ``problem``, hashes included.

    Alphabet blow-ups are legitimate outcomes (they depend only on the
    *shared* universe code, never on the backend), so they appear in the
    trace as markers and must simply agree across backends.
    """
    configure_bitset(enabled=enabled)
    trace = []
    try:
        r = R(problem, max_universe=MAX_UNIVERSE, use_cache=False)
    except ProblemDefinitionError:
        return trace + ["R blow-up"]
    trace += ["R", r, canonical_hash(r)]
    simplified = simplify(r, domination=True, use_cache=False)
    trace += ["simplify", simplified, canonical_hash(simplified)]
    try:
        rbar = R_bar(simplified, max_universe=MAX_UNIVERSE, use_cache=False)
    except ProblemDefinitionError:
        return trace + ["Rbar blow-up"]
    trace += ["Rbar", rbar, canonical_hash(rbar)]
    final = simplify(rbar, domination=True, use_cache=False)
    trace += ["final", final, canonical_hash(final)]
    return trace


def _strip_wall_clock(value):
    """Certificate body minus ``elapsed`` diagnostics.

    Budget-exceeded certificates faithfully record the wall-clock time at
    the trip — the single legitimately nondeterministic byte source (two
    *oracle* runs differ in it too).  Everything else must be identical.
    """
    if isinstance(value, dict):
        return {k: _strip_wall_clock(v) for k, v in sorted(value.items()) if k != "elapsed"}
    if isinstance(value, list):
        return [_strip_wall_clock(v) for v in value]
    return value


def pipeline_trace(problem, enabled, seed=0):
    """Gap-pipeline verdict + certificate checksum under one backend.

    The operator cache is cleared so both backends run *cold* — a warm
    cache would change which budget charges fire, which the unknown-
    verdict certificates faithfully record.
    """
    operator_cache.reset()
    operator_cache.reset_stats()
    configure_bitset(enabled=enabled)
    result = speedup(
        problem,
        max_steps=2,
        max_universe=MAX_UNIVERSE,
        budget=Budget(max_configs=5_000),
    )
    certificate = result.certify(trials=2, seed=seed)
    return (
        result.status,
        result.constant_rounds,
        result.fixed_point_at,
        body_checksum(_strip_wall_clock(certificate.body)),
    )


class TestCatalogDifferential:
    @pytest.mark.parametrize(
        "name, problem", CATALOG_PROBLEMS, ids=[n for n, _ in CATALOG_PROBLEMS]
    )
    def test_operator_walks_agree(self, name, problem):
        oracle = engine_trace(problem, enabled=False)
        bitset = engine_trace(problem, enabled=True)
        assert bitset == oracle, f"{name}: backends diverged"

    @pytest.mark.parametrize(
        "name, problem", CATALOG_PROBLEMS, ids=[n for n, _ in CATALOG_PROBLEMS]
    )
    def test_verdicts_and_certificates_agree(self, name, problem):
        oracle = pipeline_trace(problem, enabled=False)
        bitset = pipeline_trace(problem, enabled=True)
        assert bitset == oracle, f"{name}: verdict or certificate bytes diverged"

    def test_multi_step_sequences_agree(self):
        # mis stops at f^1: its f^2 alphabet legitimately blows up.
        for name, steps in (
            ("echo", 3),
            ("sinkless-orientation(delta=3)", 3),
            ("mis", 2),
        ):
            problem = dict(CATALOG_PROBLEMS)[name]
            configure_bitset(enabled=False)
            oracle_walk = [
                ProblemSequence(problem, use_cache=False).problem(k)
                for k in range(steps)
            ]
            configure_bitset(enabled=True)
            bitset_walk = [
                ProblemSequence(problem, use_cache=False).problem(k)
                for k in range(steps)
            ]
            assert bitset_walk == oracle_walk, f"{name}: sequence walk diverged"
            assert [canonical_hash(p) for p in bitset_walk] == [
                canonical_hash(p) for p in oracle_walk
            ]

    def test_deep_step_problem_agrees(self):
        # The 17-label step problem of 3-coloring is the headline speedup
        # case (bench_roundelim measures it); it must also be *exact*.
        # Only the forward operator is compared: the step problem's R̄
        # universe legitimately exceeds the default cap, and the oracle
        # spends minutes proving that.
        configure_bitset(enabled=True)
        f1 = ProblemSequence(catalog.coloring(3, 2), use_cache=False).problem(1)
        assert len(f1.sigma_out) >= 10
        traces = {}
        for enabled in (False, True):
            configure_bitset(enabled=enabled)
            r = R(f1, use_cache=False)
            simplified = simplify(r, domination=True, use_cache=False)
            traces[enabled] = (r, simplified, canonical_hash(r), canonical_hash(simplified))
        assert traces[True] == traces[False]

    def test_budget_verdicts_agree(self):
        # A budget that trips mid-operator must trip identically: the
        # bitset path charges the same counts at the same points.  The
        # message embeds elapsed wall-clock, which no backend controls —
        # normalize it away before comparing.
        problem = dict(CATALOG_PROBLEMS)["5-edge-coloring"]
        charges = {}
        for enabled in (False, True):
            configure_bitset(enabled=enabled)
            budget = Budget(max_configs=20)
            with budget:
                with pytest.raises(BudgetExceededError) as outcome:
                    R(problem, use_cache=False)
            message = re.sub(r"after \d+(\.\d+)?s", "after <elapsed>", str(outcome.value))
            charges[enabled] = (budget.configurations, message)
        assert charges[True] == charges[False]


def _fuzz_chunks(count):
    return [
        pytest.param(
            start,
            min(start + CHUNK, count),
            id=f"seeds{start}-{min(start + CHUNK, count) - 1}",
        )
        for start in range(0, count, CHUNK)
    ]


def _fuzz_problem(seed):
    """Deterministic variety over generators, shapes, and inputs."""
    if seed % 4 == 1:
        return solvable_random_lcl(seed, num_inputs=2)
    if seed % 4 == 2:
        return random_lcl(seed, num_labels=4, max_degree=3, num_inputs=1)
    if seed % 4 == 3:
        return random_lcl(seed, num_labels=3, max_degree=2, num_inputs=2)
    return solvable_random_lcl(seed, num_labels=4, max_degree=3)


@pytest.mark.fuzz
@pytest.mark.parametrize(("start", "stop"), _fuzz_chunks(DIFF_COUNT))
def test_fuzzed_problems_agree(start, stop):
    for seed in range(start, stop):
        problem = _fuzz_problem(seed)
        oracle = engine_trace(problem, enabled=False)
        bitset = engine_trace(problem, enabled=True)
        assert bitset == oracle, f"seed {seed}: backends diverged"


@pytest.mark.fuzz
@pytest.mark.parametrize(("start", "stop"), _fuzz_chunks(max(20, DIFF_COUNT // 5)))
def test_fuzzed_certificates_agree(start, stop):
    for seed in range(start, stop):
        problem = _fuzz_problem(seed)
        oracle = pipeline_trace(problem, enabled=False, seed=seed)
        bitset = pipeline_trace(problem, enabled=True, seed=seed)
        assert bitset == oracle, f"seed {seed}: certificate bytes diverged"


class TestEngineAccounting:
    def test_bitset_path_actually_runs(self):
        configure_bitset(enabled=True)
        R(dict(CATALOG_PROBLEMS)["mis"], use_cache=False)
        counters = operator_cache.stats()["operators"]
        assert counters["R"]["bitset_steps"] >= 1

    def test_oracle_path_records_no_bitset_steps(self):
        configure_bitset(enabled=False)
        R(dict(CATALOG_PROBLEMS)["mis"], use_cache=False)
        counters = operator_cache.stats()["operators"]
        assert counters["R"]["bitset_steps"] == 0

    def test_unsupported_shape_falls_back_loudly(self):
        # 70 output labels exceed the 64-bit packing word: the compiled
        # path must decline and the oracle must still answer.
        wide = catalog.trivial(2, labels=tuple(f"t{i}" for i in range(70)))
        configure_bitset(enabled=True)
        result = R(wide, use_cache=False)
        configure_bitset(enabled=False)
        assert result == R(wide, use_cache=False)
        counters = operator_cache.stats()["operators"]
        assert counters["R"]["bitset_fallbacks"] >= 1

    def test_env_knob_disables_backend(self, monkeypatch):
        configure_bitset(enabled=None)  # defer to the environment
        monkeypatch.setenv("REPRO_BITSET", "0")
        R(dict(CATALOG_PROBLEMS)["mis"], use_cache=False)
        counters = operator_cache.stats()["operators"]
        assert counters["R"]["bitset_steps"] == 0
        monkeypatch.setenv("REPRO_BITSET", "1")
        R(dict(CATALOG_PROBLEMS)["mis"], use_cache=False)
        counters = operator_cache.stats()["operators"]
        assert counters["R"]["bitset_steps"] >= 1


class TestNonemptySubsetsMemo:
    """Regression guard for the powerset-rebuild perf bug.

    ``_nonempty_subsets`` used to rebuild the full powerset on *every*
    call; it is now memoized per-universe, so repeated calls with the
    same label set must not rebuild.
    """

    def setup_method(self):
        ops._NONEMPTY_SUBSETS_CACHE.clear()
        ops._nonempty_subsets_stats.update(calls=0, builds=0)

    def test_repeat_calls_build_once(self):
        labels = frozenset({"a", "b", "c"})
        first = ops._nonempty_subsets(labels)
        second = ops._nonempty_subsets(labels)
        assert first == second
        assert ops._nonempty_subsets_stats["calls"] == 2
        assert ops._nonempty_subsets_stats["builds"] == 1

    def test_distinct_universes_build_separately(self):
        ops._nonempty_subsets(frozenset({"a", "b"}))
        ops._nonempty_subsets(frozenset({"x", "y", "z"}))
        assert ops._nonempty_subsets_stats["builds"] == 2

    def test_callers_get_independent_copies(self):
        labels = frozenset({"a", "b"})
        first = ops._nonempty_subsets(labels)
        first.append("poison")
        assert "poison" not in ops._nonempty_subsets(labels)

    def test_full_universe_mode_builds_once_per_alphabet(self):
        # `universe_mode="full"` is the production caller; a whole R +
        # R_bar round over the same alphabet must reuse one build.
        problem = dict(CATALOG_PROBLEMS)["2-coloring"]
        configure_bitset(enabled=False)
        builds_before = ops._nonempty_subsets_stats["builds"]
        R(problem, universe_mode="full", use_cache=False)
        R_bar(problem, universe_mode="full", use_cache=False)
        assert ops._nonempty_subsets_stats["builds"] == builds_before + 1


class TestLintSelfCheck:
    """CI satellite: the compiled module itself passes REP002."""

    def test_bitset_module_is_order_audited(self):
        from repro.analysis.rules import ordering

        assert "bitset" in ordering.ORDERED_OUTPUT_STEMS

    def test_bitset_module_passes_repro_lint(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        module = repo_root / "src" / "repro" / "roundelim" / "bitset.py"
        result = run_lint([module], root=repo_root)
        assert result.findings == [], "\n".join(f.render() for f in result.findings)

    def test_bitset_module_passes_rep002_specifically(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        module = repo_root / "src" / "repro" / "roundelim" / "bitset.py"
        result = run_lint([module], root=repo_root, select=["REP002"])
        assert result.findings == [], "\n".join(f.render() for f in result.findings)
