"""Tests for the central REPRO_* environment-knob registry
(:mod:`repro.utils.env`)."""

from __future__ import annotations

import logging

import pytest

from repro.roundelim import ops
from repro.utils import env

EXPECTED_KNOBS = {
    "REPRO_CACHE": "bool",
    "REPRO_CACHE_DIR": "str",
    "REPRO_CACHE_MAX_BYTES": "int",
    "REPRO_WORKERS": "int",
    "REPRO_PARALLEL_THRESHOLD": "int",
    "REPRO_CHUNK_TIMEOUT": "float",
    "REPRO_CHUNK_RETRIES": "int",
    "REPRO_FAULTS": "str",
    "REPRO_FAULTS_SEED": "int",
    "REPRO_CHECKPOINT_DIR": "str",
    "REPRO_CONFORMANCE_COUNT": "int",
    "REPRO_CELL_TIMEOUT": "float",
    "REPRO_CELL_MEM_MB": "int",
    "REPRO_CELL_RETRIES": "int",
    "REPRO_JOURNAL_DIR": "str",
    "REPRO_BITSET": "bool",
    "REPRO_BITSET_DIFF_COUNT": "int",
    "REPRO_SAT": "bool",
    "REPRO_SAT_SOLVER": "str",
    "REPRO_SAT_TIMEOUT": "float",
    "REPRO_SAT_DIFF_COUNT": "int",
    "REPRO_SCHED_WORKERS": "int",
    "REPRO_SCHED_LEASE_SECS": "float",
    "REPRO_SCHED_BACKOFF_BASE": "float",
    "REPRO_SCHED_BACKOFF_FACTOR": "float",
    "REPRO_SCHED_BACKOFF_MAX": "float",
    "REPRO_SCHED_BACKOFF_JITTER": "float",
    "REPRO_LINT_CACHE": "bool",
    "REPRO_LINT_CACHE_DIR": "str",
}

#: Knobs that configure the supervising process and must never be
#: re-read inside a forked worker or cell child (lint rule REP011).
EXPECTED_PARENT_SCOPED = {
    "REPRO_CELL_TIMEOUT",
    "REPRO_CELL_MEM_MB",
    "REPRO_CELL_RETRIES",
    "REPRO_JOURNAL_DIR",
    "REPRO_SCHED_WORKERS",
    "REPRO_SCHED_LEASE_SECS",
    "REPRO_SCHED_BACKOFF_BASE",
    "REPRO_SCHED_BACKOFF_FACTOR",
    "REPRO_SCHED_BACKOFF_MAX",
    "REPRO_SCHED_BACKOFF_JITTER",
}


class TestRegistry:
    def test_every_knob_is_declared_with_its_type(self):
        assert {name: knob.type for name, knob in env.REGISTRY.items()} == (
            EXPECTED_KNOBS
        )

    def test_parent_scoped_knobs(self):
        assert env.parent_scoped_knobs() == frozenset(EXPECTED_PARENT_SCOPED)
        for name in EXPECTED_PARENT_SCOPED:
            assert env.REGISTRY[name].scope == "parent"

    def test_declare_rejects_bad_scope(self):
        with pytest.raises(ValueError, match="scope"):
            # repro-lint: disable=REP006 -- deliberately undeclared fixture knob
            env.declare("REPRO_BOGUS_SCOPE", "bool", False, "doc", scope="child")
        assert not any(k.endswith("BOGUS_SCOPE") for k in env.REGISTRY)

    def test_every_knob_has_a_docstring(self):
        for knob in env.REGISTRY.values():
            assert knob.doc, f"{knob.name} has no doc"

    def test_declare_rejects_unprefixed_names(self):
        with pytest.raises(ValueError, match="REPRO_-prefixed"):
            env.declare("OTHER_KNOB", "bool", False, "nope")

    def test_declare_rejects_unknown_types(self):
        with pytest.raises(ValueError, match="knob type"):
            # Intentionally bogus name: never reaches the registry.
            env.declare("REPRO_X_TEST_ONLY", "complex", None, "nope")  # repro-lint: disable=REP006

    def test_declare_is_idempotent_but_rejects_conflicts(self):
        knob = env.REGISTRY["REPRO_CACHE"]
        assert env.declare(knob.name, knob.type, knob.default, knob.doc) == knob
        with pytest.raises(ValueError, match="conflicting"):
            env.declare(knob.name, "str", None, "different")

    def test_render_table_lists_every_knob(self):
        table = env.render_table()
        for name in EXPECTED_KNOBS:
            assert name in table


@pytest.fixture
def propagating_repro_logger(monkeypatch):
    """CLI tests set ``propagate=False`` on the ``repro`` logger (see
    ``repro.cli.configure_logging``); undo that here so ``caplog`` sees
    the registry's warnings regardless of test order."""
    repro_logger = logging.getLogger("repro")
    monkeypatch.setattr(repro_logger, "propagate", True)
    monkeypatch.setattr(repro_logger, "handlers", [])


class TestAccessors:
    def test_undeclared_knob_is_a_keyerror(self):
        with pytest.raises(KeyError, match="undeclared"):
            env.get_raw("REPRO_NO_SUCH_KNOB")  # repro-lint: disable=REP006
        with pytest.raises(KeyError, match="undeclared"):
            env.get_bool("REPRO_NO_SUCH_KNOB")  # repro-lint: disable=REP006

    @pytest.mark.parametrize("raw", ["0", "false", "FALSE", "off", "No"])
    def test_get_bool_false_strings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE", raw)
        assert env.get_bool("REPRO_CACHE") is False

    @pytest.mark.parametrize("raw", ["1", "true", "yes", "anything"])
    def test_get_bool_truthy_strings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CACHE", raw)
        assert env.get_bool("REPRO_CACHE") is True

    def test_get_bool_unset_reads_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert env.get_bool("REPRO_CACHE") is True

    def test_get_int_parses_and_falls_back(
        self, monkeypatch, caplog, propagating_repro_logger
    ):
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "5")
        assert env.get_int("REPRO_CHUNK_RETRIES") == 5
        monkeypatch.setenv("REPRO_CHUNK_RETRIES", "banana")
        with caplog.at_level(logging.WARNING, logger="repro.utils.env"):
            assert env.get_int("REPRO_CHUNK_RETRIES") == 2
        assert "REPRO_CHUNK_RETRIES" in caplog.text

    def test_get_float_parses_and_falls_back(
        self, monkeypatch, caplog, propagating_repro_logger
    ):
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "1.5")
        assert env.get_float("REPRO_CHUNK_TIMEOUT") == 1.5
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "soon")
        with caplog.at_level(logging.WARNING, logger="repro.utils.env"):
            assert env.get_float("REPRO_CHUNK_TIMEOUT") == 300.0
        assert "REPRO_CHUNK_TIMEOUT" in caplog.text

    def test_get_str_empty_reads_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert env.get_str("REPRO_CACHE_DIR") is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/cache")
        assert env.get_str("REPRO_CACHE_DIR") == "/tmp/cache"

    def test_get_raw_passes_through_verbatim(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "  12  ")
        assert env.get_raw("REPRO_PARALLEL_THRESHOLD") == "  12  "
        monkeypatch.delenv("REPRO_PARALLEL_THRESHOLD", raising=False)
        assert env.get_raw("REPRO_PARALLEL_THRESHOLD") is None


class TestMigratedCallSites:
    """The declared defaults must match what the consuming modules use."""

    def test_parallel_threshold_default_matches_ops(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_THRESHOLD", raising=False)
        assert ops._effective(
            "threshold", "REPRO_PARALLEL_THRESHOLD",
            env.REGISTRY["REPRO_PARALLEL_THRESHOLD"].default, int, floor=1,
        ) == env.REGISTRY["REPRO_PARALLEL_THRESHOLD"].default

    def test_cache_respects_registry_accessors(self, monkeypatch, tmp_path):
        from repro.utils import cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE", "off")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        built = cache_mod._build_from_env()
        assert built.enabled is False

    def test_faults_spec_reads_through_registry(self, monkeypatch):
        from repro.utils import faults as faults_mod

        monkeypatch.setenv("REPRO_FAULTS", "")
        monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
        plan = faults_mod._build_from_env()
        assert not plan.active
