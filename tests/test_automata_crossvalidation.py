"""Cross-validation: automaton length algebra vs. exhaustive solving.

For catalog and random problems, the set of solvable cycle/path lengths
computed by walk-reachability in the label automaton must coincide with
ground truth from the exponential brute-force solver on the concrete
instances — validating the automaton construction, the DP, *and* the
brute-force solver against each other.
"""

import pytest

from repro.decidability import LabelAutomaton, classify_cycle_problem
from repro.decidability.paths import CONSTANT, GLOBAL, LOG_STAR, UNSOLVABLE
from repro.graphs import HalfEdgeLabeling, cycle, path
from repro.lcl import catalog, random_lcl
from repro.lcl.checker import brute_force_solution

NO = catalog.NO_INPUT

CATALOG_PROBLEMS = [
    ("trivial", lambda: catalog.trivial(2)),
    ("consensus", lambda: catalog.consensus(2)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
    ("2-coloring", lambda: catalog.two_coloring(2)),
    ("mis", lambda: catalog.mis(2)),
    ("maximal-matching", lambda: catalog.maximal_matching(2)),
    ("edge-2-coloring", lambda: catalog.edge_coloring(2, 2)),
    ("edge-3-coloring", lambda: catalog.edge_coloring(3, 2)),
    ("source-sink", lambda: catalog.edge_orientation_consistent(2)),
]

RANDOM_SEEDS = list(range(25))


def brute_cycle_lengths(problem, upto):
    lengths = []
    for n in range(3, upto + 1):
        graph = cycle(n)
        inputs = HalfEdgeLabeling.constant(graph, NO)
        if brute_force_solution(problem, graph, inputs) is not None:
            lengths.append(n)
    return lengths


def brute_path_lengths(problem, upto):
    lengths = []
    for n in range(2, upto + 1):
        graph = path(n)
        inputs = HalfEdgeLabeling.constant(graph, NO)
        if brute_force_solution(problem, graph, inputs) is not None:
            lengths.append(n)
    return lengths


class TestCatalogCrossValidation:
    @pytest.mark.parametrize("name, build", CATALOG_PROBLEMS)
    def test_cycle_lengths_match_brute_force(self, name, build):
        problem = build()
        automaton = LabelAutomaton(problem)
        assert automaton.solvable_cycle_lengths(8) == brute_cycle_lengths(problem, 8)

    @pytest.mark.parametrize("name, build", CATALOG_PROBLEMS)
    def test_path_lengths_match_brute_force(self, name, build):
        problem = build()
        automaton = LabelAutomaton(problem)
        assert automaton.solvable_path_lengths(7) == brute_path_lengths(problem, 7)


class TestRandomCrossValidation:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_cycle_lengths_match_brute_force(self, seed):
        problem = random_lcl(seed, num_labels=3, max_degree=2)
        automaton = LabelAutomaton(problem)
        assert automaton.solvable_cycle_lengths(7) == brute_cycle_lengths(problem, 7)

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_path_lengths_match_brute_force(self, seed):
        problem = random_lcl(seed + 100, num_labels=3, max_degree=2)
        automaton = LabelAutomaton(problem)
        assert automaton.solvable_path_lengths(6) == brute_path_lengths(problem, 6)


class TestClassificationConsistency:
    """The classification verdicts must agree with the length algebra."""

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_verdicts_are_consistent_with_lengths(self, seed):
        problem = random_lcl(seed, num_labels=3, max_degree=2)
        automaton = LabelAutomaton(problem)
        verdict = classify_cycle_problem(problem).complexity
        lengths = automaton.solvable_cycle_lengths(24)
        if verdict == UNSOLVABLE:
            # Acyclic automaton: only boundedly many lengths can work.
            assert all(n <= len(automaton.states) for n in lengths)
        elif verdict in (CONSTANT, LOG_STAR):
            # Flexibility: every sufficiently large length is solvable.
            tail = [n for n in range(16, 25)]
            assert all(n in lengths for n in tail)
        else:  # GLOBAL: restricted residues — some large length missing.
            assert any(n not in lengths for n in range(16, 25))

    def test_two_coloring_even_lengths_only(self):
        automaton = LabelAutomaton(catalog.two_coloring(2))
        assert automaton.solvable_cycle_lengths(9) == [4, 6, 8]
        # Paths of every length are 2-colorable.
        assert automaton.solvable_path_lengths(7) == [2, 3, 4, 5, 6, 7]

    def test_consensus_all_lengths(self):
        automaton = LabelAutomaton(catalog.consensus(2))
        assert automaton.solvable_cycle_lengths(6) == [3, 4, 5, 6]
