"""Charging discipline of the LOCAL simulator under delegation.

Every ball request at delegation depth ``d`` with radius ``r`` charges
``d + r`` rounds (Lemma 3.9 accounting), all contexts reached from one
root share a single meter, and the meter is monotone — so an algorithm
cannot launder extra locality through nested :meth:`NodeContext.delegate`
calls, at any depth.
"""

import pytest

from repro.exceptions import AlgorithmError
from repro.graphs import cycle
from repro.local.model import (
    LocalAlgorithm,
    NodeContext,
    _ChargeMeter,
    run_local_algorithm,
)


class TestChargeMeter:
    def test_starts_at_zero(self):
        assert _ChargeMeter().max_charge == 0

    def test_monotone_max(self):
        meter = _ChargeMeter()
        for amount, expected in [(2, 2), (1, 2), (5, 5), (0, 5), (5, 5), (7, 7)]:
            meter.charge(amount)
            assert meter.max_charge == expected


def context_at(graph, node=0):
    return NodeContext(graph, node, graph.num_nodes, None, None, None)


class TestDelegationCharging:
    def test_depth_zero_local_reads_are_free(self):
        ctx = context_at(cycle(8))
        assert ctx.degree == 2
        ctx.input(0)
        assert ctx.charged_radius == 0

    def test_ball_charges_its_radius(self):
        ctx = context_at(cycle(8))
        ctx.ball(3)
        assert ctx.charged_radius == 3

    def test_delegated_local_read_charges_the_hop(self):
        ctx = context_at(cycle(8))
        inner = ctx.delegate(0)
        assert inner.degree == 2  # depth-1 read: charge 1
        assert ctx.charged_radius == 1

    def test_depth_two_ball_charges_depth_plus_radius(self):
        ctx = context_at(cycle(8))
        inner = ctx.delegate(0).delegate(0)  # depth 2
        inner.ball(3)
        assert ctx.charged_radius == 2 + 3

    def test_meter_shared_across_delegation_tree(self):
        # Charges from sibling delegated contexts accumulate into the
        # *root's* meter: the max over everything the node ever saw.
        ctx = context_at(cycle(8))
        ctx.delegate(0).ball(1)  # charge 2
        ctx.delegate(1).delegate(0).ball(4)  # charge 6
        ctx.ball(3)  # charge 3
        assert ctx.charged_radius == 6

    @pytest.mark.parametrize("depth", [2, 3, 5, 8])
    def test_adversarial_delegation_depth_charges_every_hop(self, depth):
        # A radius-0 ball at depth d still charges d: walking the graph
        # through delegation is not free locality.
        ctx = context_at(cycle(2 * depth + 2))
        inner = ctx
        for _ in range(depth):
            inner = inner.delegate(0)
        inner.ball(0)
        assert ctx.charged_radius == depth

    def test_charge_monotone_under_interleaving(self):
        ctx = context_at(cycle(8))
        observed = []
        ctx.ball(2)
        observed.append(ctx.charged_radius)
        ctx.delegate(0).ball(0)  # charge 1 < current max
        observed.append(ctx.charged_radius)
        ctx.delegate(0).delegate(1).ball(2)  # charge 4
        observed.append(ctx.charged_radius)
        assert observed == sorted(observed) == [2, 2, 4]


class _DepthTwoProbe(LocalAlgorithm):
    """Simulates an inner 1-round algorithm at a neighbor's neighbor.

    Deepest request: a radius-1 ball at delegation depth 2 — the
    Lemma 3.9 accounting says exactly 2 + 1 = 3 rounds.
    """

    name = "depth-two-probe"

    def __init__(self, declared: int = 3):
        self._declared = declared

    def radius(self, n: int) -> int:
        return self._declared

    def run(self, ctx: NodeContext):
        degree = ctx.degree
        if degree:
            inner = ctx.delegate(0).delegate(0)
            inner.ball(1)
        return {port: "x" for port in range(degree)}


class TestSimulatorAccounting:
    def test_declared_radius_accounting_matches_depth_plus_radius(self):
        result = run_local_algorithm(cycle(10), _DepthTwoProbe(declared=3))
        assert result.max_radius_used == 3
        assert result.declared_radius == 3
        assert result.within_declared_radius
        assert result.radius_per_node == [3] * 10

    def test_underdeclared_radius_rejected(self):
        with pytest.raises(AlgorithmError) as excinfo:
            run_local_algorithm(cycle(10), _DepthTwoProbe(declared=2))
        assert "used radius 3" in str(excinfo.value)
        assert "declared 2" in str(excinfo.value)

    def test_enforcement_can_be_waived_but_charge_still_reported(self):
        result = run_local_algorithm(
            cycle(10), _DepthTwoProbe(declared=2), enforce_radius=False
        )
        assert result.max_radius_used == 3
        assert not result.within_declared_radius
