"""Framework-level tests: suppressions, baseline grandfathering,
reporters, fingerprints, and the CLI entry points."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.report import render_json, render_rule_list, render_text
from repro.cli import main as landscape_main

BARE_EXCEPT = "def f():\n    try:\n        return 1\n    except:\n        return 2\n"


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestSuppressions:
    def test_same_line_comment_silences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:  # repro-lint: disable=REP007\n"
            "        return 2\n",
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_above_comment_silences(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    # repro-lint: disable=REP007\n"
            "    except:\n"
            "        return 2\n",
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == []
        assert result.suppressed == 1

    def test_disable_file_silences_whole_module(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "# repro-lint: disable-file=REP007\n" + BARE_EXCEPT + BARE_EXCEPT.replace("f()", "g()"),
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == []
        assert result.suppressed == 2

    def test_wrong_code_does_not_silence(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:  # repro-lint: disable=REP008\n"
            "        return 2\n",
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert [f.rule for f in result.findings] == ["REP007"]
        assert result.suppressed == 0

    def test_comma_list_silences_multiple_codes(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f(x=[]):  # repro-lint: disable=REP007, REP008\n    return x\n",
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == []


class TestBaseline:
    def test_round_trip_grandfathers_existing_findings(self, tmp_path):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        first = run_lint([tmp_path], root=tmp_path)
        assert len(first.findings) == 1 and not first.ok

        baseline_file = tmp_path / "baseline.json"
        write_baseline(first.findings, baseline_file)
        baseline = load_baseline(baseline_file)

        second = run_lint([tmp_path], root=tmp_path, baseline=baseline)
        assert second.findings == []
        assert second.baselined == 1
        assert second.ok

    def test_new_findings_are_not_grandfathered(self, tmp_path):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(run_lint([tmp_path], root=tmp_path).findings, baseline_file)

        write(tmp_path, "other.py", "def g(x={}):\n    return x\n")
        result = run_lint(
            [tmp_path], root=tmp_path, baseline=load_baseline(baseline_file)
        )
        assert [f.rule for f in result.findings] == ["REP008"]
        assert result.baselined == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        before = run_lint([tmp_path], root=tmp_path).findings[0]
        write(tmp_path, "mod.py", "\n\nVERSION = 1\n\n" + BARE_EXCEPT)
        after = run_lint([tmp_path], root=tmp_path).findings[0]
        assert after.line != before.line
        assert after.fingerprint == before.fingerprint

    def test_malformed_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestReporters:
    def make_result(self, tmp_path):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        return run_lint([tmp_path], root=tmp_path)

    def test_text_report_has_location_and_summary(self, tmp_path):
        text = render_text(self.make_result(tmp_path))
        assert "mod.py:4" in text
        assert "REP007" in text
        assert "1 finding(s) in 1 file(s)" in text

    def test_json_report_parses_and_counts(self, tmp_path):
        body = json.loads(render_json(self.make_result(tmp_path)))
        assert body["summary"]["total"] == 1
        assert body["summary"]["by_rule"] == {"REP007": 1}
        (finding,) = body["findings"]
        assert finding["rule"] == "REP007"
        assert finding["path"] == "mod.py"
        assert finding["fingerprint"]

    def test_rule_list_names_every_registered_rule(self):
        listing = render_rule_list()
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005",
                     "REP006", "REP007", "REP008", "REP009"):
            assert code in listing

    def test_syntax_error_becomes_rep000_finding(self, tmp_path):
        write(tmp_path, "mod.py", "def broken(:\n")
        result = run_lint([tmp_path], root=tmp_path)
        assert [f.rule for f in result.findings] == ["REP000"]
        assert not result.ok


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "VALUE = 1\n")
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 1
        assert "REP007" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_select_code_exits_two(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "VALUE = 1\n")
        assert lint_main([str(tmp_path), "--select", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_write_then_use_baseline(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        baseline = tmp_path / "baseline.json"
        args = [str(tmp_path), "--root", str(tmp_path)]
        assert lint_main(args + ["--write-baseline", str(baseline)]) == 0
        assert "1 finding(s) grandfathered" in capsys.readouterr().out
        assert lint_main(args + ["--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        assert lint_main([str(tmp_path), "--root", str(tmp_path), "--format", "json"]) == 1
        assert json.loads(capsys.readouterr().out)["summary"]["total"] == 1

    def test_env_flag_prints_knob_table(self, capsys):
        assert lint_main(["--env"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_CACHE" in out and "REPRO_WORKERS" in out

    def test_landscape_lint_verb_matches_repro_lint(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        code = landscape_main(["lint", str(tmp_path), "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP007" in out


#: Two byte-identical violations in one module: under the v1 fingerprint
#: scheme these collapsed into one hash, so baselining the first
#: silently grandfathered its twin.
TWINS = BARE_EXCEPT + BARE_EXCEPT


class TestOccurrenceFingerprints:
    def test_twin_findings_get_distinct_fingerprints(self, tmp_path):
        write(tmp_path, "mod.py", TWINS)
        findings = run_lint([tmp_path], root=tmp_path).findings
        assert [f.rule for f in findings] == ["REP007", "REP007"]
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_first_occurrence_keeps_its_v1_fingerprint(self, tmp_path):
        """The occurrence suffix is only added for the second twin
        onward, so singleton fingerprints — i.e. every fingerprint a v1
        baseline can contain — are unchanged."""
        write(tmp_path, "mod.py", BARE_EXCEPT)
        singleton = run_lint([tmp_path], root=tmp_path).findings[0]
        write(tmp_path, "mod.py", TWINS)
        first, second = run_lint([tmp_path], root=tmp_path).findings
        assert first.fingerprint == singleton.fingerprint
        assert second.fingerprint != singleton.fingerprint

    def test_v1_baseline_no_longer_hides_the_twin(self, tmp_path):
        """A v1 baseline written before the twin existed matches exactly
        the first occurrence; the twin surfaces as a new finding."""
        write(tmp_path, "mod.py", TWINS)
        first = run_lint([tmp_path], root=tmp_path).findings[0]
        v1 = tmp_path / "baseline-v1.json"
        v1.write_text(
            json.dumps({"version": 1, "findings": {first.fingerprint: 1}}),
            encoding="utf-8",
        )
        result = run_lint([tmp_path], root=tmp_path, baseline=load_baseline(v1))
        assert result.baselined == 1
        assert len(result.findings) == 1
        assert result.findings[0].line > first.line

    def test_v2_baseline_grandfathers_both_twins(self, tmp_path):
        write(tmp_path, "mod.py", TWINS)
        first = run_lint([tmp_path], root=tmp_path)
        baseline_file = tmp_path / "baseline.json"
        counts = write_baseline(first.findings, baseline_file)
        assert len(counts) == 2 and all(n == 1 for n in counts.values())
        second = run_lint(
            [tmp_path], root=tmp_path, baseline=load_baseline(baseline_file)
        )
        assert second.findings == [] and second.baselined == 2

    def test_occurrence_is_stable_under_reordering_unrelated_findings(self, tmp_path):
        """Occurrence indices are assigned per (rule, path, line text)
        after the final sort, so adding an unrelated finding elsewhere
        must not renumber the twins."""
        write(tmp_path, "mod.py", TWINS)
        before = run_lint([tmp_path], root=tmp_path).findings
        write(tmp_path, "aaa.py", "def g(x={}):\n    return x\n")
        after = [
            f for f in run_lint([tmp_path], root=tmp_path).findings
            if f.rule == "REP007"
        ]
        assert [f.fingerprint for f in before] == [f.fingerprint for f in after]


class TestSuppressionEdgeCases:
    def test_justification_suffix_is_accepted(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            BARE_EXCEPT.replace(
                "except:", "except:  # repro-lint: disable=REP007 -- probing legacy API"
            ),
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == [] and result.suppressed == 1

    def test_same_line_wins_and_file_directive_goes_stale(self, tmp_path):
        """When a same-line directive already silences the finding, a
        redundant whole-file directive for the same code is *unused* —
        the stale-suppression report must surface it for removal."""
        write(
            tmp_path,
            "mod.py",
            "# repro-lint: disable-file=REP007\n"
            + BARE_EXCEPT.replace("except:", "except:  # repro-lint: disable=REP007"),
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == [] and result.suppressed == 1
        assert [(u.line, u.code) for u in result.unused_suppressions] == [(0, "REP007")]

    def test_multi_code_directive_reports_only_the_unused_code(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f(x=[]):  # repro-lint: disable=REP007, REP008\n    return x\n",
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert result.findings == [] and result.suppressed == 1
        assert [u.code for u in result.unused_suppressions] == ["REP007"]

    def test_inactive_codes_are_not_reported_stale(self, tmp_path):
        """A directive for a rule that is not running this invocation
        cannot be judged stale (it may well be load-bearing)."""
        write(
            tmp_path,
            "mod.py",
            "def f(x=[]):  # repro-lint: disable=REP007, REP008\n    return x\n",
        )
        result = run_lint([tmp_path], root=tmp_path, select=["REP008"])
        assert result.unused_suppressions == []

    def test_directive_inside_a_string_literal_is_inert(self, tmp_path):
        """Only genuine comments are directives: a directive-shaped
        string literal (a lint-test fixture, a docstring quoting the
        syntax) must neither silence findings nor be reported stale."""
        write(
            tmp_path,
            "mod.py",
            'FIXTURE = "except:  # repro-lint: disable=REP007"\n'
            + BARE_EXCEPT,
        )
        result = run_lint([tmp_path], root=tmp_path)
        assert [f.rule for f in result.findings] == ["REP007"]
        assert result.suppressed == 0
        assert result.unused_suppressions == []

    def test_unused_directives_survive_the_warm_cache(self, tmp_path):
        """Directive usage is recomputed per run from replayed facts —
        a warm run must report the same stale directives as a cold one."""
        write(tmp_path, "mod.py", "VALUE = 1  # repro-lint: disable=REP007\n")
        cold = run_lint([tmp_path], root=tmp_path, cache_dir=tmp_path / "cache")
        warm = run_lint([tmp_path], root=tmp_path, cache_dir=tmp_path / "cache")
        assert warm.cache_hits == 1
        assert (
            [(u.path, u.line, u.code) for u in cold.unused_suppressions]
            == [(u.path, u.line, u.code) for u in warm.unused_suppressions]
            == [("mod.py", 1, "REP007")]
        )
