"""Tests for the lcl-landscape command-line interface."""

import pytest

from repro.cli import CATALOG, main, resolve_problem
from repro.exceptions import ReproError


class TestResolveProblem:
    def test_bare_names(self):
        for name in CATALOG:
            problem = resolve_problem(name)
            assert problem.sigma_out

    def test_parameterized(self):
        assert resolve_problem("sinkless:4").max_degree == 4
        assert len(resolve_problem("coloring:5").sigma_out) == 5

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            resolve_problem("nonsense")

    def test_file_spec(self, tmp_path):
        from repro.lcl import catalog
        from repro.lcl.fmt import serialize

        target = tmp_path / "problem.lcl"
        target.write_text(serialize(catalog.mis(2)), encoding="utf-8")
        problem = resolve_problem(f"file:{target}")
        assert problem.name == "mis"


class TestCommands:
    def test_show(self, capsys):
        assert main(["show", "sinkless"]) == 0
        out = capsys.readouterr().out
        assert "node[3]" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "sinkless" in out and "echo2" in out

    def test_classify(self, capsys):
        assert main(["classify", "2-coloring"]) == 0
        out = capsys.readouterr().out
        assert "Theta(n)" in out

    def test_speedup_constant(self, capsys):
        assert main(["speedup", "echo:2", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "constant" in out and "PASS" in out

    def test_speedup_fixed_point(self, capsys):
        assert main(["speedup", "sinkless", "--max-steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "fixed-point" in out

    def test_landscape_volume(self, capsys):
        assert main(["landscape", "volume", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "VOLUME landscape" in out
        assert "gap" in out

    def test_error_exit_code(self, capsys):
        assert main(["show", "nonsense"]) == 2
        assert "unknown problem" in capsys.readouterr().err
