"""Tests for the lcl-landscape command-line interface."""

import pytest

from repro.cli import CATALOG, main, resolve_problem
from repro.exceptions import ReproError


class TestResolveProblem:
    def test_bare_names(self):
        for name in CATALOG:
            problem = resolve_problem(name)
            assert problem.sigma_out

    def test_parameterized(self):
        assert resolve_problem("sinkless:4").max_degree == 4
        assert len(resolve_problem("coloring:5").sigma_out) == 5

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            resolve_problem("nonsense")

    def test_file_spec(self, tmp_path):
        from repro.lcl import catalog
        from repro.lcl.fmt import serialize

        target = tmp_path / "problem.lcl"
        target.write_text(serialize(catalog.mis(2)), encoding="utf-8")
        problem = resolve_problem(f"file:{target}")
        assert problem.name == "mis"


class TestCommands:
    def test_show(self, capsys):
        assert main(["show", "sinkless"]) == 0
        out = capsys.readouterr().out
        assert "node[3]" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "sinkless" in out and "echo2" in out

    def test_classify(self, capsys):
        assert main(["classify", "2-coloring"]) == 0
        out = capsys.readouterr().out
        assert "Theta(n)" in out

    def test_speedup_constant(self, capsys):
        assert main(["speedup", "echo:2", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "constant" in out and "PASS" in out

    def test_speedup_fixed_point(self, capsys):
        assert main(["speedup", "sinkless", "--max-steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "fixed-point" in out

    def test_landscape_volume(self, capsys):
        assert main(["landscape", "volume", "--points", "3"]) == 0
        out = capsys.readouterr().out
        assert "VOLUME landscape" in out
        assert "gap" in out

    def test_error_exit_code(self, capsys):
        assert main(["show", "nonsense"]) == 2
        assert "unknown problem" in capsys.readouterr().err


class TestSupervisedLandscape:
    def test_inline_isolation_matches_default_output(self, capsys):
        assert main(["landscape", "volume", "--points", "3", "--isolate", "inline"]) == 0
        out = capsys.readouterr().out
        assert "VOLUME landscape" in out
        assert "component-count" in out

    def test_journal_then_resume_bit_identical(self, tmp_path, capsys):
        args = [
            "landscape", "grids", "--points", "2",
            "--isolate", "inline", "--journal", str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "journal:" in first
        assert "0 resumed" in first
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "6 resumed" in second  # 3 series x 2 points, all restored

        def panel_lines(text):
            return [line for line in text.splitlines() if not line.startswith("  campaign:")]

        assert panel_lines(first) == panel_lines(second)

    def test_journal_dir_from_environment(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path))
        assert main(
            ["landscape", "volume", "--points", "3", "--isolate", "inline", "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert list(tmp_path.glob("run-*.jsonl"))

    def test_campaign_seed_names_a_fresh_journal(self, tmp_path, capsys):
        base = [
            "landscape", "volume", "--points", "3",
            "--isolate", "inline", "--journal", str(tmp_path),
        ]
        assert main(base) == 0
        assert main(base + ["--campaign-seed", "1"]) == 0
        capsys.readouterr()
        assert len(list(tmp_path.glob("run-*.jsonl"))) == 2


class TestInterruptExitCode:
    def test_keyboard_interrupt_exits_130_for_any_verb(self, capsys, monkeypatch):
        def interrupted(args):
            raise KeyboardInterrupt

        import repro.cli as cli_module

        monkeypatch.setattr(cli_module, "cmd_show", interrupted)
        assert main(["show", "mis"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_interrupt_mid_campaign_preserves_journal(self, capsys, monkeypatch):
        # SIGINT during the landscape verb must still exit 130 while the
        # journal keeps every completed cell (flushed per record).
        import repro.supervisor.campaign as campaign_module

        real = campaign_module.supervise_cell
        state = {"count": 0}

        def interrupt_third(spec, config):
            state["count"] += 1
            if state["count"] == 3:
                raise KeyboardInterrupt
            return real(spec, config)

        monkeypatch.setattr(campaign_module, "supervise_cell", interrupt_third)
        import tempfile

        with tempfile.TemporaryDirectory() as journal_dir:
            argv = [
                "landscape", "volume", "--points", "3",
                "--isolate", "inline", "--journal", journal_dir,
            ]
            assert main(argv) == 130
            assert "interrupted" in capsys.readouterr().err
            from pathlib import Path

            journal = next(Path(journal_dir).glob("run-*.jsonl"))
            recorded = journal.read_text().count('"kind":"cell"')
            assert recorded == 2  # the two cells finished before SIGINT

            # The resumed run restores them and completes the panel.
            monkeypatch.setattr(campaign_module, "supervise_cell", real)
            assert main(argv + ["--resume"]) == 0
            out = capsys.readouterr().out
            assert "2 resumed" in out
            assert "VOLUME landscape" in out
