"""Property tests for the Lemma 3.9 lifting internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lcl import catalog
from repro.roundelim.lift import _choose_edge_pair
from repro.roundelim.ops import R
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import find_zero_round_algorithm
from repro.utils.multiset import Multiset, label_sort_key


def label_sets(problem):
    return sorted(problem.sigma_out, key=label_sort_key)


class TestChooseEdgePair:
    @pytest.fixture(scope="class")
    def intermediate(self):
        return ProblemSequence(catalog.echo(2)).intermediate(0)

    def test_returns_allowed_pair(self, intermediate):
        labels = label_sets(intermediate)
        low = frozenset(labels[: len(labels) // 2 + 1])
        high = frozenset(labels)
        pair = _choose_edge_pair(low, high, intermediate.edge_constraint)
        if pair is not None:
            a, b = pair
            assert a in low and b in high
            assert Multiset((a, b)) in intermediate.edge_constraint

    def test_deterministic(self, intermediate):
        labels = label_sets(intermediate)
        low, high = frozenset(labels), frozenset(labels)
        first = _choose_edge_pair(low, high, intermediate.edge_constraint)
        second = _choose_edge_pair(low, high, intermediate.edge_constraint)
        assert first == second

    def test_none_when_no_pair_allowed(self):
        problem = catalog.coloring(2, 2)
        lifted = R(problem)
        c0 = frozenset({frozenset({"c0"})})
        # {c0} vs {c0}: the only cross pair is monochromatic -> no pair.
        assert _choose_edge_pair(c0, c0, lifted.edge_constraint) is None

    def test_respects_side_assignment(self, intermediate):
        # The first component always comes from the first argument — the
        # low-ID endpoint in the lift — so both endpoints, calling with
        # the same canonical argument order, read off consistent labels.
        labels = label_sets(intermediate)
        for i in range(len(labels)):
            low = frozenset(labels[: i + 1])
            high = frozenset(labels[i:])
            pair = _choose_edge_pair(low, high, intermediate.edge_constraint)
            if pair is not None:
                assert pair[0] in low and pair[1] in high


class TestZeroRoundPermutationEquivariance:
    @settings(max_examples=30, deadline=None)
    @given(st.permutations(["0", "1", "0"]))
    def test_outputs_follow_ports(self, input_tuple):
        problem = catalog.input_copy(3)
        algorithm = find_zero_round_algorithm(problem)
        outputs = algorithm.outputs_for(tuple(input_tuple))
        # input_copy pins each output to its own port's input.
        for value, output in zip(input_tuple, outputs):
            assert output == f"out{value}"

    def test_table_respects_node_constraint_for_every_tuple(self):
        import itertools

        problem = catalog.echo(2)
        sequence = ProblemSequence(problem)
        zero = find_zero_round_algorithm(sequence.problem(1))
        lifted_problem = sequence.problem(1)
        for degree in (1, 2):
            for inputs in itertools.product(sorted(problem.sigma_in), repeat=degree):
                outputs = zero.outputs_for(inputs)
                assert lifted_problem.allows_node(Multiset(outputs))
                for input_label, output in zip(inputs, outputs):
                    assert output in lifted_problem.allowed_outputs(input_label)
