"""Fixture tests for every REP rule: a snippet that must fire and a
close sibling that must stay silent."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint


def lint_file(tmp_path: Path, name: str, source: str, **kwargs):
    """Write one fixture file (as a package member when nested) and lint
    it; returns the findings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    parent = path.parent
    while parent != tmp_path:
        (parent / "__init__.py").touch()
        parent = parent.parent
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([tmp_path], root=tmp_path, **kwargs).findings


def codes(findings):
    return [finding.rule for finding in findings]


# ------------------------------------------------------------------- REP001
class TestUnseededRandomness:
    def test_global_function_fires(self, tmp_path):
        findings = lint_file(
            tmp_path, "mod.py", "import random\nx = random.randint(0, 7)\n"
        )
        assert codes(findings) == ["REP001"]
        assert findings[0].line == 2

    def test_unseeded_constructor_fires(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", "import random\nr = random.Random()\n")
        assert codes(findings) == ["REP001"]

    def test_from_import_of_global_function_fires(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", "from random import shuffle\n")
        assert codes(findings) == ["REP001"]

    def test_numpy_global_fires_through_alias(self, tmp_path):
        findings = lint_file(
            tmp_path, "mod.py", "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert codes(findings) == ["REP001"]

    def test_seeded_generators_stay_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            import random
            import numpy

            def draw(seed):
                rng = random.Random(seed)
                gen = numpy.random.default_rng(seed)
                return rng.randint(0, 7), gen.integers(7)
            """,
        )
        assert findings == []

    def test_tests_are_out_of_scope(self, tmp_path):
        findings = lint_file(
            tmp_path, "test_mod.py", "import random\nx = random.random()\n"
        )
        assert findings == []


# ------------------------------------------------------------------- REP002
class TestUnorderedIteration:
    def test_dict_view_for_loop_fires_in_codec(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "codec.py",
            """
            def encode(table):
                out = []
                for key, value in table.items():
                    out.append((key, value))
                return out
            """,
        )
        assert codes(findings) == ["REP002"]

    def test_set_comprehension_iterable_fires_in_verify(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "pkg/verify/certificate.py",
            "def labels(x):\n    return [a for a in set(x)]\n",
        )
        assert codes(findings) == ["REP002"]

    def test_sorted_wrapper_is_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "codec.py",
            """
            def encode(table, x):
                rows = [pair for pair in sorted(table.items())]
                view = tuple(sorted(v for v in table.values()))
                count = len(set(x))
                return rows, view, count
            """,
        )
        assert findings == []

    def test_out_of_scope_module_is_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "pipeline.py",
            "def f(table):\n    return [k for k in table.keys()]\n",
        )
        assert findings == []

    def test_deleting_sorted_from_real_codec_fires(self, tmp_path):
        """The acceptance canary: strip the ``sorted()`` from the real
        codec's canonical-serialization call site and REP002 must fire."""
        repo_root = Path(__file__).resolve().parents[1]
        source = (repo_root / "src/repro/lcl/codec.py").read_text(encoding="utf-8")
        needle = "sorted(problem.node_constraints.items())"
        assert needle in source, "codec.py no longer matches the canary premise"
        broken = source.replace(needle, "problem.node_constraints.items()")
        findings = lint_file(tmp_path, "codec.py", broken, select=["REP002"])
        assert "REP002" in codes(findings)
        # And the unmodified module is clean, so the finding is the deletion's.
        assert lint_file(tmp_path, "codec.py", source, select=["REP002"]) == []


# ------------------------------------------------------------------- REP003
_PKG_FILES = {
    "proj/__init__.py": "",
    "proj/util.py": "VALUE = 1\n",
    "proj/roundelim/__init__.py": "from proj.roundelim import ops\n",
    "proj/roundelim/ops.py": "def R(x):\n    return x\n",
}


class TestEngineFreeImports:
    def write_tree(self, tmp_path, files):
        for name, source in {**_PKG_FILES, **files}.items():
            path = tmp_path / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return run_lint([tmp_path], root=tmp_path, select=["REP003"]).findings

    def test_direct_engine_import_fires(self, tmp_path):
        findings = self.write_tree(
            tmp_path,
            {
                "proj/verify/__init__.py": "from proj.verify.check import check\n",
                "proj/verify/check.py": (
                    "from proj.roundelim.ops import R\n\ndef check(c):\n    return R(c)\n"
                ),
            },
        )
        assert codes(findings) == ["REP003"]
        assert findings[0].path.endswith("check.py")
        assert "roundelim" in findings[0].message

    def test_transitive_engine_import_fires(self, tmp_path):
        findings = self.write_tree(
            tmp_path,
            {
                "proj/helper.py": "import proj.roundelim\n",
                "proj/verify/__init__.py": "from proj.helper import *\n",
            },
        )
        assert codes(findings) == ["REP003"]

    def test_function_level_import_is_the_sanctioned_idiom(self, tmp_path):
        findings = self.write_tree(
            tmp_path,
            {
                "proj/verify/__init__.py": (
                    "def produce(c):\n"
                    "    from proj.roundelim.ops import R\n"
                    "    return R(c)\n"
                ),
            },
        )
        assert findings == []

    def test_declared_producer_module_is_exempt(self, tmp_path):
        findings = self.write_tree(
            tmp_path,
            {
                "proj/verify/__init__.py": "from proj.util import VALUE\n",
                "proj/verify/certify.py": "from proj.roundelim.ops import R\n",
            },
        )
        assert findings == []


# ------------------------------------------------------------------- REP004
class TestPoolCallables:
    def test_lambda_submission_fires(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            def run(pool, items):
                return [pool.submit(lambda x: x + 1, item) for item in items]
            """,
        )
        assert codes(findings) == ["REP004"]

    def test_nested_function_fires(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            def run(pool, items):
                def work(item):
                    return item + 1
                return pool.submit(work, items)
            """,
        )
        assert codes(findings) == ["REP004"]

    def test_module_level_worker_is_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            def work(item):
                return item + 1

            def run(pool, items):
                return pool.submit(work, items)
            """,
        )
        assert findings == []

    def test_run_chunks_serial_fn_lambda_is_allowed(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            def worker(chunk):
                return chunk

            def init():
                pass

            def go(chunks, workers):
                return _run_chunks(
                    chunks, worker, lambda c: c, init, (), workers, "op"
                )
            """,
        )
        assert findings == []

    def test_run_chunks_lambda_worker_fires(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            def go(chunks, workers):
                return _run_chunks(
                    chunks, lambda c: c, None, None, (), workers, "op"
                )
            """,
        )
        assert codes(findings) == ["REP004"]


# ------------------------------------------------------------------- REP005
class TestWallClock:
    def test_time_time_fires_in_verify(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "pkg/verify/transcript.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
        )
        assert codes(findings) == ["REP005"]

    def test_datetime_now_fires_through_from_import(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "pkg/verify/envelope.py",
            "from datetime import datetime\n\ndef stamp():\n    return datetime.now()\n",
        )
        assert codes(findings) == ["REP005"]

    def test_monotonic_and_out_of_scope_are_silent(self, tmp_path):
        clean = "import time\n\ndef tick():\n    return time.monotonic()\n"
        assert lint_file(tmp_path, "pkg/verify/check.py", clean) == []
        wall = "import time\n\ndef stamp():\n    return time.time()\n"
        assert lint_file(tmp_path, "pkg/engine/loop.py", wall) == []


# ------------------------------------------------------------------- REP006
class TestEnvKnobs:
    def test_undeclared_knob_literal_fires(self, tmp_path):
        findings = lint_file(tmp_path, "mod.py", 'KNOB = "REPRO_NOT_A_KNOB"\n')
        assert codes(findings) == ["REP006"]

    def test_raw_environ_read_of_declared_knob_fires(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            'import os\nX = os.environ.get("REPRO_CACHE")\n',
        )
        assert codes(findings) == ["REP006"]
        findings = lint_file(
            tmp_path, "mod.py", 'import os\nX = os.environ["REPRO_CACHE"]\n'
        )
        assert codes(findings) == ["REP006"]
        findings = lint_file(
            tmp_path, "mod.py", 'import os\nX = os.getenv("REPRO_WORKERS")\n'
        )
        assert codes(findings) == ["REP006"]

    def test_declared_literal_and_typed_accessor_are_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            from repro.utils import env

            FLAG = "REPRO_CACHE"
            enabled = env.get_bool(FLAG)
            """,
        )
        assert findings == []

    def test_registry_module_itself_is_exempt(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "env.py",
            'import os\nX = os.environ.get("REPRO_CACHE")\n',
        )
        assert findings == []


# ------------------------------------------------- REP007 / REP008 / REP009
class TestHygiene:
    def test_bare_except_fires(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            "def f():\n    try:\n        return 1\n    except:\n        return 2\n",
        )
        assert codes(findings) == ["REP007"]

    def test_typed_except_is_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            "def f():\n    try:\n        return 1\n    except Exception:\n        return 2\n",
        )
        assert findings == []

    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()", "list()"])
    def test_mutable_default_fires(self, tmp_path, default):
        findings = lint_file(tmp_path, "mod.py", f"def f(x={default}):\n    return x\n")
        assert codes(findings) == ["REP008"]

    def test_none_default_is_silent(self, tmp_path):
        findings = lint_file(
            tmp_path, "mod.py", "def f(x=None, y=(), z=7):\n    return x, y, z\n"
        )
        assert findings == []

    def test_generic_raise_in_public_function_fires(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            'def load(path):\n    raise RuntimeError("boom")\n',
        )
        assert codes(findings) == ["REP009"]

    def test_private_helper_and_taxonomy_raise_are_silent(self, tmp_path):
        findings = lint_file(
            tmp_path,
            "mod.py",
            """
            from repro.exceptions import ReproError

            def _helper():
                raise RuntimeError("internal")

            def load(path):
                raise ReproError("bad path")

            def parse(raw):
                raise ValueError(raw)
            """,
        )
        assert findings == []
