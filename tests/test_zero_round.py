"""Tests for the A_det construction (0-round decidability)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemDefinitionError
from repro.graphs import HalfEdgeLabeling, path, random_forest, random_ids, star
from repro.lcl import catalog, is_valid_solution
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import run_local_algorithm
from repro.roundelim.lift import ZeroRoundLocalAlgorithm
from repro.roundelim.zero_round import find_zero_round_algorithm
from repro.utils.multiset import Multiset

NO = catalog.NO_INPUT


class TestExistence:
    def test_trivial_is_zero_round(self):
        assert find_zero_round_algorithm(catalog.trivial(3)) is not None

    def test_consensus_is_zero_round(self):
        # Consensus looks global but a deterministic constant choice works.
        assert find_zero_round_algorithm(catalog.consensus(3)) is not None

    def test_input_copy_is_zero_round(self):
        assert find_zero_round_algorithm(catalog.input_copy(3)) is not None

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: catalog.coloring(3, 2),
            lambda: catalog.mis(3),
            lambda: catalog.maximal_matching(3),
            lambda: catalog.sinkless_orientation(3),
            lambda: catalog.echo(2),
            lambda: catalog.two_coloring(2),
        ],
    )
    def test_nontrivial_problems_are_not_zero_round(self, builder):
        assert find_zero_round_algorithm(builder()) is None

    def test_self_loop_requirement(self):
        # Edge constraint allows only {a, b}: no label can face itself, so
        # no deterministic 0-round algorithm exists even though per-node
        # choices would.
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b"],
            node_constraints={1: [Multiset(["a"]), Multiset(["b"])]},
            edge_constraint=[Multiset(["a", "b"])],
            g={NO: ["a", "b"]},
        )
        assert find_zero_round_algorithm(problem) is None

    def test_degree_restriction_changes_answer(self):
        # Sinkless orientation constrains only degree-3 nodes; on a graph
        # class without degree-3 nodes it becomes 0-round solvable.
        problem = catalog.sinkless_orientation(3)
        assert find_zero_round_algorithm(problem, degrees=[1, 2]) is None or True
        # (orientation still needs asymmetric edges: {I,O} has no self-loop,
        #  so it stays unsolvable in 0 rounds even for degrees 1-2)
        assert find_zero_round_algorithm(problem, degrees=[1, 2]) is None

    def test_empty_degree_request_raises(self):
        problem = catalog.trivial(2)
        with pytest.raises(ProblemDefinitionError):
            find_zero_round_algorithm(problem, degrees=[])


class TestExtractedAlgorithm:
    def test_outputs_respect_constraints(self):
        problem = catalog.input_copy(3)
        algorithm = find_zero_round_algorithm(problem)
        for degree in (1, 2, 3):
            for inputs in itertools.product(sorted(problem.sigma_in), repeat=degree):
                outputs = algorithm.outputs_for(inputs)
                assert problem.allows_node(Multiset(outputs))
                for input_label, output_label in zip(inputs, outputs):
                    assert output_label in problem.allowed_outputs(input_label)

    def test_outputs_follow_port_permutation(self):
        problem = catalog.input_copy(2)
        algorithm = find_zero_round_algorithm(problem)
        forward = algorithm.outputs_for(("0", "1"))
        backward = algorithm.outputs_for(("1", "0"))
        assert forward == tuple(reversed(backward))

    def test_clique_labels_are_pairwise_edge_compatible(self):
        problem = catalog.trivial(3, labels=("x", "y"))
        algorithm = find_zero_round_algorithm(problem)
        for a in algorithm.clique:
            for b in algorithm.clique:
                assert problem.allows_edge(a, b)

    def test_unknown_input_tuple_raises(self):
        problem = catalog.input_copy(2)
        algorithm = find_zero_round_algorithm(problem)
        with pytest.raises(ProblemDefinitionError):
            algorithm.outputs_for(("0",) * 5)

    def test_covered_degrees(self):
        problem = catalog.trivial(3)
        algorithm = find_zero_round_algorithm(problem)
        assert algorithm.covered_degrees() == (1, 2, 3)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_property_zero_round_solutions_are_globally_valid(self, seed):
        problem = catalog.input_copy(3)
        algorithm = find_zero_round_algorithm(problem)
        local = ZeroRoundLocalAlgorithm(algorithm)
        graph = random_forest([5, 3, 2], max_degree=3, seed=seed)
        import random as pyrandom

        rng = pyrandom.Random(seed)
        inputs = HalfEdgeLabeling(
            graph,
            {h: rng.choice(["0", "1"]) for h in graph.half_edges()},
        )
        result = run_local_algorithm(
            graph, local, inputs=inputs, ids=random_ids(graph, seed=seed)
        )
        assert result.max_radius_used == 0
        assert is_valid_solution(problem, graph, inputs, result.outputs)
