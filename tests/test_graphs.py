"""Unit and property tests for repro.graphs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GraphError, LabelingError
from repro.graphs import (
    Graph,
    HalfEdgeLabeling,
    adversarial_ids,
    caterpillar,
    complete_regular_tree,
    cycle,
    disjoint_union,
    extract_ball,
    path,
    random_forest,
    random_tree,
    random_ids,
    sequential_ids,
    skip_list_graph,
    spider,
    star,
)


# -------------------------------------------------------------------- Graph
class TestGraphCore:
    def test_ports_are_assigned_in_edge_order(self):
        g = Graph(3, [(0, 1), (0, 2)])
        assert g.neighbor(0, 0) == 1
        assert g.neighbor(0, 1) == 2
        assert g.neighbor(1, 0) == 0

    def test_remote_ports_are_consistent(self):
        g = Graph(3, [(0, 1), (1, 2)])
        for v, p in g.half_edges():
            u, q = g.opposite((v, p))
            assert g.opposite((u, q)) == (v, p)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1), (1, 0)])

    def test_missing_node_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 5)])

    def test_degree_and_max_degree(self):
        g = star(4)
        assert g.degree(0) == 4
        assert g.degree(1) == 1
        assert g.max_degree == 4

    def test_port_to(self):
        g = path(3)
        assert g.port_to(1, 0) == 0
        assert g.port_to(1, 2) == 1
        assert g.port_to(0, 2) is None

    def test_connected_components(self):
        g = disjoint_union([path(3), path(2)])
        assert g.connected_components() == [[0, 1, 2], [3, 4]]

    def test_is_tree_and_forest(self):
        assert path(5).is_tree()
        assert not cycle(5).is_forest()
        forest = disjoint_union([path(3), star(2)])
        assert forest.is_forest() and not forest.is_tree()

    def test_bfs_distances_with_limit(self):
        g = path(10)
        dist = g.bfs_distances(0, limit=3)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_half_edge_count(self):
        g = cycle(6)
        assert len(list(g.half_edges())) == 2 * g.num_edges


# ---------------------------------------------------------------- labelings
class TestHalfEdgeLabeling:
    def test_constant_is_total(self):
        g = path(4)
        labeling = HalfEdgeLabeling.constant(g, "x")
        assert labeling.is_total()
        assert labeling.label_set() == frozenset({"x"})

    def test_from_node_labels(self):
        g = path(3)
        labeling = HalfEdgeLabeling.from_node_labels(g, ["a", "b", "c"])
        assert labeling[(1, 0)] == "b"
        assert labeling[(1, 1)] == "b"

    def test_from_node_labels_wrong_length(self):
        with pytest.raises(LabelingError):
            HalfEdgeLabeling.from_node_labels(path(3), ["a"])

    def test_from_edge_labels(self):
        g = path(3)
        labeling = HalfEdgeLabeling.from_edge_labels(g, {(0, 1): "e0", (1, 2): "e1"})
        assert labeling[(0, 0)] == "e0"
        assert labeling[(1, 0)] == "e0"
        assert labeling[(1, 1)] == "e1"

    def test_from_edge_labels_non_edge(self):
        with pytest.raises(LabelingError):
            HalfEdgeLabeling.from_edge_labels(path(3), {(0, 2): "x"})

    def test_invalid_half_edge_rejected(self):
        labeling = HalfEdgeLabeling(path(2))
        with pytest.raises(LabelingError):
            labeling[(0, 5)] = "x"

    def test_node_view_in_port_order(self):
        g = star(3)
        labeling = HalfEdgeLabeling(g, {(0, 0): "a", (0, 2): "c"})
        assert labeling.node_view(0) == ["a", None, "c"]

    def test_copy_is_independent(self):
        g = path(2)
        original = HalfEdgeLabeling.constant(g, "x")
        duplicate = original.copy()
        duplicate[(0, 0)] = "y"
        assert original[(0, 0)] == "x"


# --------------------------------------------------------------- generators
class TestGenerators:
    @pytest.mark.parametrize("n", [1, 2, 5, 20])
    def test_path_shape(self, n):
        g = path(n)
        assert g.num_nodes == n and g.num_edges == n - 1 and g.is_tree()

    def test_cycle_shape(self):
        g = cycle(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in range(7))

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle(2)

    def test_star_and_spider(self):
        assert star(5).max_degree == 5
        sp = spider(3, 4)
        assert sp.degree(0) == 3
        assert sp.num_nodes == 13

    def test_caterpillar(self):
        g = caterpillar(4, legs_per_node=2)
        assert g.num_nodes == 12
        assert g.is_tree()

    @pytest.mark.parametrize("delta, depth", [(2, 3), (3, 2), (3, 3), (4, 2)])
    def test_complete_regular_tree(self, delta, depth):
        g = complete_regular_tree(delta, depth)
        assert g.is_tree()
        assert g.max_degree == delta
        internal = [v for v in range(g.num_nodes) if g.degree(v) > 1]
        assert all(g.degree(v) == delta for v in internal)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_tree_respects_degree(self, seed):
        g = random_tree(50, max_degree=3, seed=seed)
        assert g.is_tree()
        assert g.max_degree <= 3

    def test_random_tree_single_node(self):
        g = random_tree(1, max_degree=3)
        assert g.num_nodes == 1 and g.num_edges == 0

    def test_random_forest_components(self):
        g = random_forest([5, 3, 1], max_degree=3, seed=1)
        assert g.is_forest()
        assert len(g.connected_components()) == 3

    def test_skip_list_contains_path(self):
        g = skip_list_graph(17, levels=3)
        for i in range(16):
            assert g.port_to(i, i + 1) is not None

    def test_skip_list_shortcut_reach(self):
        # A t-hop ball in the skip list covers exponentially many path nodes.
        g = skip_list_graph(65)
        dist = g.bfs_distances(0)
        assert dist[64] <= 7  # log2(64) + slack, vs 64 path hops

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10))
    def test_property_random_tree_edge_count(self, n, seed):
        g = random_tree(n, max_degree=4, seed=seed)
        assert g.num_edges == n - 1


# -------------------------------------------------------------------- balls
class TestBalls:
    def test_radius_zero_sees_only_center(self):
        g = path(5)
        ball = extract_ball(g, 2, 0)
        assert ball.num_nodes == 1
        assert ball.center_degree() == 2
        assert ball.adj[0] == {}

    def test_radius_one_contents(self):
        g = path(5)
        ball = extract_ball(g, 2, 1)
        assert ball.num_nodes == 3
        assert sorted(ball.global_index) == [1, 2, 3]
        # Edges from the center are visible; neighbors' outward edges not.
        assert len(ball.adj[0]) == 2
        for local in range(1, 3):
            assert list(ball.adj[local].values()) == [(0, ball.distance[local] - 1)] or len(
                ball.adj[local]
            ) == 1

    def test_boundary_degrees_visible(self):
        # Definition 2.1: nodes at distance exactly T expose their degree
        # and inputs even though their outward edges are hidden.
        g = star(4)
        ball = extract_ball(g, 1, 1)
        center_local = 0
        hub_local = ball.local_of_global(0)
        assert ball.degrees[hub_local] == 4
        assert len(ball.adj[hub_local]) == 1  # only the edge back to center

    def test_edge_between_two_boundary_nodes_hidden(self):
        # In cycle(5) around node 0 with radius 2, nodes 2 and 3 are both at
        # distance exactly 2 and adjacent; their edge must be invisible.
        g = cycle(5)
        ball = extract_ball(g, 0, 2)
        assert ball.num_nodes == 5
        local_2 = ball.local_of_global(2)
        local_3 = ball.local_of_global(3)
        visible_neighbors_of_2 = {pair[0] for pair in ball.adj[local_2].values()}
        assert local_3 not in visible_neighbors_of_2

    def test_ball_covers_whole_graph_at_large_radius(self):
        g = random_tree(20, 3, seed=3)
        ball = extract_ball(g, 0, 30)
        assert ball.num_nodes == 20

    def test_signature_isomorphism_on_symmetric_graph(self):
        # Interior cycle nodes 3 and 4 have identical port layouts
        # (port 0 = predecessor, port 1 = successor), so their balls are
        # port-isomorphic and must share a signature.
        g = cycle(8)
        ball_a = extract_ball(g, 3, 2)
        ball_b = extract_ball(g, 4, 2)
        assert ball_a.signature(ids="none") == ball_b.signature(ids="none")

    def test_signature_distinguishes_topology(self):
        ball_path = extract_ball(path(5), 2, 2)
        ball_star = extract_ball(star(4), 0, 2)
        assert ball_path.signature(ids="none") != ball_star.signature(ids="none")

    def test_rank_signature_order_invariance(self):
        g = path(5)
        ball_small = extract_ball(g, 2, 2, ids=[10, 20, 30, 40, 50])
        ball_large = extract_ball(g, 2, 2, ids=[100, 200, 300, 400, 500])
        assert ball_small.signature(ids="rank") == ball_large.signature(ids="rank")
        assert ball_small.signature(ids="exact") != ball_large.signature(ids="exact")

    def test_inputs_in_ball(self):
        g = path(3)
        labeling = HalfEdgeLabeling(g, {h: f"{h}" for h in g.half_edges()})
        ball = extract_ball(g, 1, 1, input_labeling=labeling)
        assert ball.center_inputs() == ("(1, 0)", "(1, 1)")

    def test_id_rank(self):
        g = path(3)
        ball = extract_ball(g, 1, 1, ids=[30, 10, 20])
        assert ball.id_rank(0) == 0  # center has ID 10, the smallest
        ranks = sorted(ball.id_rank(v) for v in range(ball.num_nodes))
        assert ranks == [0, 1, 2]


# ----------------------------------------------------------------------- ids
class TestIds:
    def test_sequential(self):
        assert sequential_ids(path(4)) == [1, 2, 3, 4]

    def test_random_ids_distinct_polynomial_range(self):
        g = path(10)
        ids = random_ids(g, seed=1, exponent=3)
        assert len(set(ids)) == 10
        assert all(1 <= x <= 1000 for x in ids)

    def test_adversarial_order_follows_key(self):
        g = path(5)
        ids = adversarial_ids(g, key=lambda v: -v)
        assert ids[4] < ids[3] < ids[2] < ids[1] < ids[0]
