"""Tests for growth fitting and landscape panels."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LandscapeError
from repro.landscape import GROWTH_SHAPES, LandscapePanel, fit_growth
from repro.utils.numbers import iterated_log

NS = [2**k for k in range(4, 16)]


class TestFitGrowth:
    def test_constant_series(self):
        assert fit_growth(NS, [5.0] * len(NS)).best == "O(1)"

    def test_log_series(self):
        values = [3 * math.log2(n) + 2 for n in NS]
        assert fit_growth(NS, values).best == "Theta(log n)"

    def test_linear_series(self):
        values = [0.5 * n + 10 for n in NS]
        assert fit_growth(NS, values).best == "Theta(n)"

    def test_sqrt_series(self):
        values = [2 * math.sqrt(n) for n in NS]
        assert fit_growth(NS, values).best == "Theta(n^{1/2})"

    def test_log_star_series_ties_with_its_affine_twin(self):
        # At reachable n, log* and log log* are affinely identical step
        # functions; the honest answer is a tie containing both.
        values = [4.0 * iterated_log(n) for n in NS]
        result = fit_growth(NS, values)
        assert "Theta(log* n)" in result.tied
        assert "Theta(log log* n)" in result.tied

    def test_noisy_constant_still_constant(self):
        values = [5.0 + 0.02 * (i % 3) for i in range(len(NS))]
        assert fit_growth(NS, values).best == "O(1)"

    def test_restricted_shapes(self):
        shapes = {k: GROWTH_SHAPES[k] for k in ("O(1)", "Theta(n)")}
        values = [math.log2(n) for n in NS]
        result = fit_growth(NS, values, shapes=shapes)
        assert result.best in shapes

    def test_requires_samples(self):
        with pytest.raises(LandscapeError):
            fit_growth([8], [1.0])

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.5, max_value=20), st.floats(min_value=0, max_value=50))
    def test_property_affine_log_recovered(self, a, b):
        values = [a * math.log2(n) + b for n in NS]
        result = fit_growth(NS, values)
        # The exact generator always fits perfectly, hence is tied-best.
        assert result.scores["Theta(log n)"] < 1e-9
        assert "Theta(log n)" in result.tied

    def test_slope_nonnegative(self):
        # Decreasing series must not produce a negative-slope "fit".
        values = [100.0 / n for n in NS]
        result = fit_growth(NS, values)
        assert result.slope >= 0


class TestLandscapePanel:
    def test_render_contains_rows_and_gap_note(self):
        panel = LandscapePanel("trees")
        panel.add("two-hop-max-degree", "O(1)", NS, [2.0] * len(NS))
        panel.add(
            "linial-coloring", "Theta(log* n)", NS, [float(iterated_log(n)) + 3 for n in NS]
        )
        text = panel.render()
        assert "two-hop-max-degree" in text
        assert "gap" in text
        # log*-shaped measurements tie with log log*, which must NOT count
        # as a gap violation (the tie contains the legal class log*).
        assert not panel.gap_violations()

    def test_gap_violation_detected(self):
        panel = LandscapePanel("general graphs")
        values = [math.log2(max(2, iterated_log(n))) * 3 + 1 for n in NS]
        # Force enough spread that the fit is not constant.
        values = [v + 0.001 * i for i, v in enumerate(values)]
        panel.add("shortcut-cv", "Theta(log log* n)", NS, values)
        # log log*-shaped data always ties with log* at these n, so the
        # tie-aware check reports no *provable* gap inhabitant.
        assert "Theta(log log* n)" in panel.rows[0].fit.tied
        assert not panel.rows[0].in_gap

    def test_mismatch_flagged_in_render(self):
        panel = LandscapePanel("demo")
        panel.add("weird", "Theta(n)", NS, [math.log2(n) for n in NS])
        assert "[fit != expected]" in panel.render()

    def test_constant_series_ties_with_everything(self):
        # A flat series is consistent with every class (slope 0), so no
        # mismatch is flagged even against a Theta(n) expectation.
        panel = LandscapePanel("demo")
        row = panel.add("flat", "Theta(n)", NS, [1.0] * len(NS))
        assert row.matches_expectation
