"""Differential harness for the memoized/parallel round-elimination engine.

For every catalog problem plus a batch of seeded random problems, the
operators ``R``, ``R_bar`` and ``simplify`` are run through four
configurations — cache disabled, cache cold, cache warm, and parallel
workers — and the results must be canonically identical (in fact exactly
equal, since the inputs have identical spellings).  A second set of tests
locks the *accounting*: warm runs must hit the cache, and a warm
``ProblemSequence`` walk must perform zero operator recomputations.
"""

import pytest

from repro.exceptions import ProblemDefinitionError
from repro.lcl.catalog import standard_catalog
from repro.lcl.random_problems import random_lcl
from repro.roundelim import ProblemSequence
from repro.roundelim.canonical import canonical_hash, canonically_equal
from repro.roundelim.ops import R, R_bar, configure_parallel, simplify
from repro.utils import cache as operator_cache

CATALOG_PROBLEMS = [(p.name, p) for p in standard_catalog(max_degree=3)]

RANDOM_PROBLEMS = [
    (f"random-{seed}", random_lcl(seed, num_labels=3, max_degree=2, num_inputs=1))
    for seed in range(35)
] + [
    (f"random-wide-{seed}", random_lcl(seed, num_labels=4, max_degree=3, num_inputs=2))
    for seed in range(15)
]

ALL_PROBLEMS = CATALOG_PROBLEMS + RANDOM_PROBLEMS


@pytest.fixture(autouse=True)
def fresh_engine():
    """Memory-only cache, serial workers, zeroed counters for every test."""
    operator_cache.reset()
    operator_cache.reset_stats()
    operator_cache.configure(enabled=True, disk_dir=None)
    configure_parallel(workers=1)
    yield
    operator_cache.reset()
    operator_cache.reset_stats()
    configure_parallel(workers=None, threshold=None)


def apply_operators(problem, use_cache):
    """The tuple of engine outputs whose agreement the harness asserts."""
    try:
        r = R(problem, use_cache=use_cache)
    except ProblemDefinitionError:
        return ("R blow-up",)
    simplified = simplify(r, domination=True, use_cache=use_cache)
    try:
        rbar = R_bar(simplified, use_cache=use_cache)
    except ProblemDefinitionError:
        return ("R", r, "simplify", simplified, "Rbar blow-up")
    return ("R", r, "simplify", simplified, "Rbar", rbar)


class TestDifferential:
    @pytest.mark.parametrize("name, problem", ALL_PROBLEMS, ids=[n for n, _ in ALL_PROBLEMS])
    def test_cached_and_parallel_paths_agree(self, name, problem):
        baseline = apply_operators(problem, use_cache=False)

        cold = apply_operators(problem, use_cache=True)
        assert cold == baseline, "cold cache run diverged from the uncached engine"

        warm = apply_operators(problem, use_cache=True)
        assert warm == baseline, "warm cache run diverged from the uncached engine"

        configure_parallel(workers=2, threshold=1)
        operator_cache.configure(enabled=False)
        parallel = apply_operators(problem, use_cache=False)
        assert parallel == baseline, "parallel workers diverged from the serial engine"

    @pytest.mark.parametrize(
        "name, problem", CATALOG_PROBLEMS, ids=[n for n, _ in CATALOG_PROBLEMS]
    )
    def test_warm_run_hits_cache(self, name, problem):
        first = apply_operators(problem, use_cache=True)
        hits_before = operator_cache.hit_rate()
        counters = operator_cache.stats()["operators"]
        misses_before = sum(c["misses"] for c in counters.values())

        second = apply_operators(problem, use_cache=True)
        assert second == first

        counters = operator_cache.stats()["operators"]
        misses_after = sum(c["misses"] for c in counters.values())
        assert misses_after == misses_before, "warm run should not miss"
        assert operator_cache.hit_rate() > hits_before

    def test_relabeled_problem_hits_same_entries(self):
        # A structurally-identical problem under different label names
        # must reuse the cache, and the decoded result must live in *its*
        # alphabet, matching a direct computation exactly.
        problem = CATALOG_PROBLEMS[4][1]  # mis
        renaming = {
            label: f"alias_{i}" for i, label in enumerate(sorted(problem.sigma_out, key=repr))
        }
        twin = problem.rename_outputs(renaming)
        assert canonical_hash(twin) == canonical_hash(problem)

        direct = R(twin, use_cache=False)
        R(problem, use_cache=True)  # populate
        misses = operator_cache.stats()["operators"]["R"]["misses"]
        via_cache = R(twin, use_cache=True)
        assert operator_cache.stats()["operators"]["R"]["misses"] == misses
        assert operator_cache.stats()["operators"]["R"]["hits"] >= 1
        assert via_cache == direct


class TestSequenceMemoization:
    def test_warm_sequence_recomputes_nothing(self):
        problem = dict(CATALOG_PROBLEMS)["sinkless-orientation(delta=3)"]
        ProblemSequence(problem).problem(2)

        before = {
            op: dict(c) for op, c in operator_cache.stats()["operators"].items()
        }
        rerun = ProblemSequence(problem)  # fresh object, warm global cache
        result = rerun.problem(2)
        after = operator_cache.stats()["operators"]

        for op, counters in after.items():
            assert counters["computes"] == before.get(op, {}).get("computes", 0), (
                f"warm walk recomputed {op}"
            )
        cold = ProblemSequence(problem, use_cache=False).problem(2)
        assert result == cold

    def test_sequence_respects_use_cache_flag(self):
        problem = dict(CATALOG_PROBLEMS)["mis"]
        ProblemSequence(problem, use_cache=False).problem(1)
        counters = operator_cache.stats()["operators"]
        assert all(c["hits"] == 0 and c["misses"] == 0 for c in counters.values())
        assert any(c["computes"] > 0 for c in counters.values())


class TestFixedPointUpToRelabeling:
    def test_find_fixed_point_modulo_isomorphism(self):
        # Force the sequence's step-1 problem to be a *relabeled* copy of
        # step 0: `==` fails but the canonical check must still detect
        # stabilization at step 0.
        problem = dict(CATALOG_PROBLEMS)["sinkless-orientation(delta=3)"]
        sequence = ProblemSequence(problem)
        renaming = {
            label: ("spin", i)
            for i, label in enumerate(sorted(problem.sigma_out, key=repr))
        }
        twin = problem.rename_outputs(renaming)
        sequence._problems.append(twin)  # simulate a relabeling-only step

        assert twin != problem
        assert canonically_equal(twin, problem)
        assert sequence.find_fixed_point(3) == 0

    def test_sinkless_orientation_is_a_fixed_point(self):
        problem = dict(CATALOG_PROBLEMS)["sinkless-orientation(delta=3)"]
        assert ProblemSequence(problem).find_fixed_point(2) == 1


class TestInterruptedThenResumed:
    """Checkpoint/resume differential: killing a walk after any step and
    resuming it must yield bit-identical problems with zero operator
    recomputation for the completed prefix."""

    STEPS = 3

    def _uninterrupted(self, problem):
        sequence = ProblemSequence(problem, use_cache=False, checkpoint=False)
        return [sequence.problem(k) for k in range(self.STEPS + 1)]

    def test_resume_after_every_step_is_bit_identical(self, tmp_path):
        problem = dict(CATALOG_PROBLEMS)["echo"]
        expected = self._uninterrupted(problem)
        for kill_after in range(self.STEPS + 1):
            directory = tmp_path / f"kill-{kill_after}"
            # Walk to step `kill_after`, then "die" (drop the object).
            first = ProblemSequence(problem, use_cache=False, checkpoint=directory)
            first.problem(kill_after)
            del first

            # A fresh process-equivalent: new sequence, same checkpoint dir,
            # cache disabled so only the checkpoint can supply the prefix.
            operator_cache.reset()
            operator_cache.reset_stats()
            resumed = ProblemSequence(problem, use_cache=False, checkpoint=directory)
            assert resumed.resume() == kill_after

            computes_after_resume = sum(
                c["computes"] for c in operator_cache.stats()["operators"].values()
            )
            assert computes_after_resume == 0, "resume itself must not compute"

            # Restored prefix: bit-identical and free (zero recomputation).
            for k in range(kill_after + 1):
                assert resumed.problem(k) == expected[k]
            assert (
                sum(c["computes"] for c in operator_cache.stats()["operators"].values())
                == 0
            ), f"resumed walk recomputed the completed prefix (kill_after={kill_after})"

            # Continuing past the kill point matches the uninterrupted walk.
            for k in range(self.STEPS + 1):
                assert resumed.problem(k) == expected[k]

    def test_resume_restores_intermediates_for_lifting(self, tmp_path):
        problem = dict(CATALOG_PROBLEMS)["echo"]
        first = ProblemSequence(problem, use_cache=False, checkpoint=tmp_path)
        first.problem(2)
        expected_half = first.intermediate(1)

        operator_cache.reset()
        operator_cache.reset_stats()
        resumed = ProblemSequence(problem, use_cache=False, checkpoint=tmp_path)
        resumed.resume()
        assert resumed.intermediate(1) == expected_half
        assert (
            sum(c["computes"] for c in operator_cache.stats()["operators"].values()) == 0
        ), "R(Pi_1) must come from the checkpoint, not a fresh kernel run"

    def test_checkpoint_ignores_mismatched_options(self, tmp_path):
        problem = dict(CATALOG_PROBLEMS)["echo"]
        first = ProblemSequence(problem, use_cache=False, checkpoint=tmp_path)
        first.problem(2)

        other = ProblemSequence(
            problem, use_cache=False, use_domination=False, checkpoint=tmp_path
        )
        assert other.resume() == 0, "different hygiene options must not share state"

    def test_env_var_enables_checkpointing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        problem = dict(CATALOG_PROBLEMS)["echo"]
        sequence = ProblemSequence(problem, use_cache=False)
        sequence.problem(1)
        assert list(tmp_path.glob("seq-*.json")), "REPRO_CHECKPOINT_DIR must persist"

        resumed = ProblemSequence(problem, use_cache=False)
        assert resumed.resume() == 1
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR")
        off = ProblemSequence(problem, use_cache=False)
        assert off.checkpoint is None
