"""Integration tests: the Theorem 3.10 / 3.11 pipeline end to end.

These are the headline tests of the reproduction: for constant-time
problems the pipeline must *synthesize* a deterministic O(1)-round LOCAL
algorithm via round elimination + Lemma 3.9 lifting, and the synthesized
algorithm must produce verifiably correct solutions on concrete forests;
for problems outside o(log* n) it must never do so.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AlgorithmError
from repro.graphs import HalfEdgeLabeling, path, random_forest, random_ids
from repro.lcl import catalog, is_valid_solution
from repro.local.model import run_local_algorithm
from repro.roundelim.gap import speedup, verify_on_random_forests
from repro.roundelim.lift import lift_to_local_algorithm
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import find_zero_round_algorithm

NO = catalog.NO_INPUT


class TestConstantProblems:
    @pytest.mark.parametrize(
        "builder, expected_rounds",
        [
            (lambda: catalog.trivial(3), 0),
            (lambda: catalog.consensus(3), 0),
            (lambda: catalog.input_copy(3), 0),
            (lambda: catalog.echo(2), 1),
            (lambda: catalog.echo(3), 1),
            (lambda: catalog.echo2(), 2),
        ],
    )
    def test_constant_depth_found(self, builder, expected_rounds):
        result = speedup(builder(), max_steps=4)
        assert result.status == "constant"
        assert result.constant_rounds == expected_rounds
        assert result.algorithm is not None
        assert result.algorithm.radius(10**6) == expected_rounds

    def test_synthesized_echo_algorithm_is_correct(self):
        result = speedup(catalog.echo(3), max_steps=2)
        assert verify_on_random_forests(result, trials=5)

    def test_synthesized_echo2_algorithm_is_correct(self):
        result = speedup(catalog.echo2(), max_steps=3)
        assert verify_on_random_forests(result, component_sizes=(8, 5, 1), trials=5)

    def test_synthesized_algorithm_respects_radius_accounting(self):
        result = speedup(catalog.echo(2), max_steps=2)
        graph = path(8)
        inputs = HalfEdgeLabeling(
            graph, {h: "01"[sum(h) % 2] for h in graph.half_edges()}
        )
        simulation = run_local_algorithm(
            graph, result.algorithm, inputs=inputs, ids=random_ids(graph, seed=3)
        )
        assert simulation.max_radius_used <= 1
        assert is_valid_solution(catalog.echo(2), graph, inputs, simulation.outputs)

    def test_echo_semantics_of_synthesized_solution(self):
        # The synthesized algorithm must actually echo the opposite input.
        problem = catalog.echo(2)
        result = speedup(problem, max_steps=2)
        graph = path(6)
        inputs = HalfEdgeLabeling(
            graph, {h: str((h[0] + h[1]) % 2) for h in graph.half_edges()}
        )
        simulation = run_local_algorithm(
            graph, result.algorithm, inputs=inputs, ids=random_ids(graph, seed=0)
        )
        for half_edge, label in simulation.outputs.items():
            mine, guess = label
            assert mine == inputs[half_edge]
            assert guess == inputs[graph.opposite(half_edge)]


class TestNonConstantProblems:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: catalog.coloring(3, 2),
            lambda: catalog.mis(3),
            lambda: catalog.maximal_matching(3),
            lambda: catalog.two_coloring(2),
        ],
    )
    def test_no_constant_algorithm_claimed(self, builder):
        result = speedup(builder(), max_steps=1)
        assert result.status != "constant"

    def test_sinkless_orientation_certified_by_fixed_point(self):
        result = speedup(catalog.sinkless_orientation(3), max_steps=3)
        assert result.status == "fixed-point"
        assert result.fixed_point_at == 1

    def test_summary_mentions_status(self):
        result = speedup(catalog.sinkless_orientation(3), max_steps=3)
        assert "fixed-point" in result.summary()


class TestLiftingInternals:
    def test_lift_depth_matches_radius(self):
        sequence = ProblemSequence(catalog.echo(2))
        zero = find_zero_round_algorithm(sequence.problem(1))
        assert zero is not None
        algorithm = lift_to_local_algorithm(zero, sequence, steps=1)
        assert algorithm.radius(100) == 1

    def test_lift_rejects_mismatched_depth(self):
        sequence = ProblemSequence(catalog.echo(2))
        zero = find_zero_round_algorithm(sequence.problem(1))
        with pytest.raises(AlgorithmError):
            lift_to_local_algorithm(zero, sequence, steps=0)

    def test_lifted_algorithm_needs_ids(self):
        sequence = ProblemSequence(catalog.echo(2))
        zero = find_zero_round_algorithm(sequence.problem(1))
        algorithm = lift_to_local_algorithm(zero, sequence, steps=1)
        graph = path(4)
        inputs = HalfEdgeLabeling.constant(graph, "0")
        with pytest.raises(AlgorithmError):
            run_local_algorithm(graph, algorithm, inputs=inputs, ids=None)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_lifted_solutions_valid_under_any_ids(self, seed):
        problem = catalog.echo(3)
        result = speedup(problem, max_steps=2)
        graph = random_forest([6, 3], max_degree=3, seed=seed % 97)
        import random as pyrandom

        rng = pyrandom.Random(seed)
        inputs = HalfEdgeLabeling(
            graph, {h: rng.choice(["0", "1"]) for h in graph.half_edges()}
        )
        ids = random_ids(graph, seed=seed)
        simulation = run_local_algorithm(graph, result.algorithm, inputs=inputs, ids=ids)
        assert is_valid_solution(problem, graph, inputs, simulation.outputs)


class TestFailureBounds:
    def test_S_is_monotone_in_runtime(self):
        from repro.roundelim.failure_bounds import FailureBoundParameters, theorem_3_4_S

        fast = FailureBoundParameters(3, 2, 4, 16, runtime=1)
        slow = FailureBoundParameters(3, 2, 4, 16, runtime=3)
        assert theorem_3_4_S(fast) < theorem_3_4_S(slow)

    def test_failure_step_degrades_probability(self):
        import math

        from repro.roundelim.failure_bounds import (
            FailureBoundParameters,
            failure_after_step,
        )

        params = FailureBoundParameters(3, 2, 4, 16, runtime=2)
        log_p = math.log(1e-9)
        assert failure_after_step(params, log_p) > log_p

    def test_trajectory_length(self):
        import math

        from repro.roundelim.failure_bounds import (
            FailureBoundParameters,
            failure_after_steps,
        )

        params = FailureBoundParameters(3, 2, 4, 16, runtime=2)
        trajectory = failure_after_steps(params, math.log(1e-12), steps=4)
        assert len(trajectory) == 5
        assert trajectory == sorted(trajectory)  # failure only grows

    def test_n0_conditions_structure(self):
        from repro.roundelim.failure_bounds import n0_conditions

        report = n0_conditions(n0=2**20, runtime_at_n0=1, delta=3, sigma_in_size=2)
        assert report.condition_3_2  # 1 + 2 <= log_3(2^20) ~ 12.6
        # Condition (3.3): 2*1 + 5 = 7 > log*(2^20) = 5 -> infeasible here,
        # demonstrating how astronomically large the paper's n0 must be.
        assert not report.condition_3_3
        assert not report.feasible

    def test_lemma_bounds_are_finite(self):
        import math

        from repro.roundelim.failure_bounds import (
            FailureBoundParameters,
            lemma_3_5_bound,
            lemma_3_6_bound,
            lemma_3_7_bound,
            lemma_3_8_bound,
        )

        params = FailureBoundParameters(3, 2, 4, 16, runtime=1)
        log_p, log_K = math.log(1e-6), math.log(1e-2)
        for value in (
            lemma_3_5_bound(params, log_p, log_K),
            lemma_3_6_bound(params, log_p, log_K),
            lemma_3_7_bound(params, log_p),
            lemma_3_8_bound(params, log_p),
        ):
            assert math.isfinite(value)

    def test_alphabet_tower_bound_blows_up(self):
        import math

        from repro.roundelim.failure_bounds import alphabet_tower_bound

        assert alphabet_tower_bound(2, steps=0) < alphabet_tower_bound(2, steps=1)
        assert alphabet_tower_bound(2, steps=5) == math.inf

    def test_invalid_parameters_rejected(self):
        from repro.exceptions import ProblemDefinitionError
        from repro.roundelim.failure_bounds import FailureBoundParameters

        with pytest.raises(ProblemDefinitionError):
            FailureBoundParameters(1, 2, 4, 16, runtime=1)
        with pytest.raises(ProblemDefinitionError):
            FailureBoundParameters(3, 0, 4, 16, runtime=1)
        with pytest.raises(ProblemDefinitionError):
            FailureBoundParameters(3, 2, 4, 16, runtime=-1)
