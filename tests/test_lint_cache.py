"""Incremental-cache tests: byte-identical cold/warm reports, content
and salt invalidation, and the REPRO_LINT_CACHE* knobs.

The cache stores *per-file* facts only (findings + the summaries that
feed the whole-program analysis); every cross-file judgment is
recomputed on each run, so a warm run must be observationally identical
to a cold one — these tests pin that equivalence at the byte level for
all three report formats.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.cache import LintCache, compute_salt
from repro.analysis.report import render_json, render_sarif, render_text

BARE_EXCEPT = "def f():\n    try:\n        return 1\n    except:\n        return 2\n"

#: A two-file interprocedural flow: the taint originates in ``feed.py``
#: and only becomes a REP010 finding through the whole-program pass, so
#: replaying cached per-file facts must still reproduce it.
TAINT_FILES = {
    "pkg/__init__.py": "",
    "pkg/feed.py": """\
        import random


        def draw():
            return random.random()  # repro-lint: disable=REP001 -- planted source
        """,
    "pkg/codec.py": """\
        def encode_row(value):
            return repr(value)
        """,
    "pkg/app.py": """\
        from pkg.codec import encode_row
        from pkg.feed import draw


        def publish():
            return encode_row(draw())
        """,
}


def write_tree(tmp_path: Path, files: dict) -> Path:
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def lint(tmp_path: Path, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / "lint-cache")
    return run_lint([tmp_path / "pkg"], root=tmp_path, **kwargs)


class TestWarmReplay:
    def test_cold_misses_then_warm_hits_every_file(self, tmp_path):
        write_tree(tmp_path, TAINT_FILES)
        cold = lint(tmp_path)
        assert cold.cache_misses == len(TAINT_FILES)
        assert cold.cache_hits == 0
        warm = lint(tmp_path)
        assert warm.cache_hits == len(TAINT_FILES)
        assert warm.cache_misses == 0

    def test_cold_and_warm_reports_are_byte_identical(self, tmp_path):
        write_tree(tmp_path, TAINT_FILES)
        cold = lint(tmp_path)
        warm = lint(tmp_path)
        assert warm.cache_hits and not warm.cache_misses
        for renderer in (render_text, render_json, render_sarif):
            assert renderer(cold) == renderer(warm)

    def test_interprocedural_finding_survives_warm_replay(self, tmp_path):
        """REP010 is a *cross-file* judgment: it must come out of the
        warm run even though no file is re-parsed."""
        write_tree(tmp_path, TAINT_FILES)
        cold = lint(tmp_path)
        warm = lint(tmp_path)
        for result in (cold, warm):
            codes = [f.rule for f in result.findings]
            assert "REP010" in codes, codes
        assert [f.fingerprint for f in cold.findings] == [
            f.fingerprint for f in warm.findings
        ]

    def test_parse_error_is_cached(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/broken.py": "def f(:\n"})
        cold = lint(tmp_path)
        warm = lint(tmp_path)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        for result in (cold, warm):
            assert "REP000" in [f.rule for f in result.findings]
        assert render_json(cold) == render_json(warm)


class TestInvalidation:
    def test_edited_file_misses_while_others_hit(self, tmp_path):
        write_tree(tmp_path, TAINT_FILES)
        lint(tmp_path)
        (tmp_path / "pkg" / "feed.py").write_text(
            "def draw():\n    return 4\n", encoding="utf-8"
        )
        result = lint(tmp_path)
        assert result.cache_misses == 1
        assert result.cache_hits == len(TAINT_FILES) - 1
        assert "REP010" not in [f.rule for f in result.findings]

    def test_rule_selection_changes_the_salt(self, tmp_path):
        """Records written under one active-rule set must not be
        replayed under another (suppression bookkeeping differs)."""
        assert compute_salt(("REP007",)) != compute_salt(("REP008",))
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        lint(tmp_path, select=["REP007"])
        result = lint(tmp_path, select=["REP008"])
        assert result.cache_hits == 0
        assert result.cache_misses == 2

    def test_corrupt_cache_record_is_treated_as_a_miss(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        cold = lint(tmp_path)
        for record in (tmp_path / "lint-cache").glob("*.json"):
            record.write_text("{not json", encoding="utf-8")
        warm = lint(tmp_path)
        assert warm.cache_hits == 0
        assert render_text(cold) == render_text(warm)

    def test_clear_removes_every_record(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        lint(tmp_path)
        cache = LintCache.open(
            (), enabled=True, directory=tmp_path / "lint-cache", root=tmp_path
        )
        assert cache is not None
        assert cache.clear() == 2
        result = lint(tmp_path)
        assert result.cache_hits == 0 and result.cache_misses == 2


class TestKnobs:
    def test_cache_disabled_by_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE", "0")
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        lint(tmp_path, cache_dir=None)
        result = lint(tmp_path, cache_dir=None)
        assert result.cache_hits == 0 and result.cache_misses == 0
        assert not (tmp_path / ".repro-lint-cache").exists()

    def test_cache_dir_knob_is_anchored_at_the_lint_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE_DIR", "knob-cache")
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        lint(tmp_path, cache_dir=None)
        assert (tmp_path / "knob-cache").is_dir()
        assert list((tmp_path / "knob-cache").glob("*.json"))

    def test_explicit_argument_beats_the_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE", "0")
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        lint(tmp_path, use_cache=True)
        result = lint(tmp_path, use_cache=True)
        assert result.cache_hits == 2


class TestReportPurity:
    def test_no_renderer_leaks_cache_statistics(self, tmp_path):
        """Byte-identity depends on reports being a pure function of the
        findings — cache counters must never appear in any format."""
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        result = lint(tmp_path)
        assert result.cache_misses > 0
        for renderer in (render_text, render_json, render_sarif):
            rendered = renderer(result)
            for counter in ("cache_hits", "cache_misses", "hit rate"):
                assert counter not in rendered

    def test_json_report_omits_cache_keys(self, tmp_path):
        write_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": BARE_EXCEPT})
        body = json.loads(render_json(lint(tmp_path)))
        assert set(body) == {"findings", "summary"}
        assert "cache_hits" not in body["summary"]
