"""Semantic fidelity of the round elimination engine.

The engine's performance rests on two solvability-preserving deviations
from the paper's literal construction: reduced label universes and
optional domination pruning.  These tests pin the deviations down against
the literal (``universe_mode="full"``) operators on small problems:

* decisions (0-round solvability, fixed points) agree across modes;
* every reduced label is a genuine label of the full alphabet, and every
  full label is dominated by its canonical representative;
* the singleton-wrap property used in the proof of Theorem 3.4 (T = 0
  base case) holds in full mode: wrapping a Π-solution's labels as
  ``{{ℓ}}`` solves ``R̄(R(Π))``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import HalfEdgeLabeling, path, random_tree, star
from repro.lcl import catalog, is_valid_solution
from repro.lcl.checker import brute_force_solution
from repro.roundelim.ops import R, R_bar, _dominates, simplify
from repro.roundelim.universe import (
    closed_universe,
    edge_partners,
    reduced_universe,
)
from repro.roundelim.zero_round import find_zero_round_algorithm

NO = catalog.NO_INPUT

SMALL_PROBLEMS = [
    ("trivial", lambda: catalog.trivial(2)),
    ("consensus", lambda: catalog.consensus(2)),
    ("2-coloring", lambda: catalog.two_coloring(2)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
    ("sinkless", lambda: catalog.sinkless_orientation(3)),
    ("mis", lambda: catalog.mis(2)),
    ("echo", lambda: catalog.echo(2)),
]


class TestUniverseSoundness:
    @pytest.mark.parametrize("name, build", SMALL_PROBLEMS)
    def test_closed_universe_labels_are_subsets(self, name, build):
        problem = build()
        for label in closed_universe(problem, max_universe=4096):
            assert label and label <= problem.sigma_out

    @pytest.mark.parametrize("name, build", SMALL_PROBLEMS)
    def test_reduced_universe_labels_are_subsets(self, name, build):
        problem = build()
        for label in reduced_universe(problem, max_universe=4096):
            assert label and label <= problem.sigma_out

    @pytest.mark.parametrize("name, build", SMALL_PROBLEMS)
    def test_every_usable_full_R_label_is_dominated_by_its_closure(self, name, build):
        # The closure argument is per-label for R: every usable full label
        # B is dominated by cl(B), which the reduced universe contains.
        problem = build()
        full = R(problem, universe_mode="full")
        reduced_labels = set(closed_universe(problem, max_universe=4096))
        g_images = list(problem.g.values())
        for label in full.sigma_out:
            if label in reduced_labels:
                continue
            if not any(label <= image for image in g_images):
                continue  # unusable: appears in no solution, needs no twin
            assert any(
                _dominates(full, representative, label)
                for representative in reduced_labels
            ), f"{label} has no dominating representative"

    @pytest.mark.parametrize(
        "name, build, graph_builder",
        [
            ("trivial", lambda: catalog.trivial(2), lambda: path(3)),
            ("consensus", lambda: catalog.consensus(2), lambda: path(3)),
            ("3-coloring", lambda: catalog.coloring(3, 2), lambda: path(4)),
            ("mis", lambda: catalog.mis(2), lambda: path(4)),
            ("echo", lambda: catalog.echo(2), lambda: path(3)),
        ],
    )
    def test_full_and_reduced_f_agree_on_instance_solvability(
        self, name, build, graph_builder
    ):
        # For R̄ the reduction argument is *solution-level* (a whole node
        # configuration maps into a maximal box jointly), so the honest
        # check is instance solvability agreement between the literal and
        # the reduced f-problems.
        problem = build()
        graph = graph_builder()
        single = next(iter(problem.sigma_in))
        inputs = HalfEdgeLabeling.constant(graph, single)
        intermediate = simplify(R(problem, universe_mode="full"), domination=True)
        full_f = R_bar(intermediate, universe_mode="full", max_universe=4096)
        reduced_f = R_bar(intermediate)
        full_solvable = brute_force_solution(full_f, graph, inputs) is not None
        reduced_solvable = brute_force_solution(reduced_f, graph, inputs) is not None
        assert full_solvable == reduced_solvable


class TestModeAgreement:
    @pytest.mark.parametrize("name, build", SMALL_PROBLEMS)
    def test_zero_round_decision_agrees_across_modes(self, name, build):
        problem = build()
        # Simplify between the operators in full mode too — the literal
        # R(echo) has 15 labels, putting the literal R̄ alphabet at 2^15;
        # hygiene is solvability-preserving, which is what is under test.
        intermediate = simplify(R(problem, universe_mode="full"), domination=True)
        full_f = simplify(
            R_bar(intermediate, universe_mode="full", max_universe=4096),
            domination=True,
        )
        reduced_f = simplify(
            R_bar(R(problem)), domination=True
        )
        full_answer = find_zero_round_algorithm(full_f) is not None
        reduced_answer = find_zero_round_algorithm(reduced_f) is not None
        assert full_answer == reduced_answer

    def test_sinkless_fixed_point_in_full_mode(self):
        problem = catalog.sinkless_orientation(3)
        f1 = simplify(
            R_bar(R(problem, universe_mode="full"), universe_mode="full"),
            domination=True,
        )
        f2 = simplify(
            R_bar(R(f1, universe_mode="full"), universe_mode="full"),
            domination=True,
        )
        assert f2.is_isomorphic(f1)


class TestSingletonWrap:
    @pytest.mark.parametrize(
        "name, build, graph_builder",
        [
            ("3-coloring", lambda: catalog.coloring(3, 2), lambda: path(4)),
            ("mis", lambda: catalog.mis(2), lambda: path(4)),
            ("sinkless", lambda: catalog.sinkless_orientation(3), lambda: star(3)),
        ],
    )
    def test_wrapped_solution_solves_f_of_pi(self, name, build, graph_builder):
        problem = build()
        graph = graph_builder()
        inputs = HalfEdgeLabeling.constant(graph, NO)
        solution = brute_force_solution(problem, graph, inputs)
        assert solution is not None
        f_problem = R_bar(
            R(problem, universe_mode="full"), universe_mode="full", max_universe=4096
        )
        wrapped = HalfEdgeLabeling(
            graph,
            {
                h: frozenset({frozenset({label})})
                for h, label in solution.items()
            },
        )
        assert is_valid_solution(f_problem, graph, inputs, wrapped)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=20))
    def test_property_wrapped_mis_solutions(self, n, seed):
        problem = catalog.mis(2)
        graph = path(n)
        inputs = HalfEdgeLabeling.constant(graph, NO)
        solution = brute_force_solution(problem, graph, inputs)
        assert solution is not None
        f_problem = R_bar(
            R(problem, universe_mode="full"), universe_mode="full", max_universe=4096
        )
        wrapped = HalfEdgeLabeling(
            graph,
            {h: frozenset({frozenset({label})}) for h, label in solution.items()},
        )
        assert is_valid_solution(f_problem, graph, inputs, wrapped)


class TestDominationAblation:
    @pytest.mark.parametrize("name, build", SMALL_PROBLEMS)
    def test_gap_status_independent_of_domination(self, name, build):
        from repro.roundelim.gap import speedup

        with_domination = speedup(build(), max_steps=1, use_domination=True)
        without_domination = speedup(build(), max_steps=1, use_domination=False)
        # Statuses computed at depth <= 1 must agree (constant-vs-not);
        # domination only changes alphabet sizes, never solvability.
        assert (with_domination.status == "constant") == (
            without_domination.status == "constant"
        )
        assert with_domination.constant_rounds == without_domination.constant_rounds

    def test_domination_shrinks_alphabets(self):
        from repro.roundelim.sequence import ProblemSequence

        pruned = ProblemSequence(catalog.coloring(3, 2), use_domination=True)
        unpruned = ProblemSequence(catalog.coloring(3, 2), use_domination=False)
        assert len(pruned.problem(1).sigma_out) <= len(unpruned.problem(1).sigma_out)
