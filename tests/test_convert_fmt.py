"""Tests for the Lemma 2.6 conversion and the problem text format."""

import pytest

from repro.exceptions import ProblemDefinitionError
from repro.graphs import HalfEdgeLabeling, cycle, path, star
from repro.lcl import catalog
from repro.lcl.checker import brute_force_solution, is_valid_solution
from repro.lcl.convert import decode_marked_output, to_node_edge_checkable
from repro.lcl.fmt import parse, serialize
from repro.lcl.problem import LCLProblem

NO = catalog.NO_INPUT


def proper_two_coloring_general(max_degree: int = 2) -> LCLProblem:
    """Proper 2-coloring phrased as a *general* (Def 2.2) radius-1 LCL."""

    def accepts(ball, inputs, outputs) -> bool:
        # Every node announces one color on all its half-edges, and the
        # center's color differs from each neighbor's.
        colors = []
        for local in range(ball.num_nodes):
            local_outputs = outputs[local]
            if len(set(local_outputs)) != 1:
                return False
            colors.append(local_outputs[0])
        return all(colors[0] != colors[v] for v in range(1, ball.num_nodes))

    return LCLProblem(
        sigma_in=[NO],
        sigma_out=["a", "b"],
        radius=1,
        accepts=accepts,
        name="general-2-coloring",
    )


class TestGeneralLCL:
    def test_is_valid_on_even_cycle(self):
        problem = proper_two_coloring_general()
        g = cycle(6)
        inputs = HalfEdgeLabeling.constant(g, NO)
        good = HalfEdgeLabeling.from_node_labels(g, ["a", "b"] * 3)
        assert problem.is_valid(g, inputs, good)

    def test_detects_violation(self):
        problem = proper_two_coloring_general()
        g = path(3)
        inputs = HalfEdgeLabeling.constant(g, NO)
        bad = HalfEdgeLabeling.from_node_labels(g, ["a", "a", "b"])
        assert 0 in problem.failed_nodes(g, inputs, bad)

    def test_radius_zero_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            LCLProblem([NO], ["x"], radius=0, accepts=lambda *a: True)


class TestLemma26Conversion:
    @pytest.fixture(scope="class")
    def converted(self):
        return to_node_edge_checkable(proper_two_coloring_general(), max_degree=2)

    def test_alphabets(self, converted):
        assert converted.sigma_in == frozenset({NO})
        assert len(converted.sigma_out) > 0

    def test_solvability_transfers_even_cycle(self, converted):
        g = cycle(4)
        inputs = HalfEdgeLabeling.constant(g, NO)
        solution = brute_force_solution(converted, g, inputs)
        assert solution is not None
        # Decoding the marked outputs yields a valid Π-solution (the
        # 0-round decoding direction of Lemma 2.6).
        decoded = HalfEdgeLabeling(
            g, {h: decode_marked_output(solution[h]) for h in g.half_edges()}
        )
        assert proper_two_coloring_general().is_valid(g, inputs, decoded)

    def test_unsolvability_transfers_odd_cycle(self, converted):
        g = cycle(5)
        inputs = HalfEdgeLabeling.constant(g, NO)
        assert brute_force_solution(converted, g, inputs) is None

    def test_solvability_on_paths(self, converted):
        g = path(4)
        inputs = HalfEdgeLabeling.constant(g, NO)
        solution = brute_force_solution(converted, g, inputs)
        assert solution is not None
        decoded = HalfEdgeLabeling(
            g, {h: decode_marked_output(solution[h]) for h in g.half_edges()}
        )
        assert proper_two_coloring_general().is_valid(g, inputs, decoded)

    def test_encoding_direction(self, converted):
        # A Π-solution lifts to a Π'-solution by transcribing each ball;
        # on a single edge the original is clearly solvable ("a"-"b"), so
        # the converted problem must be solvable too.
        g = path(2)
        inputs = HalfEdgeLabeling.constant(g, NO)
        original = HalfEdgeLabeling.from_node_labels(g, ["a", "b"])
        assert proper_two_coloring_general().is_valid(g, inputs, original)
        lifted = brute_force_solution(converted, g, inputs)
        assert lifted is not None

    def test_radius_guard(self):
        problem = LCLProblem([NO], ["x"], radius=2, accepts=lambda *a: True)
        with pytest.raises(ProblemDefinitionError):
            to_node_edge_checkable(problem, max_degree=2)

    def test_label_budget_guard(self):
        problem = LCLProblem(
            ["i0", "i1"], ["x", "y", "z"], radius=1, accepts=lambda *a: True
        )
        with pytest.raises(ProblemDefinitionError):
            to_node_edge_checkable(problem, max_degree=3, max_labels=100)


class TestTextFormat:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: catalog.trivial(3),
            lambda: catalog.consensus(3),
            lambda: catalog.coloring(3, 2),
            lambda: catalog.mis(3),
            lambda: catalog.maximal_matching(3),
            lambda: catalog.sinkless_orientation(3),
            lambda: catalog.forbidden_input_output(2),
            lambda: catalog.two_coloring(2),
        ],
    )
    def test_roundtrip(self, build):
        problem = build()
        assert parse(serialize(problem)) == problem

    def test_comments_and_blanks_ignored(self):
        text = """
        # a tiny problem
        problem tiny
        inputs: *
        outputs: A B

        node 1:
          A   # trailing comment
          B
        edge:
          A B
        g * : A B
        """
        problem = parse(text)
        assert problem.name == "tiny"
        assert problem.allows_edge("A", "B")
        assert not problem.allows_edge("A", "A")

    def test_missing_g_defaults_to_everything(self):
        text = "problem t\ninputs: *\noutputs: A\nnode 1:\n  A\nedge:\n  A A\n"
        problem = parse(text)
        assert problem.allowed_outputs("*") == frozenset({"A"})

    def test_bad_cardinality_rejected(self):
        text = "problem t\ninputs: *\noutputs: A\nnode 2:\n  A\nedge:\n  A A\n"
        with pytest.raises(ProblemDefinitionError):
            parse(text)

    def test_structured_labels_rejected_by_serializer(self):
        from repro.roundelim.ops import R

        with pytest.raises(ProblemDefinitionError):
            serialize(R(catalog.coloring(2, 2)))

    def test_configuration_outside_section_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            parse("problem t\ninputs: *\noutputs: A\n  A A\n")
