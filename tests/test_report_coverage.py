"""Coverage for landscape reporting corners and remaining utility paths."""

import math

import pytest

from repro.exceptions import LandscapeError
from repro.landscape import GROWTH_SHAPES, LandscapePanel, fit_growth
from repro.landscape.report import GAP_CLASSES, SeriesRow
from repro.utils.numbers import iterated_log

NS = [2**k for k in range(4, 14)]


class TestSeriesRowSemantics:
    def test_in_gap_requires_all_tied_in_gap(self):
        # A series only counts as a gap inhabitant if *no* legal class
        # fits comparably; at physical n that never happens for
        # log log*-shaped data (log* ties), so in_gap is False.
        values = [3.0 * math.log2(max(2, iterated_log(n))) for n in NS]
        row = SeriesRow("demo", "Theta(log log* n)", NS, values)
        assert "Theta(log log* n)" in row.fit.tied
        assert not row.in_gap

    def test_artificial_gap_inhabitant_detected(self):
        # With a candidate set artificially restricted to gap classes the
        # machinery does report the violation — the check is live code,
        # not a tautology.
        shapes = {name: GROWTH_SHAPES[name] for name in GAP_CLASSES}
        values = [3.0 * math.log2(max(2, iterated_log(n))) for n in NS]
        panel = LandscapePanel("synthetic")
        panel.add("synthetic", "Theta(log log* n)", NS, values, shapes=shapes)
        assert panel.gap_violations()
        assert "!!" in panel.render()

    def test_empty_panel_renders(self):
        assert "(empty)" in LandscapePanel("void").render()

    def test_tie_marker_in_render(self):
        panel = LandscapePanel("demo")
        panel.add("flat", "O(1)", NS, [2.0] * len(NS))
        assert "O(1)~" in panel.render()

    def test_restricted_shapes_respected_per_row(self):
        shapes = {k: GROWTH_SHAPES[k] for k in ("O(1)", "Theta(n)")}
        panel = LandscapePanel("demo")
        row = panel.add("linear", "Theta(n)", NS, [2.0 * n for n in NS], shapes=shapes)
        assert set(row.fit.scores) == {"O(1)", "Theta(n)"}
        assert row.fit.best == "Theta(n)"


class TestFitCorners:
    def test_all_zero_series(self):
        result = fit_growth(NS, [0.0] * len(NS))
        assert result.best == "O(1)"

    def test_two_point_minimum(self):
        result = fit_growth([4, 1024], [1.0, 1.0])
        assert result.best == "O(1)"

    def test_scores_cover_all_candidates(self):
        result = fit_growth(NS, [math.log2(n) for n in NS])
        assert set(result.scores) == set(GROWTH_SHAPES)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(LandscapeError):
            fit_growth(NS, [1.0])
