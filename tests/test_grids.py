"""Tests for oriented grids, PROD-LOCAL, and the §5 speedup pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import HalfEdgeLabeling
from repro.grids import (
    DimensionLengthProbe,
    FollowDimensionOrientation,
    GridProductColoring,
    OrientedGrid,
    check_prod_order_invariance,
    combined_ids,
    coordinate_ids_in_ball,
    coordinate_prod_ids,
    fooled_grid_algorithm,
    prod_ids,
)
from repro.graphs.balls import extract_ball
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm

NO = catalog.NO_INPUT


def no_inputs(graph):
    return HalfEdgeLabeling.constant(graph, NO)


class TestOrientedGrid:
    def test_degrees_and_counts(self):
        grid = OrientedGrid([4, 5])
        assert grid.num_nodes == 20
        assert all(grid.graph.degree(v) == 4 for v in range(20))
        assert grid.graph.num_edges == 40

    def test_three_dimensional(self):
        grid = OrientedGrid([3, 3, 3])
        assert grid.num_nodes == 27
        assert all(grid.graph.degree(v) == 6 for v in range(27))

    def test_small_sides_rejected(self):
        with pytest.raises(GraphError):
            OrientedGrid([2, 4])

    def test_coordinates_roundtrip(self):
        grid = OrientedGrid([3, 4, 5])
        for v in range(grid.num_nodes):
            assert grid.index_of(grid.coords_of(v)) == v

    def test_neighbor_along_wraps(self):
        grid = OrientedGrid([3, 3])
        v = grid.index_of((2, 1))
        assert grid.coords_of(grid.neighbor_along(v, 0, +1)) == (0, 1)
        assert grid.coords_of(grid.neighbor_along(v, 1, -1)) == (2, 0)

    def test_orientation_inputs_are_consistent(self):
        grid = OrientedGrid([3, 4])
        inputs = grid.orientation_inputs()
        for u, pu, v, pv in grid.graph.edges():
            dim_u, dir_u = inputs[(u, pu)]
            dim_v, dir_v = inputs[(v, pv)]
            assert dim_u == dim_v
            assert dir_u == -dir_v


class TestProdLocal:
    def test_prod_ids_respect_coordinates(self):
        grid = OrientedGrid([3, 4])
        ids = prod_ids(grid, seed=1)
        for u in range(grid.num_nodes):
            for v in range(grid.num_nodes):
                cu, cv = grid.coords_of(u), grid.coords_of(v)
                for dim in range(2):
                    assert (ids[u][dim] == ids[v][dim]) == (cu[dim] == cv[dim])

    def test_combined_ids_unique(self):
        grid = OrientedGrid([3, 3])
        flattened = combined_ids(prod_ids(grid, seed=2))
        assert len(set(flattened)) == grid.num_nodes

    def test_combined_ids_collision_detected(self):
        with pytest.raises(ValueError):
            combined_ids([(1, 2), (1, 2)])

    def test_follow_orientation_is_order_invariant(self):
        grid = OrientedGrid([3, 4])
        assert check_prod_order_invariance(
            FollowDimensionOrientation(), grid, prod_ids(grid, seed=3)
        )

    def test_product_coloring_is_not_order_invariant(self):
        grid = OrientedGrid([5, 5])
        assert not check_prod_order_invariance(
            GridProductColoring(dimensions=2), grid, prod_ids(grid, seed=4), trials=8
        )


class TestGridAlgorithms:
    def test_follow_orientation_solves_sinkless_orientation(self):
        grid = OrientedGrid([4, 4])
        result = run_local_algorithm(
            grid.graph, FollowDimensionOrientation(), inputs=grid.orientation_inputs()
        )
        problem = catalog.sinkless_orientation(4)
        assert is_valid_solution(problem, grid.graph, no_inputs(grid.graph), result.outputs)
        assert result.max_radius_used == 0

    @pytest.mark.parametrize("sides", [[5, 5], [3, 4], [6, 3]])
    def test_product_coloring_proper(self, sides):
        grid = OrientedGrid(sides)
        result = run_local_algorithm(
            grid.graph,
            GridProductColoring(dimensions=2),
            inputs=grid.orientation_inputs(),
            ids=prod_ids(grid, seed=5),
        )
        problem = catalog.coloring(9, max_degree=4)
        assert is_valid_solution(
            problem, grid.graph, no_inputs(grid.graph), result.outputs
        )

    def test_product_coloring_three_dims(self):
        grid = OrientedGrid([3, 3, 3])
        result = run_local_algorithm(
            grid.graph,
            GridProductColoring(dimensions=3),
            inputs=grid.orientation_inputs(),
            ids=prod_ids(grid, seed=6),
        )
        problem = catalog.coloring(27, max_degree=6)
        assert is_valid_solution(
            problem, grid.graph, no_inputs(grid.graph), result.outputs
        )

    def test_product_coloring_with_plain_ids(self):
        grid = OrientedGrid([4, 4])
        ids = list(range(1, grid.num_nodes + 1))
        result = run_local_algorithm(
            grid.graph,
            GridProductColoring(dimensions=2),
            inputs=grid.orientation_inputs(),
            ids=ids,
        )
        problem = catalog.coloring(9, max_degree=4)
        assert is_valid_solution(
            problem, grid.graph, no_inputs(grid.graph), result.outputs
        )

    def test_dimension_length_probe(self):
        grid = OrientedGrid([7, 3])
        result = run_local_algorithm(
            grid.graph, DimensionLengthProbe(), inputs=grid.orientation_inputs()
        )
        for h in grid.graph.half_edges():
            assert result.outputs[h] == 7
        # Locality ~ half the side: the Θ(n^{1/d}) signature.
        assert result.max_radius_used == 4


class TestSpeedupPipeline:
    def test_coordinate_prod_ids_valid(self):
        grid = OrientedGrid([3, 5])
        ids = coordinate_prod_ids(grid)
        for u in range(grid.num_nodes):
            for dim in range(2):
                same_coord = grid.coords_of(u)[dim]
                for v in range(grid.num_nodes):
                    assert (ids[u][dim] == ids[v][dim]) == (
                        grid.coords_of(v)[dim] == same_coord
                    )

    def test_coordinate_ids_in_ball(self):
        grid = OrientedGrid([5, 5])
        center = grid.index_of((2, 2))
        ball = extract_ball(grid.graph, center, 2, input_labeling=grid.orientation_inputs())
        offsets = coordinate_ids_in_ball(ball, dimensions=2)
        assert offsets[0] == (0, 0)
        values = set(offsets.values())
        assert (1, 0) in values and (0, -1) in values

    def test_fooled_algorithm_constant_radius_and_correct(self):
        # Prop 5.5 executable: fool an order-invariant algorithm with n0,
        # feed the orientation-derived ID order, verify on larger grids.
        inner = FollowDimensionOrientation()
        fooled = fooled_grid_algorithm(inner, n0=9)
        for sides in ([4, 4], [6, 5]):
            grid = OrientedGrid(sides)
            result = run_local_algorithm(
                grid.graph,
                fooled,
                inputs=grid.orientation_inputs(),
                ids=coordinate_prod_ids(grid),
            )
            problem = catalog.sinkless_orientation(4)
            assert is_valid_solution(
                problem, grid.graph, no_inputs(grid.graph), result.outputs
            )
            assert result.max_radius_used == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=3, max_value=6), st.integers(min_value=3, max_value=6))
    def test_property_product_coloring_all_sides(self, a, b):
        grid = OrientedGrid([a, b])
        result = run_local_algorithm(
            grid.graph,
            GridProductColoring(dimensions=2),
            inputs=grid.orientation_inputs(),
            ids=prod_ids(grid, seed=a * 10 + b),
        )
        problem = catalog.coloring(9, max_degree=4)
        assert is_valid_solution(
            problem, grid.graph, no_inputs(grid.graph), result.outputs
        )
