"""Unit and end-to-end tests for the cooperative resource governor
(:mod:`repro.utils.budget`).

The budget is the anytime-algorithm contract of the engine: a bounded
walk must *stop* — quickly, with machine-readable diagnostics and a
structured ``UNKNOWN(>= step k)`` verdict — rather than hang or die with
a bare exception, and a generous budget must not change any result.
"""

import time

import pytest

from repro.exceptions import BudgetExceededError
from repro.lcl import catalog
from repro.roundelim.gap import speedup
from repro.utils import budget as budget_scope
from repro.utils.budget import Budget, BudgetDiagnostics, active_budget


@pytest.fixture(autouse=True)
def serial_engine():
    from repro.roundelim.ops import configure_parallel
    from repro.utils import cache as operator_cache

    operator_cache.reset()
    operator_cache.reset_stats()
    configure_parallel(workers=1)
    yield
    operator_cache.reset()
    operator_cache.reset_stats()
    configure_parallel(workers=None, threshold=None)


class TestBudgetPrimitive:
    def test_charge_trips_max_configs(self):
        budget = Budget(max_configs=100)
        budget.charge(99)
        with pytest.raises(BudgetExceededError) as info:
            budget.charge(50)
        diagnostics = info.value.diagnostics
        assert diagnostics.reason == "configs"
        assert diagnostics.limit == 100
        assert diagnostics.observed == 149

    def test_deadline_trips(self):
        budget = Budget(deadline=0.01)
        time.sleep(0.03)
        with pytest.raises(BudgetExceededError) as info:
            budget.check()
        assert info.value.diagnostics.reason == "deadline"

    def test_max_alphabet_trips(self):
        budget = Budget(max_alphabet=8)
        budget.note_alphabet(8)  # at the limit is fine
        with pytest.raises(BudgetExceededError) as info:
            budget.note_alphabet(9)
        assert info.value.diagnostics.reason == "alphabet"
        assert info.value.diagnostics.alphabet_size == 9

    def test_tick_polls_deadline(self):
        from repro.utils.budget import TICK_EVERY

        budget = Budget(deadline=0.01)
        time.sleep(0.03)
        with pytest.raises(BudgetExceededError):
            budget.tick(TICK_EVERY)

    def test_diagnostics_record_step_and_are_machine_readable(self):
        budget = Budget(max_configs=10)
        budget.note_step(3)
        with pytest.raises(BudgetExceededError) as info:
            budget.charge(11)
        payload = info.value.diagnostics.as_dict()
        assert payload["reason"] == "configs"
        assert payload["step"] == 3
        assert isinstance(payload["elapsed"], float)
        assert isinstance(info.value.diagnostics, BudgetDiagnostics)

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.charge(10**9)
        budget.tick(10**6)
        budget.note_alphabet(10**6)
        budget.check()

    def test_ambient_activation_via_context_manager(self):
        assert active_budget() is None
        with Budget(max_configs=5) as budget:
            assert active_budget() is budget
            with pytest.raises(BudgetExceededError):
                budget_scope.charge(6)
        assert active_budget() is None

    def test_module_helpers_are_noops_without_budget(self):
        budget_scope.charge(10**9)
        budget_scope.tick(10**9)
        budget_scope.check()
        budget_scope.note_alphabet(10**9)
        budget_scope.note_step(10**9)


class TestBudgetedWalks:
    def test_deadline_yields_structured_unknown_quickly(self):
        """Acceptance: 2-second budget on a non-stabilizing problem ends in
        UNKNOWN(>= step k) — no hang, no bare exception."""
        from repro.decidability.constant_time import (
            INCONCLUSIVE,
            semidecide_constant_time,
        )

        start = time.monotonic()
        verdict = semidecide_constant_time(
            catalog.mis(3),
            max_steps=50,
            max_universe=10**9,
            use_cache=False,
            budget=Budget(deadline=2.0),
        )
        elapsed = time.monotonic() - start
        assert elapsed < 15, "budgeted walk must stop promptly"
        assert verdict.verdict == INCONCLUSIVE
        assert verdict.unknown_since_step is not None
        assert verdict.budget_diagnostics is not None
        assert verdict.budget_diagnostics.reason == "deadline"
        assert f"UNKNOWN(>= step {verdict.unknown_since_step})" in verdict.summary()

    def test_max_configs_yields_structured_unknown(self):
        result = speedup(
            catalog.mis(3),
            max_steps=10,
            max_universe=10**9,
            use_cache=False,
            budget=Budget(max_configs=500),
        )
        assert result.status == "unknown"
        assert result.unknown_since_step is not None
        assert result.budget_diagnostics.reason == "configs"
        assert result.verdict_label().startswith("UNKNOWN(>= step ")
        assert "configurations" in result.summary()

    def test_ambient_budget_governs_walk(self):
        with Budget(max_configs=500):
            result = speedup(
                catalog.mis(3), max_steps=10, max_universe=10**9, use_cache=False
            )
        assert result.status == "unknown"
        assert result.budget_diagnostics is not None

    def test_generous_budget_changes_nothing(self):
        baseline = speedup(catalog.echo(3), max_steps=4, use_cache=False)
        budgeted = speedup(
            catalog.echo(3),
            max_steps=4,
            use_cache=False,
            budget=Budget(deadline=3600.0, max_configs=10**12),
        )
        assert budgeted.status == baseline.status == "constant"
        assert budgeted.constant_rounds == baseline.constant_rounds
        assert budgeted.sequence.problem(
            budgeted.constant_rounds
        ) == baseline.sequence.problem(baseline.constant_rounds)
        assert budgeted.budget_diagnostics is None

    def test_fixed_point_still_detected_under_budget(self):
        result = speedup(
            catalog.sinkless_orientation(3),
            max_steps=3,
            use_cache=False,
            budget=Budget(deadline=3600.0),
        )
        assert result.status == "fixed-point"
