"""Failure injection: the checker against an independent oracle.

Takes valid solutions (from the brute-force solver), injects single
half-edge mutations, and compares the Definition 2.4 checker's verdict
against a from-scratch re-implementation of the definition written in
this test file — so a bug would need to appear identically in two
independent codings to slip through.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import HalfEdgeLabeling, cycle, path, random_tree
from repro.lcl import catalog, check_solution, random_lcl
from repro.lcl.checker import brute_force_solution
from repro.utils.multiset import Multiset

NO = catalog.NO_INPUT


def independent_verdict(problem, graph, inputs, outputs) -> bool:
    """Definition 2.4 re-coded from the paper text, independently."""
    for v in range(graph.num_nodes):
        if graph.degree(v) == 0:
            continue
        labels = []
        for port in range(graph.degree(v)):
            if (v, port) not in outputs:
                return False
            label = outputs[(v, port)]
            if label not in problem.g[inputs[(v, port)]]:
                return False
            labels.append(label)
        if Multiset(labels) not in problem.node_constraints.get(
            graph.degree(v), frozenset()
        ):
            return False
    for u, pu, v, pv in graph.edges():
        pair = Multiset((outputs[(u, pu)], outputs[(v, pv)]))
        if pair not in problem.edge_constraint:
            return False
    return True


PROBLEMS = [
    ("coloring", lambda: catalog.coloring(3, 2)),
    ("mis", lambda: catalog.mis(2)),
    ("matching", lambda: catalog.maximal_matching(2)),
    ("echo", lambda: catalog.echo(2)),
]


class TestMutationAgreement:
    @pytest.mark.parametrize("name, build", PROBLEMS)
    @pytest.mark.parametrize("seed", range(5))
    def test_single_mutations_agree_with_oracle(self, name, build, seed):
        problem = build()
        rng = random.Random(seed)
        graph = path(6) if seed % 2 == 0 else cycle(6)
        single = next(iter(problem.sigma_in))
        inputs = HalfEdgeLabeling(
            graph,
            {
                h: single
                if len(problem.sigma_in) == 1
                else rng.choice(sorted(problem.sigma_in))
                for h in graph.half_edges()
            },
        )
        solution = brute_force_solution(problem, graph, inputs)
        assert solution is not None
        labels = sorted(problem.sigma_out, key=str)
        half_edges = list(graph.half_edges())
        for _ in range(12):
            mutated = solution.copy()
            target = rng.choice(half_edges)
            mutated[target] = rng.choice(labels)
            report = check_solution(problem, graph, inputs, mutated)
            assert report.is_valid == independent_verdict(
                problem, graph, inputs, mutated
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_random_problems_random_labelings(self, seed):
        rng = random.Random(seed)
        problem = random_lcl(seed, num_labels=3, max_degree=3, num_inputs=2)
        graph = random_tree(6, max_degree=3, seed=seed % 50)
        inputs = HalfEdgeLabeling(
            graph,
            {h: rng.choice(sorted(problem.sigma_in)) for h in graph.half_edges()},
        )
        outputs = HalfEdgeLabeling(
            graph,
            {h: rng.choice(sorted(problem.sigma_out)) for h in graph.half_edges()},
        )
        report = check_solution(problem, graph, inputs, outputs)
        assert report.is_valid == independent_verdict(problem, graph, inputs, outputs)

    def test_localization_of_failures(self):
        # A single bad node color fails exactly its own node/edges.
        problem = catalog.coloring(3, 2)
        graph = path(5)
        inputs = HalfEdgeLabeling.constant(graph, NO)
        node_colors = ["c0", "c1", "c2", "c0", "c1"]
        outputs = HalfEdgeLabeling.from_node_labels(graph, node_colors)
        outputs[(2, 0)] = "c1"  # clashes toward node 1 and within node 2
        report = check_solution(problem, graph, inputs, outputs)
        assert 2 in report.failed_nodes
        assert (1, 2) in report.failed_edges
        assert 4 not in report.failed_nodes
        assert (3, 4) not in report.failed_edges
