"""Failure injection: the checker against an independent oracle.

Takes valid solutions (from the brute-force solver), injects single
half-edge mutations, and compares the Definition 2.4 checker's verdict
against a from-scratch re-implementation of the definition written in
this test file — so a bug would need to appear identically in two
independent codings to slip through.

The SAT block applies the same discipline one layer down: valid solver
artifacts (models, formulas, refutation payloads) are mutated one bit
at a time — flipped literal polarity, dropped clause, truncated model —
and every mutant must be caught by the decoder's validation
(:exc:`SatDecodeError`) or independently re-proven correct by the
engine-free checkers; no mutation may ever surface as an accepted but
wrong witness.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import HalfEdgeLabeling, cycle, path, random_tree
from repro.lcl import catalog, check_solution, random_lcl
from repro.lcl.checker import brute_force_solution
from repro.lcl.random_problems import solvable_random_lcl
from repro.sat import CnfFormula, SatDecodeError, SatSolver, ZeroRoundEncoder
from repro.utils.multiset import Multiset
from repro.verify.refute import build_refutation, check_refutation, uncoverable_tuple

NO = catalog.NO_INPUT


def independent_verdict(problem, graph, inputs, outputs) -> bool:
    """Definition 2.4 re-coded from the paper text, independently."""
    for v in range(graph.num_nodes):
        if graph.degree(v) == 0:
            continue
        labels = []
        for port in range(graph.degree(v)):
            if (v, port) not in outputs:
                return False
            label = outputs[(v, port)]
            if label not in problem.g[inputs[(v, port)]]:
                return False
            labels.append(label)
        if Multiset(labels) not in problem.node_constraints.get(
            graph.degree(v), frozenset()
        ):
            return False
    for u, pu, v, pv in graph.edges():
        pair = Multiset((outputs[(u, pu)], outputs[(v, pv)]))
        if pair not in problem.edge_constraint:
            return False
    return True


PROBLEMS = [
    ("coloring", lambda: catalog.coloring(3, 2)),
    ("mis", lambda: catalog.mis(2)),
    ("matching", lambda: catalog.maximal_matching(2)),
    ("echo", lambda: catalog.echo(2)),
]


class TestMutationAgreement:
    @pytest.mark.parametrize("name, build", PROBLEMS)
    @pytest.mark.parametrize("seed", range(5))
    def test_single_mutations_agree_with_oracle(self, name, build, seed):
        problem = build()
        rng = random.Random(seed)
        graph = path(6) if seed % 2 == 0 else cycle(6)
        single = next(iter(problem.sigma_in))
        inputs = HalfEdgeLabeling(
            graph,
            {
                h: single
                if len(problem.sigma_in) == 1
                else rng.choice(sorted(problem.sigma_in))
                for h in graph.half_edges()
            },
        )
        solution = brute_force_solution(problem, graph, inputs)
        assert solution is not None
        labels = sorted(problem.sigma_out, key=str)
        half_edges = list(graph.half_edges())
        for _ in range(12):
            mutated = solution.copy()
            target = rng.choice(half_edges)
            mutated[target] = rng.choice(labels)
            report = check_solution(problem, graph, inputs, mutated)
            assert report.is_valid == independent_verdict(
                problem, graph, inputs, mutated
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_random_problems_random_labelings(self, seed):
        rng = random.Random(seed)
        problem = random_lcl(seed, num_labels=3, max_degree=3, num_inputs=2)
        graph = random_tree(6, max_degree=3, seed=seed % 50)
        inputs = HalfEdgeLabeling(
            graph,
            {h: rng.choice(sorted(problem.sigma_in)) for h in graph.half_edges()},
        )
        outputs = HalfEdgeLabeling(
            graph,
            {h: rng.choice(sorted(problem.sigma_out)) for h in graph.half_edges()},
        )
        report = check_solution(problem, graph, inputs, outputs)
        assert report.is_valid == independent_verdict(problem, graph, inputs, outputs)

    def test_localization_of_failures(self):
        # A single bad node color fails exactly its own node/edges.
        problem = catalog.coloring(3, 2)
        graph = path(5)
        inputs = HalfEdgeLabeling.constant(graph, NO)
        node_colors = ["c0", "c1", "c2", "c0", "c1"]
        outputs = HalfEdgeLabeling.from_node_labels(graph, node_colors)
        outputs[(2, 0)] = "c1"  # clashes toward node 1 and within node 2
        report = check_solution(problem, graph, inputs, outputs)
        assert 2 in report.failed_nodes
        assert (1, 2) in report.failed_edges
        assert 4 not in report.failed_nodes
        assert (3, 4) not in report.failed_edges


def _satisfiable_query(problem):
    """An encoder plus one satisfiable clique query's model, or a skip."""
    encoder = ZeroRoundEncoder(problem)
    with SatSolver(
        encoder.formula, decision_order=encoder.decision_order()
    ) as solver:
        for clique in encoder.maximal_cliques():
            model = solver.solve(encoder.assumptions_excluding(clique))
            if model is not None:
                return encoder, model
    pytest.skip(f"{problem.name}: no satisfiable clique query to mutate")


def _independently_valid(problem, decoded):
    """The engine-free re-proof a decoder-accepted mutant must pass."""
    assert uncoverable_tuple(problem, decoded) is None
    for a in sorted(decoded, key=str):
        for b in sorted(decoded, key=str):
            assert problem.allows_edge(a, b)


class TestSatMutations:
    """Lying solver artifacts must never become accepted wrong witnesses."""

    @pytest.mark.parametrize("seed", range(6))
    def test_flipped_literal_polarity_in_model(self, seed):
        problem = solvable_random_lcl(seed, num_labels=4, max_degree=2)
        encoder, model = _satisfiable_query(problem)
        for variable in sorted(model):
            mutated = dict(model)
            mutated[variable] = not mutated[variable]
            try:
                decoded = encoder.decode_clique(mutated)
            except SatDecodeError:
                continue
            # The decoder accepted the flip — then the flip must have
            # been harmless, which only the engine-free checker can say.
            _independently_valid(problem, decoded)

    @pytest.mark.parametrize(
        "name, build",
        [("mis", lambda: catalog.mis(2)), ("echo", lambda: catalog.echo(2))],
    )
    def test_dropped_clause_cannot_smuggle_a_witness(self, name, build):
        # Weakening the formula by any single clause lets the solver
        # find models the encoder never licensed; decoding them against
        # the *original* encoder must reject or re-prove them.
        problem = build()
        encoder = ZeroRoundEncoder(problem)
        cliques = encoder.maximal_cliques()
        for dropped in range(encoder.formula.num_clauses):
            weakened = CnfFormula()
            while weakened.num_vars < encoder.formula.num_vars:
                weakened.new_var()
            for index, clause in enumerate(encoder.formula.clauses):
                if index != dropped:
                    weakened.add_clause(clause)
            with SatSolver(
                weakened, decision_order=encoder.decision_order()
            ) as solver:
                for clique in cliques:
                    model = solver.solve(encoder.assumptions_excluding(clique))
                    if model is None:
                        continue
                    try:
                        decoded = encoder.decode_clique(model)
                    except SatDecodeError:
                        continue
                    _independently_valid(problem, decoded)

    def test_truncated_model_is_rejected_outright(self):
        problem = catalog.trivial(3)
        encoder, model = _satisfiable_query(problem)
        for variable in sorted(model):
            mutated = dict(model)
            del mutated[variable]
            with pytest.raises(SatDecodeError, match="unassigned"):
                encoder.decode_clique(mutated)

    def test_mutated_refutation_payloads_are_rejected(self):
        problem = catalog.maximal_matching(2)
        refutation = build_refutation(problem)
        assert refutation is not None and refutation["witnesses"], (
            "maximal-matching lost its 0-round refutation"
        )
        assert check_refutation(problem, refutation) == []

        import copy

        # Dropping a witness hides a clique from the exhaustion claim.
        dropped = copy.deepcopy(refutation)
        dropped["witnesses"].pop()
        assert check_refutation(problem, dropped)

        # Rewriting one recorded clique as a copy of another mismatches
        # the recomputed maximal clique list — a witness cannot quietly
        # swap its obligation for an easier one.
        swapped = copy.deepcopy(refutation)
        assert len(swapped["witnesses"]) >= 2, "need two cliques to swap"
        swapped["witnesses"][0]["clique"] = swapped["witnesses"][1]["clique"]
        assert check_refutation(problem, swapped)

        # An undeclared degree is rejected before any exhaustion runs.
        bad_degree = copy.deepcopy(refutation)
        bad_degree["witnesses"][0]["degree"] = 99
        assert check_refutation(problem, bad_degree)

        # And a problem with a 0-round algorithm must have no refutation
        # for a mutant to impersonate in the first place.
        assert build_refutation(catalog.trivial(2)) is None
