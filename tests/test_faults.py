"""Chaos suite: the engine must produce **bit-identical** results under
injected faults (:mod:`repro.utils.faults`).

Every recovery boundary is exercised against a clean serial baseline:
worker crashes (per-chunk retry + serial rescue), worker hard-exits
(``BrokenProcessPool`` detection + pool rebuild), slow chunks (per-chunk
timeouts), corrupt disk-cache entries (poison recovery), and torn
checkpoint writes (checksum verification + fresh start).  Failures must
be *loud* — counted in ``stats()`` and logged — but never change results.
"""

import pytest

from repro.lcl import catalog
from repro.roundelim.ops import R, R_bar, configure_bitset, configure_parallel, simplify
from repro.roundelim.sequence import ProblemSequence
from repro.utils import cache as operator_cache
from repro.utils import faults
from repro.utils.faults import FaultPlan, InjectedFault, configure_faults, parse_spec

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def clean_engine(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    operator_cache.reset()
    operator_cache.reset_stats()
    operator_cache.configure(enabled=True, disk_dir=None)
    configure_parallel(workers=1, threshold=None, chunk_timeout=None, chunk_retries=None)
    # The chaos scenarios target the *pool* recovery boundaries; the bitset
    # backend would answer the quantifier loops without ever fanning out.
    configure_bitset(enabled=False)
    faults.reset_faults()
    yield
    faults.reset_faults()
    operator_cache.reset()
    operator_cache.reset_stats()
    configure_parallel(workers=None, threshold=None, chunk_timeout=None, chunk_retries=None)
    configure_bitset(enabled=None)


def engine_outputs(problem, use_cache=False):
    """The (R, simplify, Rbar) triple whose invariance the suite asserts."""
    r = R(problem, use_cache=use_cache)
    simplified = simplify(r, domination=True, use_cache=use_cache)
    rbar = R_bar(simplified, use_cache=use_cache)
    return r, simplified, rbar


class TestFaultPlan:
    def test_same_seed_same_firing_pattern(self):
        a = FaultPlan({"worker_crash": 0.5}, seed=42)
        b = FaultPlan({"worker_crash": 0.5}, seed=42)
        pattern_a = [a.fire("worker_crash") for _ in range(200)]
        pattern_b = [b.fire("worker_crash") for _ in range(200)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seeds_differ(self):
        a = FaultPlan({"worker_crash": 0.5}, seed=1)
        b = FaultPlan({"worker_crash": 0.5}, seed=2)
        assert [a.fire("worker_crash") for _ in range(200)] != [
            b.fire("worker_crash") for _ in range(200)
        ]

    def test_rate_zero_never_fires_rate_one_always_fires(self):
        plan = FaultPlan({"worker_crash": 0.0, "slow_chunk": 1.0}, seed=0)
        assert not any(plan.fire("worker_crash") for _ in range(50))
        assert all(plan.fire("slow_chunk") for _ in range(50))

    def test_parse_spec(self):
        rates = parse_spec("worker_crash:0.1, slow_chunk:0.05")
        assert rates == {"worker_crash": 0.1, "slow_chunk": 0.05}
        with pytest.raises(ValueError):
            parse_spec("not_a_kind:0.1")
        with pytest.raises(ValueError):
            parse_spec("worker_crash:oops")
        with pytest.raises(ValueError):
            parse_spec("worker_crash:1.5")

    def test_injected_fault_raises_with_metadata(self):
        configure_faults({"worker_crash": 1.0}, seed=0)
        with pytest.raises(InjectedFault) as info:
            faults.maybe_crash()
        assert info.value.kind == "worker_crash"

    def test_env_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache_corrupt:0.25")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "9")
        faults.reset_faults()
        plan = faults.get_plan()
        assert plan.rates == {"cache_corrupt": 0.25}
        assert plan.seed == 9


class TestChaosParallel:
    """Pool-level faults: results must equal the clean serial baseline."""

    PROBLEMS = [catalog.mis(3), catalog.sinkless_orientation(3), catalog.echo(3)]

    def baseline(self, problem):
        configure_faults(None)
        configure_parallel(workers=1)
        operator_cache.reset()
        return engine_outputs(problem)

    def chaotic(self, problem, rates, seed=7, retries=1, timeout=None):
        operator_cache.reset()
        operator_cache.reset_stats()
        configure_parallel(
            workers=2, threshold=1, chunk_retries=retries, chunk_timeout=timeout
        )
        configure_faults(rates, seed=seed)
        try:
            return engine_outputs(problem)
        finally:
            configure_faults(None)
            configure_parallel(workers=1, threshold=None, chunk_timeout=None)

    def test_worker_crash_rate_one_forces_serial_rescue(self):
        problem = catalog.mis(3)
        expected = self.baseline(problem)
        observed = self.chaotic(problem, {"worker_crash": 1.0})
        assert observed == expected
        totals = {
            key: sum(op.get(key, 0) for op in operator_cache.stats()["operators"].values())
            for key in ("chunk_failures", "chunk_retries", "serial_rescues", "pool_fallbacks")
        }
        if totals["pool_fallbacks"] == 0:
            # The pool came up: every chunk must have crashed, been retried,
            # and ended in serial rescue.  (Under extreme load the pool may
            # fail to fork at all — then the counted full-serial fallback is
            # the recovery path instead.)
            assert totals["chunk_failures"] > 0
            assert totals["chunk_retries"] > 0
            assert totals["serial_rescues"] > 0

    @pytest.mark.parametrize("problem", PROBLEMS, ids=lambda p: p.name)
    def test_worker_crash_partial_rate_identical_results(self, problem):
        expected = self.baseline(problem)
        observed = self.chaotic(problem, {"worker_crash": 0.3}, seed=11, retries=2)
        assert observed == expected

    def test_worker_exit_breaks_pool_identical_results(self):
        problem = catalog.mis(3)
        expected = self.baseline(problem)
        observed = self.chaotic(problem, {"worker_exit": 1.0})
        assert observed == expected
        operators = operator_cache.stats()["operators"].values()
        rescued = sum(op.get("serial_rescues", 0) for op in operators)
        fell_back = sum(op.get("pool_fallbacks", 0) for op in operators)
        assert rescued + fell_back > 0

    def test_slow_chunks_with_tight_timeout_identical_results(self):
        problem = catalog.mis(3)
        expected = self.baseline(problem)
        observed = self.chaotic(
            problem, {"slow_chunk": 1.0}, timeout=faults.SLOW_CHUNK_SECONDS / 5
        )
        assert observed == expected

    def test_mixed_fault_storm_identical_results(self):
        problem = catalog.sinkless_orientation(3)
        expected = self.baseline(problem)
        observed = self.chaotic(
            problem,
            {"worker_crash": 0.2, "worker_exit": 0.1, "slow_chunk": 0.2},
            seed=3,
            retries=2,
        )
        assert observed == expected


class TestChaosCache:
    def test_corrupt_disk_reads_recompute_identical_results(self, tmp_path):
        problem = catalog.mis(2)
        configure_faults(None)
        operator_cache.configure(enabled=True, disk_dir=tmp_path)
        expected = engine_outputs(problem, use_cache=True)

        operator_cache.configure(enabled=True, disk_dir=tmp_path)  # cold memory
        operator_cache.reset_stats()
        configure_faults({"cache_corrupt": 1.0}, seed=5)
        observed = engine_outputs(problem, use_cache=True)
        assert observed == expected
        operators = operator_cache.stats()["operators"]
        assert sum(op.get("disk_errors", 0) for op in operators.values()) > 0


class TestChaosCheckpoint:
    def test_torn_checkpoint_writes_recover_to_identical_walk(self, tmp_path):
        problem = catalog.echo(3)
        configure_faults(None)
        clean = ProblemSequence(problem, use_cache=False, checkpoint=False)
        expected = [clean.problem(k) for k in range(3)]

        configure_faults({"checkpoint_truncate": 1.0}, seed=13)
        torn = ProblemSequence(problem, use_cache=False, checkpoint=tmp_path)
        [torn.problem(k) for k in range(3)]
        configure_faults(None)

        # Every persisted snapshot was torn mid-write; a resume must detect
        # the damage, restore nothing wrong, and recompute to the same walk.
        resumed = ProblemSequence(problem, use_cache=False, checkpoint=tmp_path)
        restored = resumed.resume()
        observed = [resumed.problem(k) for k in range(3)]
        assert observed == expected
        assert restored == 0 or all(
            resumed.problem(k) == expected[k] for k in range(restored + 1)
        )


class TestSimulatorFaultKinds:
    """The simulator-level kinds added for supervised campaigns."""

    def test_new_kinds_recognized_by_parse_spec(self):
        rates = parse_spec(
            "sim_crash:0.1,sim_hang:0.1,sim_oom:0.1,journal_torn:0.05,"
            "adversarial_ids:1.0"
        )
        assert set(rates) == {
            "sim_crash",
            "sim_hang",
            "sim_oom",
            "journal_torn",
            "adversarial_ids",
        }

    def test_execute_sim_crash_raises_injected_fault(self):
        with pytest.raises(InjectedFault) as excinfo:
            faults.execute_sim_fault("sim_crash", 4)
        assert excinfo.value.kind == "sim_crash"
        assert excinfo.value.occurrence == 4

    def test_execute_sim_oom_raises_memory_error(self):
        with pytest.raises(MemoryError):
            faults.execute_sim_fault("sim_oom")

    def test_execute_rejects_non_sim_kinds(self):
        with pytest.raises(ValueError):
            faults.execute_sim_fault("worker_crash")

    def test_fire_sim_faults_deterministic_and_ordered(self):
        a = FaultPlan({"sim_crash": 0.5, "sim_oom": 0.5, "sim_hang": 0.5}, seed=3)
        b = FaultPlan({"sim_crash": 0.5, "sim_oom": 0.5, "sim_hang": 0.5}, seed=3)
        draws_a = [faults.fire_sim_faults(a) for _ in range(100)]
        draws_b = [faults.fire_sim_faults(b) for _ in range(100)]
        assert draws_a == draws_b
        for kinds in draws_a:
            assert list(kinds) == [k for k in faults.SIM_KINDS if k in kinds]
        assert any(len(kinds) > 1 for kinds in draws_a)

    def test_fire_sim_faults_quiet_without_rates(self):
        assert faults.fire_sim_faults(FaultPlan({}, seed=0)) == ()


class TestAdversarialIds:
    def test_random_ids_replaced_under_fault(self):
        from repro.graphs import cycle
        from repro.graphs.ids import adversarial_ids, random_ids

        graph = cycle(8)
        clean = random_ids(graph, seed=1)
        configure_faults({"adversarial_ids": 1.0})
        injected = random_ids(graph, seed=1)
        configure_faults(None)
        assert injected != clean
        assert injected == adversarial_ids(graph, key=lambda v: -v)
        assert len(set(injected)) == graph.num_nodes

    def test_algorithms_stay_correct_under_adversarial_ids(self):
        # Definition 2.1: identifier assignment is adversarial.  Measured
        # localities may legitimately shift, but outputs must stay valid.
        from repro.graphs import HalfEdgeLabeling, cycle
        from repro.graphs.ids import random_ids
        from repro.lcl import catalog as lcl_catalog
        from repro.lcl.checker import check_solution
        from repro.local.algorithms import LinialColoring
        from repro.local.model import run_local_algorithm

        graph = cycle(16)
        problem = lcl_catalog.coloring(3, 2)
        inputs = HalfEdgeLabeling.constant(graph, next(iter(problem.sigma_in)))
        configure_faults({"adversarial_ids": 1.0})
        ids = random_ids(graph, seed=1)
        configure_faults(None)
        result = run_local_algorithm(
            graph, LinialColoring(2), inputs=inputs, ids=ids
        )
        assert check_solution(problem, graph, inputs, result.outputs).is_valid
