"""Smoke tests: every example script must run to completion.

The examples are deliverables in their own right; each asserts its own
claims internally, so a clean `main()` run is a meaningful check.  The
heavyweight panels are trimmed via module-level knobs where available.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "quickstart OK" in out

    def test_lower_bound_certificate(self, capsys):
        load_example("lower_bound_certificate").main()
        out = capsys.readouterr().out
        assert "lower-bound certificate OK" in out
        assert "fixed point" in out

    def test_rooted_trees(self, capsys):
        load_example("rooted_trees").main()
        out = capsys.readouterr().out
        assert "rooted trees OK" in out

    def test_volume_probing(self, capsys):
        load_example("volume_probing").main()
        out = capsys.readouterr().out
        assert "volume probing OK" in out
        assert "gap" in out

    def test_grid_speedup(self, capsys):
        load_example("grid_speedup").main()
        out = capsys.readouterr().out
        assert "grid speedup OK" in out

    @pytest.mark.slow
    def test_landscape_trees(self, capsys):
        load_example("landscape_trees").main()
        out = capsys.readouterr().out
        assert "gap" in out
