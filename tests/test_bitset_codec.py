"""Property tests for the :class:`BitsetUniverse` codec.

The codec is the trust anchor of the compiled backend: every kernel
receives masks produced by ``encode`` and every emitted configuration
goes back through ``decode``, so the differential guarantees of
``tests/test_bitset_differential.py`` reduce to three codec properties:

* **losslessness** — ``decode(encode(S)) == S`` for every subset ``S``
  of the base alphabet;
* **canonical bit assignment** — the bit order depends only on the label
  *set* (via ``label_sort_key``), never on construction order, so two
  shuffles of the same alphabet produce interchangeable masks;
* **loud overflow** — alphabets beyond the 64-bit packing word raise
  :exc:`BitsetUnsupported` instead of silently truncating, which is what
  lets :mod:`repro.roundelim.ops` fall back to the oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roundelim.bitset import WORD_BITS, BitsetUniverse, BitsetUnsupported
from repro.utils.multiset import label_sort_key

# Labels as the engine actually produces them: strings at step 0, nested
# frozensets (of frozensets, ...) after round elimination.
atoms = st.one_of(
    st.text(min_size=1, max_size=4),
    st.integers(min_value=-5, max_value=99),
    st.tuples(st.text(min_size=1, max_size=2), st.integers(0, 9)),
)
labels = st.one_of(
    atoms,
    st.frozensets(atoms, min_size=1, max_size=4),
    st.frozensets(st.frozensets(atoms, min_size=1, max_size=3), min_size=1, max_size=3),
)
alphabets = st.lists(labels, min_size=1, max_size=WORD_BITS, unique=True)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(alphabets, st.data())
    def test_encode_decode_identity(self, alphabet, data):
        codec = BitsetUniverse(alphabet)
        subset = frozenset(
            data.draw(st.lists(st.sampled_from(sorted(codec.base, key=label_sort_key))))
        )
        assert codec.decode(codec.encode(subset)) == subset

    @settings(max_examples=50, deadline=None)
    @given(alphabets)
    def test_all_singletons_round_trip(self, alphabet):
        codec = BitsetUniverse(alphabet)
        for label in codec.base:
            assert codec.decode(codec.encode([label])) == frozenset({label})

    @settings(max_examples=50, deadline=None)
    @given(alphabets)
    def test_full_and_empty_masks(self, alphabet):
        codec = BitsetUniverse(alphabet)
        assert codec.decode(codec.full_mask) == frozenset(codec.base)
        assert codec.decode(0) == frozenset()
        assert codec.encode(codec.base) == codec.full_mask
        assert codec.encode([]) == 0

    @settings(max_examples=50, deadline=None)
    @given(alphabets, st.data())
    def test_encode_array_matches_scalar_encode(self, alphabet, data):
        import numpy as np

        codec = BitsetUniverse(alphabet)
        pool = sorted(codec.base, key=label_sort_key)
        sets = data.draw(
            st.lists(st.lists(st.sampled_from(pool)).map(frozenset), max_size=8)
        )
        array = codec.encode_array(sets)
        assert array.dtype == np.uint64
        assert [int(mask) for mask in array] == [codec.encode(s) for s in sets]


class TestCanonicalAssignment:
    @settings(max_examples=100, deadline=None)
    @given(alphabets, st.randoms(use_true_random=False))
    def test_order_insensitive_bit_assignment(self, alphabet, rng):
        shuffled = list(alphabet)
        rng.shuffle(shuffled)
        original = BitsetUniverse(alphabet)
        reordered = BitsetUniverse(shuffled)
        assert original.base == reordered.base
        assert original.index == reordered.index
        assert original.full_mask == reordered.full_mask

    @settings(max_examples=50, deadline=None)
    @given(alphabets)
    def test_bits_follow_label_sort_key(self, alphabet):
        codec = BitsetUniverse(alphabet)
        assert list(codec.base) == sorted(set(alphabet), key=label_sort_key)
        for position, label in enumerate(codec.base):
            assert codec.encode([label]) == 1 << position

    @settings(max_examples=50, deadline=None)
    @given(alphabets)
    def test_duplicates_collapse(self, alphabet):
        assert BitsetUniverse(alphabet + alphabet).base == BitsetUniverse(alphabet).base


class TestOverflowFallback:
    def test_wide_alphabet_raises(self):
        with pytest.raises(BitsetUnsupported):
            BitsetUniverse([f"L{i}" for i in range(WORD_BITS + 1)])

    def test_word_width_alphabet_is_accepted(self):
        codec = BitsetUniverse([f"L{i:02d}" for i in range(WORD_BITS)])
        assert len(codec) == WORD_BITS
        assert codec.full_mask == (1 << WORD_BITS) - 1
        assert codec.decode(codec.full_mask) == frozenset(codec.base)

    def test_empty_alphabet_raises(self):
        with pytest.raises(BitsetUnsupported):
            BitsetUniverse([])

    def test_foreign_bits_rejected_on_decode(self):
        codec = BitsetUniverse(["a", "b"])
        with pytest.raises(ValueError):
            codec.decode(1 << 5)

    def test_foreign_label_rejected_on_encode(self):
        codec = BitsetUniverse(["a", "b"])
        with pytest.raises(KeyError):
            codec.encode(["z"])

    def test_overflow_triggers_oracle_fallback_end_to_end(self):
        # The operator entry point must decline the wide alphabet and the
        # engine must still answer via the oracle with the same result.
        from repro.lcl import catalog
        from repro.roundelim.ops import R, configure_bitset
        from repro.utils import cache as operator_cache

        wide = catalog.trivial(2, labels=tuple(f"t{i}" for i in range(WORD_BITS + 6)))
        operator_cache.reset_stats()
        try:
            configure_bitset(enabled=True)
            compiled_view = R(wide, use_cache=False)
            assert operator_cache.stats()["operators"]["R"]["bitset_fallbacks"] >= 1
            configure_bitset(enabled=False)
            assert compiled_view == R(wide, use_cache=False)
        finally:
            configure_bitset(enabled=None)
            operator_cache.reset_stats()
