"""Lemma 2.6 with inputs: the general echo problem round-trips.

The paper stresses that its round elimination extension handles inputs,
and Lemma 2.6's construction is carefully set up to keep the input graph
class unchanged.  This test exercises that path: define echo as a
*general* (Def 2.2) radius-1 predicate, normalize via the Lemma 2.6
construction, and cross-validate solvability and decoded solutions
against the hand-written node-edge-checkable `catalog.echo`.
"""

import pytest

from repro.graphs import HalfEdgeLabeling, path, star
from repro.lcl import catalog
from repro.lcl.checker import brute_force_solution, is_valid_solution
from repro.lcl.convert import decode_marked_output, to_node_edge_checkable
from repro.lcl.problem import LCLProblem


def general_echo() -> LCLProblem:
    """Echo as a predicate: each half-edge outputs the *opposite* input.

    Radius-1 checkable: the center's ball shows, for every visible edge
    with both endpoints in the ball, the half-edge outputs and both
    inputs.  Half-edges whose opposite lies outside the ball are left to
    the opposite node's own ball.
    """

    def accepts(ball, inputs, outputs) -> bool:
        for local in range(ball.num_nodes):
            for port, entry in ball.adj[local].items():
                neighbor, remote_port = entry
                expected = inputs[neighbor][remote_port]
                if outputs[local][port] != expected:
                    return False
        return True

    return LCLProblem(
        sigma_in=["0", "1"],
        sigma_out=["0", "1"],
        radius=1,
        accepts=accepts,
        name="general-echo",
    )


def striped_inputs(graph) -> HalfEdgeLabeling:
    return HalfEdgeLabeling(
        graph, {h: str((h[0] + h[1]) % 2) for h in graph.half_edges()}
    )


class TestGeneralEchoConversion:
    @pytest.fixture(scope="class")
    def converted(self):
        return to_node_edge_checkable(general_echo(), max_degree=2, max_labels=60000)

    def test_inputs_preserved(self, converted):
        assert converted.sigma_in == frozenset({"0", "1"})
        assert converted.has_inputs

    def test_solvable_and_decodes_to_echo_semantics(self, converted):
        graph = path(3)
        inputs = striped_inputs(graph)
        solution = brute_force_solution(converted, graph, inputs)
        assert solution is not None
        for half_edge in graph.half_edges():
            decoded = decode_marked_output(solution[half_edge])
            assert decoded == inputs[graph.opposite(half_edge)]

    def test_solvability_matches_catalog_echo(self, converted):
        # catalog.echo wraps outputs as (mine, guess); both formulations
        # must be solvable on the same instances (they always are — echo
        # has a unique solution — so this checks the conversion kept the
        # problem satisfiable rather than over-constraining it).
        graph = path(4)
        inputs = striped_inputs(graph)
        from_catalog = brute_force_solution(catalog.echo(2), graph, inputs)
        from_conversion = brute_force_solution(converted, graph, inputs)
        assert (from_catalog is None) == (from_conversion is None) == False  # noqa: E712

    def test_direct_validation_of_decoded_solution(self, converted):
        graph = path(4)
        inputs = striped_inputs(graph)
        solution = brute_force_solution(converted, graph, inputs)
        decoded = HalfEdgeLabeling(
            graph,
            {h: decode_marked_output(solution[h]) for h in graph.half_edges()},
        )
        assert general_echo().is_valid(graph, inputs, decoded)
