"""Pipeline-wide conformance fuzz harness (certificate-carrying verdicts).

Drives a large population of generated problems — plain random LCLs,
input-carrying variants, higher-degree variants, planted-solvable
positive controls — plus the full CLI catalog through the gap pipeline,
and demands of every single verdict:

* a certificate is produced and the **engine-free** checker accepts it;
* serialization round-trips bit-identically;
* cross-validation holds against two independent oracles —
  the automaton-based path classifier (``constant`` on trees forces
  ``O(1)`` on directed paths) and brute force on small instances
  (``constant`` forces every small instance to be solvable);
* planted positive controls come back ``constant`` with 0 rounds — the
  harness would catch a pipeline that silently stopped *finding*
  solvable problems, not just one that crashed.

Population size scales with ``REPRO_CONFORMANCE_COUNT`` (default 200;
the nightly CI job runs 5x).  Seeds are chunked so ``-x`` failures name
a narrow seed range and chunks parallelize under ``pytest -n``.
"""

from __future__ import annotations

import random

import pytest

from repro.decidability import classify_path_problem
from repro.decidability.paths import CONSTANT as PATH_CONSTANT
from repro.graphs.core import HalfEdgeLabeling
from repro.graphs.generators import random_tree
from repro.lcl.checker import brute_force_solution
from repro.lcl.random_problems import random_lcl, solvable_random_lcl
from repro.roundelim.gap import speedup
from repro.utils import env
from repro.utils.multiset import label_sort_key
from repro.verify import Certificate, check_certificate

pytestmark = pytest.mark.fuzz

#: Total number of plain random problems driven through the pipeline.
CONFORMANCE_COUNT = int(env.get_int("REPRO_CONFORMANCE_COUNT") or 200)
#: Planted positive controls (scales with the main population).
PLANTED_COUNT = max(20, CONFORMANCE_COUNT // 5)
#: Seeds per parametrized chunk: small enough that a failing chunk names
#: a narrow seed range, large enough to amortize collection overhead.
CHUNK = 25


def _chunks(count: int):
    return [
        pytest.param(start, min(start + CHUNK, count), id=f"seeds{start}-{min(start + CHUNK, count) - 1}")
        for start in range(0, count, CHUNK)
    ]


def _generator_for(seed: int):
    """Deterministic variety: inputs and degree 3 each cover ~1/5 of seeds."""
    if seed % 5 == 3:
        return lambda s: random_lcl(s, num_inputs=2)
    if seed % 5 == 4:
        return lambda s: random_lcl(s, max_degree=3, density=0.5)
    return random_lcl


def _conform(problem, *, expect_constant: bool = False, seed: int = 0):
    """One problem through the pipeline; certificate + cross-validation."""
    from repro.utils.budget import Budget

    # The budget never fires on the tiny planted controls (their 0-round
    # check succeeds at step 0); for the rare random seed whose f^2
    # alphabet explodes it degrades the walk to a certified ``unknown``.
    result = speedup(problem, max_steps=2, budget=Budget(max_configs=5_000))
    if expect_constant:
        assert result.status == "constant" and result.constant_rounds == 0, (
            f"positive control {problem.name} came back "
            f"{result.verdict_label()} instead of constant/0 rounds"
        )

    certificate = result.certify(trials=2, seed=seed)
    text = certificate.to_json()
    reparsed = Certificate.from_json(text)
    assert reparsed.to_json() == text, f"{problem.name}: round trip not bit-identical"
    outcome = check_certificate(reparsed)
    assert outcome.ok, f"{problem.name}: certificate rejected: {outcome.errors}"

    if result.status != "constant":
        return

    # Oracle 1 — automaton classification on directed paths: O(1) on
    # trees implies O(1) on directed paths (orientation is extra
    # information, never less).  The automaton stack only speaks
    # input-free problems of degree >= 2.
    if not problem.has_inputs and problem.max_degree >= 2:
        classification = classify_path_problem(problem)
        assert classification.complexity == PATH_CONSTANT, (
            f"{problem.name}: gap pipeline says constant but the path "
            f"automaton says {classification.complexity}: "
            f"{classification.explanation}"
        )

    # Oracle 2 — brute force on a small fresh instance: a constant-time
    # solvable problem has a valid labeling on *every* instance, and the
    # exhaustive solver decides that exactly.
    if problem.max_degree >= 2:
        instance = random_tree(6, problem.max_degree, seed=seed)
        rng = random.Random(seed)
        inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
        inputs = HalfEdgeLabeling(
            instance, {h: rng.choice(inputs_sorted) for h in instance.half_edges()}
        )
        solution = brute_force_solution(problem, instance, inputs)
        assert solution is not None, (
            f"{problem.name}: gap pipeline says constant but brute force "
            f"finds no solution on a 6-node tree (seed {seed})"
        )


@pytest.mark.parametrize(("start", "stop"), _chunks(CONFORMANCE_COUNT))
def test_random_problem_conformance(start, stop):
    for seed in range(start, stop):
        _conform(_generator_for(seed)(seed), seed=seed)


@pytest.mark.parametrize(("start", "stop"), _chunks(PLANTED_COUNT))
def test_planted_positive_controls(start, stop):
    for seed in range(start, stop):
        _conform(solvable_random_lcl(seed), expect_constant=True, seed=seed)
        if seed % 3 == 0:
            _conform(
                solvable_random_lcl(seed, num_inputs=2),
                expect_constant=True,
                seed=seed,
            )


def test_full_catalog_conformance():
    from repro.cli import CATALOG
    from repro.utils.budget import Budget

    for name, (builder, _) in sorted(CATALOG.items()):
        problem = builder(None)
        # The step bound and configuration budget keep alphabet-exploding
        # problems (e.g. 3-coloring past f^1) fast: they degrade to a
        # certified anytime ``unknown`` instead of walking a 100k-label
        # step.  max_steps=2 still reaches every constant verdict in the
        # catalog (echo2 is the deepest at 2 rounds) and the sinkless
        # fixed point at step 1.
        result = speedup(problem, max_steps=2, budget=Budget(max_configs=5_000))
        certificate = result.certify(trials=2)
        reparsed = Certificate.from_json(certificate.to_json())
        assert reparsed.to_json() == certificate.to_json()
        outcome = check_certificate(reparsed)
        assert outcome.ok, f"{name}: {outcome.errors}"


def test_conformance_population_is_as_declared():
    """The harness must not silently shrink: chunking covers the full
    configured population exactly once."""
    covered = set()
    for param in _chunks(CONFORMANCE_COUNT):
        start, stop = param.values
        covered.update(range(start, stop))
    assert covered == set(range(CONFORMANCE_COUNT))
