"""Planted-violation fixtures for the interprocedural rules
(REP010/REP011/REP012) and the dataflow engine behind them.

The headline test plants a taint flow through **three intermediate
calls across three modules** — every hop individually innocent — and
asserts both halves of the claim:

* REP010 reports it, anchored at the sink line, with the full witness
  chain naming every module it crossed;
* the single-pass rules (REP002 among them) report **nothing** on the
  same tree, proving the flow is invisible without whole-program
  propagation.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_lint


def write_tree(tmp_path: Path, files: dict) -> None:
    """Write a package tree of fixture modules."""
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        parent = path.parent
        while parent != tmp_path:
            (parent / "__init__.py").touch(exist_ok=True)
            parent = parent.parent
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def lint(tmp_path: Path, **kwargs):
    return run_lint([tmp_path], root=tmp_path, use_cache=False, **kwargs)


def by_code(result, code):
    return [f for f in result.findings if f.rule == code]


# ---------------------------------------------------------------- REP010
#: A taint flow with three intermediate calls spanning three modules:
#: sample() (RNG origin, pkg/source.py)
#:   -> relay_one -> relay_two (pkg/plumbing.py)
#:     -> publish (pkg/codec.py) -> encode_row (the sink, same module).
DEEP_FLOW = {
    "pkg/source.py": """
        import random

        def sample():
            return random.random()
    """,
    "pkg/plumbing.py": """
        from pkg.source import sample

        def relay_one():
            return relay_two()

        def relay_two():
            return sample()
    """,
    "pkg/codec.py": """
        from pkg.plumbing import relay_one

        def encode_row(row):
            return repr(row).encode()

        def publish(out):
            value = relay_one()
            out.append(encode_row(value))
    """,
}


class TestDeepTaintFlow:
    def test_rep010_catches_three_hop_cross_module_flow(self, tmp_path):
        write_tree(tmp_path, DEEP_FLOW)
        result = lint(tmp_path)
        hits = by_code(result, "REP010")
        assert hits, "REP010 missed the 3-hop cross-module flow"
        hit = hits[0]
        # Anchored at the sink call line in codec.py.
        assert hit.path == "pkg/codec.py"
        assert "encode_row" in hit.message
        assert "unseeded-rng" in hit.message
        # The witness chain names every module the value crossed.
        for fragment in ("source.py", "plumbing.py", "codec.py"):
            assert fragment in hit.message, hit.message

    def test_single_pass_rules_provably_miss_it(self, tmp_path):
        """Every hop is innocent in isolation: with REP010 disabled, the
        remaining (single-pass) rules report nothing — REP002 never sees
        a set in the codec module, REP001 exempts nothing here because
        the RNG call is flagged... unless the fixture hides it the way
        real code does."""
        write_tree(tmp_path, DEEP_FLOW)
        result = lint(tmp_path, disable=["REP010", "REP001"])
        # REP001 would flag the bare random.random() *at its origin*;
        # everything else — including REP002, which owns ordered-output
        # modules like codec.py — is blind to the flow.
        assert result.findings == [], [f.render() for f in result.findings]

    def test_rep002_alone_misses_it_even_in_the_codec_module(self, tmp_path):
        write_tree(tmp_path, DEEP_FLOW)
        result = lint(tmp_path, select=["REP002"])
        assert result.findings == []

    def test_set_order_taint_through_returns(self, tmp_path):
        """Order taint born by materializing a helper's set return two
        calls away from the sink."""
        write_tree(
            tmp_path,
            {
                "pkg/helpers.py": """
                    def fan_out(rows):
                        return {r.strip() for r in rows}

                    def collect(rows):
                        return list(fan_out(rows))
                """,
                "pkg/encode.py": """
                    from pkg.helpers import collect

                    def encode_payload(payload):
                        return "|".join(payload).encode()

                    def publish(rows):
                        return encode_payload(collect(rows))
                """,
            },
        )
        result = lint(tmp_path)
        hits = by_code(result, "REP010")
        assert hits, "order taint through returns was missed"
        assert hits[0].path == "pkg/encode.py"
        assert "set-order" in hits[0].message

    def test_sorted_launders_the_callee_return(self, tmp_path):
        """sorted() around the unordered-returning helper kills the
        flow, including the taint latent in the callee's summary."""
        write_tree(
            tmp_path,
            {
                "pkg/helpers.py": """
                    def fan_out(rows):
                        return {r.strip() for r in rows}

                    def collect(rows):
                        return sorted(fan_out(rows))
                """,
                "pkg/encode.py": """
                    from pkg.helpers import collect

                    def encode_payload(payload):
                        return "|".join(payload).encode()

                    def publish(rows):
                        return encode_payload(collect(rows))
                """,
            },
        )
        result = lint(tmp_path)
        assert by_code(result, "REP010") == []

    def test_sink_line_suppression_silences_the_whole_chain(self, tmp_path):
        """One suppression at the sink call silences a flow whose origin
        lives two modules away (the satellite-4 contract)."""
        files = dict(DEEP_FLOW)
        files["pkg/codec.py"] = """
            from pkg.plumbing import relay_one

            def encode_row(row):
                return repr(row).encode()

            def publish(out):
                value = relay_one()
                out.append(encode_row(value))  # repro-lint: disable=REP010 -- audited
        """
        write_tree(tmp_path, files)
        result = lint(tmp_path, select=["REP010"])
        assert result.findings == []
        assert result.suppressed >= 1

    def test_environ_taint_via_os_getenv(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/cfg.py": """
                    import os

                    def ambient():
                        return os.getenv("HOSTNAME_SALT")
                """,
                "pkg/journal.py": """
                    from pkg.cfg import ambient

                    def write_entry(journal):
                        journal.append(ambient())
                """,
            },
        )
        result = lint(tmp_path, select=["REP010"])
        hits = by_code(result, "REP010")
        assert hits and "environ" in hits[0].message
        assert hits[0].path == "pkg/journal.py"

    def test_argument_flow_into_sink_parameter(self, tmp_path):
        """Taint passed *down* through arguments into a function whose
        parameter feeds the sink (the dual of the return direction)."""
        write_tree(
            tmp_path,
            {
                "pkg/writer.py": """
                    def record_value(journal, value):
                        journal.append(value)
                """,
                "pkg/caller.py": """
                    import time
                    from pkg.writer import record_value

                    def stamp(journal):
                        record_value(journal, time.time())
                """,
            },
        )
        result = lint(tmp_path, select=["REP010"])
        hits = by_code(result, "REP010")
        assert hits, "argument-direction flow was missed"
        assert hits[0].path == "pkg/writer.py"
        assert "wall-clock" in hits[0].message
        # The chain names the caller that introduced the taint.
        assert "caller.py" in hits[0].message


# ---------------------------------------------------------------- REP011
class TestForkSafety:
    def test_global_mutation_behind_worker_fires(self, tmp_path):
        """The worker itself is clean; a helper it calls mutates a
        module global — only reachability analysis sees it."""
        write_tree(
            tmp_path,
            {
                "pkg/state.py": """
                    _MEMO = {}

                    def remember(key, value):
                        _MEMO[key] = value
                        return value
                """,
                "pkg/workers.py": """
                    from pkg.state import remember

                    def chunk_worker(chunk):
                        return [remember(c, c * 2) for c in chunk]

                    def fan_out(chunks):
                        return _run_chunks(chunks, chunk_worker, serial, workers=4)

                    def serial(chunks):
                        return [chunk_worker(c) for c in chunks]

                    def _run_chunks(chunks, worker_fn, serial_fn, workers):
                        return serial_fn(chunks)
                """,
            },
        )
        result = lint(tmp_path, select=["REP011"])
        hits = by_code(result, "REP011")
        assert hits, "fork-reachable global mutation was missed"
        assert hits[0].path == "pkg/state.py"
        assert "_MEMO" in hits[0].message
        # The chain explains *why* state.py counts as worker-side.
        assert "chunk_worker" in hits[0].message

    def test_unpicklable_global_read_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/locked.py": """
                    import threading

                    _LOCK = threading.Lock()

                    def guarded(x):
                        with _LOCK:
                            return x + 1
                """,
                "pkg/workers.py": """
                    from pkg.locked import guarded

                    def chunk_worker(chunk):
                        return [guarded(c) for c in chunk]

                    def fan_out(chunks):
                        return _run_chunks(chunks, chunk_worker, None, workers=2)

                    def _run_chunks(chunks, worker_fn, serial_fn, workers):
                        return worker_fn(chunks)
                """,
            },
        )
        result = lint(tmp_path, select=["REP011"])
        hits = by_code(result, "REP011")
        assert hits and "_LOCK" in hits[0].message
        assert hits[0].path == "pkg/locked.py"

    def test_parent_scoped_knob_read_in_runner_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/cells.py": """
                    def register_runner(name):
                        def deco(fn):
                            return fn
                        return deco
                """,
                "pkg/runner.py": """
                    from pkg.cells import register_runner
                    from repro.utils import env

                    @register_runner("probe")
                    def probe_cell(spec):
                        budget = env.get_float("REPRO_CELL_TIMEOUT")
                        return budget
                """,
            },
        )
        result = lint(tmp_path, select=["REP011"])
        hits = by_code(result, "REP011")
        assert hits, "parent-scoped knob read in a cell runner was missed"
        assert "REPRO_CELL_TIMEOUT" in hits[0].message
        assert hits[0].path == "pkg/runner.py"

    def test_clean_worker_stays_silent(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/workers.py": """
                    def chunk_worker(chunk):
                        return [c * 2 for c in chunk]

                    def fan_out(chunks):
                        return _run_chunks(chunks, chunk_worker, None, workers=2)

                    def _run_chunks(chunks, worker_fn, serial_fn, workers):
                        return worker_fn(chunks)
                """,
            },
        )
        result = lint(tmp_path, select=["REP011"])
        assert result.findings == []

    def test_any_scoped_knob_read_is_fine_in_worker(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/workers.py": """
                    from repro.utils import env

                    def chunk_worker(chunk):
                        if env.get_bool("REPRO_BITSET"):
                            return chunk
                        return list(chunk)

                    def fan_out(chunks):
                        return _run_chunks(chunks, chunk_worker, None, workers=2)

                    def _run_chunks(chunks, worker_fn, serial_fn, workers):
                        return worker_fn(chunks)
                """,
            },
        )
        result = lint(tmp_path, select=["REP011"])
        assert result.findings == []


# ---------------------------------------------------------------- REP012
class TestEngineFreeCalls:
    def test_lazy_engine_import_in_checker_fires(self, tmp_path):
        """The exact gap REP003 cannot close: a function-level import of
        the engine inside a checker function, executed when checking."""
        write_tree(
            tmp_path,
            {
                "roundelim/ops.py": """
                    def apply_round(problem):
                        return problem
                """,
                "verify/checker.py": """
                    def check_certificate(cert):
                        from roundelim.ops import apply_round
                        return apply_round(cert) == cert
                """,
            },
        )
        result = lint(tmp_path, select=["REP003", "REP012"])
        assert by_code(result, "REP003") == [], "REP003 must stay blind to lazy imports"
        hits = by_code(result, "REP012")
        assert hits, "REP012 missed the lazy engine call"
        assert hits[0].path == "verify/checker.py"
        assert "apply_round" in hits[0].message

    def test_transitive_engine_call_fires(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "roundelim/ops.py": """
                    def apply_round(problem):
                        return problem
                """,
                "verify/helpers.py": """
                    def recompute(cert):
                        from roundelim.ops import apply_round
                        return apply_round(cert)
                """,
                "verify/checker.py": """
                    from verify.helpers import recompute

                    def check_certificate(cert):
                        return recompute(cert) == cert
                """,
            },
        )
        result = lint(tmp_path, select=["REP012"])
        hits = by_code(result, "REP012")
        assert hits
        paths = {h.path for h in hits}
        assert "verify/checker.py" in paths or "verify/helpers.py" in paths

    def test_producer_module_is_sanctioned(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "roundelim/ops.py": """
                    def apply_round(problem):
                        return problem
                """,
                "verify/certify.py": """
                    def make_certificate(problem):
                        from roundelim.ops import apply_round
                        return apply_round(problem)
                """,
            },
        )
        result = lint(tmp_path, select=["REP012"])
        assert result.findings == []

    def test_engine_free_checker_stays_silent(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "verify/checker.py": """
                    def check_certificate(cert):
                        return cert.digest == cert.claimed
                """,
            },
        )
        result = lint(tmp_path, select=["REP012"])
        assert result.findings == []


# ------------------------------------------------------- engine internals
class TestResolution:
    def test_reexport_suffix_resolution(self, tmp_path):
        """A call through a package re-export resolves to the defining
        submodule (unique-suffix fallback)."""
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": """
                    from pkg.codec import encode_row
                """,
                "pkg/codec.py": """
                    def encode_row(row):
                        return repr(row).encode()
                """,
                "pkg/app.py": """
                    import random
                    from pkg import encode_row

                    def publish():
                        return encode_row(random.random())
                """,
            },
        )
        result = lint(tmp_path, select=["REP010"])
        hits = by_code(result, "REP010")
        assert hits, "re-exported sink call did not resolve"
        # Anchored at the sink *call site*; the resolved defining module
        # shows up in the sink name.
        assert hits[0].path == "pkg/app.py"
        assert "pkg.codec.encode_row" in hits[0].message

    def test_scaffolding_is_exempt(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "tests/test_helpers.py": """
                    import random

                    def encode_row(row):
                        return repr(row).encode()

                    def test_roundtrip(journal):
                        journal.append(encode_row(random.random()))
                """,
            },
        )
        result = lint(tmp_path, select=["REP010", "REP011"])
        assert result.findings == []

    def test_mutual_recursion_terminates(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/loop.py": """
                    import random

                    def ping(n):
                        if n <= 0:
                            return random.random()
                        return pong(n - 1)

                    def pong(n):
                        return ping(n)
                """,
                "pkg/encode.py": """
                    from pkg.loop import ping

                    def encode_value(v):
                        return repr(v).encode()

                    def publish():
                        return encode_value(ping(3))
                """,
            },
        )
        result = lint(tmp_path, select=["REP010"])
        hits = by_code(result, "REP010")
        assert hits, "taint through mutual recursion was lost"
        assert "unseeded-rng" in hits[0].message
