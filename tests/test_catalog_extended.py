"""Tests for the extended catalog: echo chains and edge coloring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemDefinitionError
from repro.graphs import HalfEdgeLabeling, cycle, path, star
from repro.lcl import catalog, is_valid_solution
from repro.lcl.checker import brute_force_solution
from repro.roundelim.gap import speedup, verify_on_random_forests

NO = catalog.NO_INPUT


def no_inputs(graph):
    return HalfEdgeLabeling.constant(graph, NO)


class TestEchoChain:
    def test_depth_zero_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            catalog.echo_chain(0)

    def test_label_counts(self):
        assert len(catalog.echo_chain(1).sigma_out) == 4
        assert len(catalog.echo_chain(2).sigma_out) == 12
        assert len(catalog.echo_chain(3).sigma_out) == 36

    def test_depth_three_matches_echo2(self):
        # echo_chain(3) and echo2 are the same problem up to label names.
        assert catalog.echo_chain(3).is_isomorphic(catalog.echo2())

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_solvable_on_paths(self, depth):
        problem = catalog.echo_chain(depth)
        graph = path(5)
        inputs = HalfEdgeLabeling(
            graph, {h: str((h[0] + h[1]) % 2) for h in graph.half_edges()}
        )
        solution = brute_force_solution(problem, graph, inputs)
        assert solution is not None
        assert is_valid_solution(problem, graph, inputs, solution)

    def test_chain_semantics_on_a_path(self):
        # On 0-1-2-3 with node-constant inputs, v2 on (1, toward 0) names
        # node 2's input and v1 names node 0's input.
        problem = catalog.echo_chain(2)
        graph = path(4)
        node_inputs = ["0", "1", "1", "0"]
        inputs = HalfEdgeLabeling.from_node_labels(graph, node_inputs)
        solution = brute_force_solution(problem, graph, inputs)
        assert solution is not None
        label = solution[(1, 0)]  # node 1, port toward node 0
        assert label[0] == "1"  # own input
        assert label[1] == "0"  # opposite (node 0)
        assert label[2] == "1"  # other port's opposite (node 2)

    @pytest.mark.parametrize("depth, expected_rounds", [(1, 1), (2, 1), (3, 2), (4, 2)])
    def test_pipeline_finds_ceil_half_depth(self, depth, expected_rounds):
        result = speedup(catalog.echo_chain(depth), max_steps=4, max_universe=8192)
        assert result.status == "constant"
        assert result.constant_rounds == expected_rounds

    def test_pipeline_verifies_depth_four(self):
        result = speedup(catalog.echo_chain(4), max_steps=3, max_universe=8192)
        assert verify_on_random_forests(result, component_sizes=(7, 4, 1), trials=3)


class TestEdgeColoring:
    def test_valid_on_star(self):
        problem = catalog.edge_coloring(3, max_degree=3)
        graph = star(3)
        outputs = HalfEdgeLabeling(graph)
        for port in range(3):
            outputs[(0, port)] = f"e{port}"
            outputs[(port + 1, 0)] = f"e{port}"
        assert is_valid_solution(problem, graph, no_inputs(graph), outputs)

    def test_repeated_color_at_node_fails(self):
        problem = catalog.edge_coloring(3, max_degree=3)
        graph = star(2)
        outputs = HalfEdgeLabeling.constant(graph, "e0")
        assert not is_valid_solution(problem, graph, no_inputs(graph), outputs)

    def test_mismatched_edge_fails(self):
        problem = catalog.edge_coloring(3, max_degree=2)
        graph = path(2)
        outputs = HalfEdgeLabeling(graph, {(0, 0): "e0", (1, 0): "e1"})
        assert not is_valid_solution(problem, graph, no_inputs(graph), outputs)

    def test_three_colors_solvable_on_cycles(self):
        problem = catalog.edge_coloring(3, max_degree=2)
        solution = brute_force_solution(problem, cycle(5), no_inputs(cycle(5)))
        assert solution is not None

    def test_two_colors_unsolvable_on_odd_cycles(self):
        problem = catalog.edge_coloring(2, max_degree=2)
        assert brute_force_solution(problem, cycle(5), no_inputs(cycle(5))) is None

    def test_cycle_classification(self):
        from repro.decidability import classify_cycle_problem

        assert (
            classify_cycle_problem(catalog.edge_coloring(3, 2)).complexity
            == "Theta(log* n)"
        )
        assert (
            classify_cycle_problem(catalog.edge_coloring(2, 2)).complexity
            == "Theta(n)"
        )

    def test_not_zero_round_solvable(self):
        from repro.roundelim.zero_round import find_zero_round_algorithm

        assert find_zero_round_algorithm(catalog.edge_coloring(5, 3)) is None

    def test_too_few_colors_forbids_high_degrees(self):
        problem = catalog.edge_coloring(2, max_degree=3)
        # A degree-3 node cannot receive 3 distinct colors from 2.
        assert problem.node_constraints[3] == frozenset()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=3, max_value=8))
    def test_property_even_cycles_two_colorable(self, half):
        problem = catalog.edge_coloring(2, max_degree=2)
        graph = cycle(2 * half)
        solution = brute_force_solution(problem, graph, no_inputs(graph))
        assert solution is not None
