"""Fuzzing the reduced-universe machinery against brute-force ground truth.

The reduced universes are the engine's main performance lever; these
tests verify their defining properties on random problems:

* ``closed_universe``: closure is idempotent and extensive; every member
  really is closed; the universe is union-closed (up to closure);
* ``box_components`` (degree 2 via the concept lattice): every component
  pairs into a genuine box, and every allowed pair configuration embeds
  into some maximal box — the completeness property the R̄ reduction
  rests on.
"""

import itertools

import pytest

from repro.lcl import random_lcl
from repro.roundelim.universe import (
    box_components,
    closed_universe,
    edge_partners,
    reduced_universe,
)
from repro.utils.multiset import Multiset

SEEDS = list(range(15))


def closure_map(problem):
    """Re-derive the closure operator used by ``closed_universe``."""
    from repro.roundelim.universe import _closure, _g_images

    partners = edge_partners(problem)
    g_images = _g_images(problem)

    def close(subset):
        return _closure(frozenset(subset), partners, g_images, problem.sigma_out)

    return close


@pytest.mark.parametrize("seed", SEEDS)
class TestClosedUniverse:
    def _problem(self, seed):
        return random_lcl(seed, num_labels=4, max_degree=2, num_inputs=2)

    def test_members_are_closed(self, seed):
        problem = self._problem(seed)
        close = closure_map(problem)
        for member in closed_universe(problem, max_universe=4096):
            assert close(member) == member

    def test_closure_is_extensive_and_idempotent(self, seed):
        # Extensivity/idempotence hold on *usable* subsets (those below
        # some g-image); unusable subsets close to the empty set, which
        # the universe generator filters out up front.
        problem = self._problem(seed)
        close = closure_map(problem)
        g_images = list(problem.g.values())
        labels = sorted(problem.sigma_out, key=str)
        for size in (1, 2):
            for subset in itertools.combinations(labels, size):
                subset = frozenset(subset)
                if not any(subset <= image for image in g_images):
                    assert close(subset) == frozenset()
                    continue
                closed = close(subset)
                assert subset <= closed
                assert close(closed) == closed

    def test_every_usable_subset_closes_into_universe(self, seed):
        problem = self._problem(seed)
        close = closure_map(problem)
        universe = set(closed_universe(problem, max_universe=4096))
        g_images = list(problem.g.values())
        labels = sorted(problem.sigma_out, key=str)
        for size in range(1, len(labels) + 1):
            for subset in itertools.combinations(labels, size):
                subset = frozenset(subset)
                if not any(subset <= image for image in g_images):
                    continue
                assert close(subset) in universe


@pytest.mark.parametrize("seed", SEEDS)
class TestBoxComponents:
    def _problem(self, seed):
        return random_lcl(seed + 900, num_labels=4, max_degree=2, num_inputs=1)

    def test_components_pair_into_boxes(self, seed):
        problem = self._problem(seed)
        components = box_components(problem, degree=2, max_boxes=4096)
        for component in components:
            # The concept-lattice mate of a component is its Galois image;
            # verify at least one co-component makes an all-allowed box.
            mates = [
                other
                for other in components
                if all(
                    problem.allows_node(Multiset((x, y)))
                    for x in component
                    for y in other
                )
            ]
            assert mates or all(
                not problem.allows_node(Multiset((x, y)))
                for x in component
                for y in problem.sigma_out
            )

    def test_every_allowed_pair_lies_in_a_box(self, seed):
        problem = self._problem(seed)
        components = box_components(problem, degree=2, max_boxes=4096)
        for configuration in problem.node_constraints.get(2, ()):
            a, b = configuration.items
            assert any(
                a in first and b in second
                and all(
                    problem.allows_node(Multiset((x, y)))
                    for x in first
                    for y in second
                )
                for first in components
                for second in components
            ), (a, b)

    def test_degree_one_component(self, seed):
        problem = self._problem(seed)
        components = box_components(problem, degree=1, max_boxes=4096)
        if components:
            (component,) = components
            for label in component:
                assert problem.allows_node([label])


class TestReducedUniverseGeneral:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_reduced_universe_members_usable(self, seed):
        problem = random_lcl(seed, num_labels=4, max_degree=2, num_inputs=2)
        g_images = list(problem.g.values())
        for member in reduced_universe(problem, max_universe=4096):
            assert any(member <= image for image in g_images)
