"""The certification subsystem: codec, envelope, evidence, import boundary.

Covers the problem codec round trip, bit-identical certificate
serialization, tamper detection, one certificate of each kind checked by
the engine-free checker, dishonest-evidence rejection, and — from a
fresh interpreter — the guarantee that checking never imports the
round-elimination engine.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.exceptions import BruteForceLimitError, CertificateError
from repro.graphs.generators import path
from repro.graphs.core import HalfEdgeLabeling
from repro.lcl import catalog
from repro.lcl.checker import brute_force_solution, check_solution
from repro.lcl.codec import (
    decode_label,
    decode_problem,
    encode_label,
    encode_problem,
    problem_digest,
)
from repro.lcl.random_problems import random_lcl, solvable_random_lcl
from repro.roundelim.gap import speedup
from repro.verify import Certificate, check_certificate
from repro.verify.refute import build_refutation, check_refutation


# ------------------------------------------------------------------- codec
@pytest.mark.parametrize(
    "label",
    [
        "A",
        7,
        True,
        False,
        None,
        ("pair", 1),
        frozenset({"x", "y"}),
        frozenset({frozenset({"a"}), frozenset({"b", "c"})}),  # R̄∘R-style nesting
        ("mixed", frozenset({1, 2}), None),
    ],
)
def test_label_codec_round_trip(label):
    assert decode_label(encode_label(label)) == label


def test_label_codec_distinguishes_bool_from_int():
    assert decode_label(encode_label(True)) is True
    assert decode_label(encode_label(1)) == 1
    assert encode_label(True) != encode_label(1)


def test_label_codec_rejects_unsupported_types():
    with pytest.raises(CertificateError):
        encode_label(object())


@pytest.mark.parametrize(
    "problem",
    [
        catalog.echo(3),
        catalog.sinkless_orientation(3),
        catalog.mis(3),
        random_lcl(11, num_inputs=2),
        solvable_random_lcl(5, num_inputs=2),
    ],
)
def test_problem_codec_round_trip(problem):
    rebuilt = decode_problem(encode_problem(problem))
    assert rebuilt == problem
    assert rebuilt.name == problem.name
    assert problem_digest(rebuilt) == problem_digest(problem)


def test_problem_digest_is_sensitive():
    a, b = catalog.echo(3), catalog.echo(4)
    assert problem_digest(a) != problem_digest(b)


# ---------------------------------------------------------------- envelope
def test_certificate_json_round_trip_is_bit_identical():
    result = speedup(catalog.echo(3), max_steps=2)
    certificate = result.certify(trials=2)
    text = certificate.to_json()
    again = Certificate.from_json(text)
    assert again.to_json() == text
    assert Certificate.from_json(again.to_json()).to_json() == text


def test_certificate_save_load(tmp_path):
    certificate = speedup(catalog.trivial(3), max_steps=1).certify(trials=1)
    target = tmp_path / "cert.json"
    certificate.save(target)
    loaded = Certificate.load(target)
    assert loaded.to_json() == certificate.to_json()
    assert check_certificate(target).ok


def test_certificate_detects_tampering(tmp_path):
    certificate = speedup(catalog.echo(3), max_steps=2).certify(trials=1)
    target = tmp_path / "cert.json"
    certificate.save(target)
    envelope = json.loads(target.read_text())
    envelope["body"]["rounds"] = 0
    target.write_text(json.dumps(envelope))
    outcome = check_certificate(target)
    assert not outcome.ok
    assert any("checksum" in error for error in outcome.errors)
    with pytest.raises(CertificateError):
        Certificate.load(target)


def test_checker_never_raises_on_garbage(tmp_path):
    target = tmp_path / "junk.json"
    target.write_text("{definitely not json")
    assert not check_certificate(target).ok
    assert not check_certificate(tmp_path / "missing.json").ok
    body = {"schema": 99, "kind": "constant", "problem": {}}
    from repro.verify.certificate import body_checksum

    target.write_text(json.dumps({"body": body, "checksum": body_checksum(body)}))
    outcome = check_certificate(target)
    assert not outcome.ok


# ------------------------------------------------------------- three kinds
def test_constant_certificate_accepted():
    result = speedup(catalog.echo(3), max_steps=2)
    assert result.status == "constant"
    certificate = result.certify(trials=2)
    outcome = check_certificate(certificate)
    assert outcome.ok, outcome.errors
    assert certificate.kind == "constant"
    assert certificate.body["rounds"] == result.constant_rounds
    assert outcome.counts["trials"] == 2
    assert outcome.counts["table_rules"] > 0


def test_fixed_point_certificate_accepted():
    result = speedup(catalog.sinkless_orientation(3), max_steps=3)
    assert result.status == "fixed-point"
    certificate = result.certify()
    outcome = check_certificate(certificate)
    assert outcome.ok, outcome.errors
    assert outcome.counts["refutation_steps"] == result.fixed_point_at + 1


def test_unknown_certificate_accepted():
    result = speedup(catalog.two_coloring(2), max_steps=2)
    assert result.status == "unknown"
    certificate = result.certify()
    outcome = check_certificate(certificate)
    assert outcome.ok, outcome.errors
    assert outcome.counts["refutation_steps"] == result.unknown_since_step


def test_verdict_certify_delegates_to_gap_result():
    from repro.decidability.constant_time import semidecide_constant_time
    from repro.verify import certify_verdict

    verdict = semidecide_constant_time(catalog.echo(3), max_steps=2)
    certificate = certify_verdict(verdict, trials=1)
    assert check_certificate(certificate).ok


# -------------------------------------------------------- dishonest bodies
def _mutated(certificate: Certificate, mutate) -> Certificate:
    body = json.loads(json.dumps(certificate.body))
    mutate(body)
    return Certificate(body)


def test_checker_rejects_wrong_transcript_outputs():
    certificate = speedup(catalog.echo(3), max_steps=2).certify(trials=1)

    def corrupt(body):
        trial = body["transcript"]["trials"][0]
        v, port, _ = trial["outputs"][0]
        other = trial["outputs"][1][2]
        trial["outputs"][0] = [v, port, other]

    outcome = check_certificate(_mutated(certificate, corrupt))
    # Either the outputs stop being a valid solution or (if the swap were
    # a no-op label-wise) the transcript still matches; force the former
    # by asserting the corrupted label differs.
    assert not outcome.ok


def test_checker_rejects_substituted_instances():
    certificate = speedup(catalog.echo(3), max_steps=2).certify(trials=2)

    def corrupt(body):
        body["transcript"]["trials"][0]["ids"][0] += 1

    outcome = check_certificate(_mutated(certificate, corrupt))
    assert not outcome.ok
    assert any("identifiers" in error for error in outcome.errors)


def test_checker_rejects_missing_refutation_step():
    certificate = speedup(catalog.two_coloring(2), max_steps=2).certify()

    def corrupt(body):
        body["prefix"].pop()

    outcome = check_certificate(_mutated(certificate, corrupt))
    assert not outcome.ok


def test_checker_rejects_false_exhaustion_claim():
    # A solvable problem can never carry a valid refutation: every clique
    # witness must survive re-exhaustion, and the covering clique cannot.
    solvable = catalog.trivial(3)
    unsolvable_witness = build_refutation(catalog.two_coloring(2))
    assert unsolvable_witness is not None
    errors = check_refutation(solvable, unsolvable_witness)
    assert errors


def test_refutation_none_for_solvable_problems():
    assert build_refutation(catalog.trivial(3)) is None
    assert build_refutation(catalog.echo(3)) is not None  # needs 1 round


# ----------------------------------------------------------- brute guard
def test_brute_force_guard_raises_typed_error():
    problem = catalog.trivial(2)
    graph = path(40)
    inputs = HalfEdgeLabeling.constant(graph, next(iter(problem.sigma_in)))
    with pytest.raises(BruteForceLimitError):
        brute_force_solution(problem, graph, inputs)
    # None disables the guard; the trivial problem solves instantly.
    assert brute_force_solution(problem, graph, inputs, max_nodes=None) is not None


def test_checker_failures_name_offender():
    problem = catalog.two_coloring(2)
    graph = path(3)
    inputs = HalfEdgeLabeling.constant(graph, next(iter(problem.sigma_in)))
    outputs = HalfEdgeLabeling.constant(graph, next(iter(problem.sigma_out)))
    report = check_solution(problem, graph, inputs, outputs)
    assert not report.is_valid
    assert report.failures
    rendered = str(report)
    # Localized diagnostics: the offending edge/node and the rejected
    # configuration both appear in the rendering.
    assert "edge" in rendered or "node" in rendered
    assert "configuration" in rendered


# ----------------------------------------------------------- import purity
def test_check_certificate_is_engine_free(tmp_path):
    """From a fresh interpreter: load + check a certificate, then assert
    the round-elimination engine and the decidability stack were never
    imported."""
    certificate = speedup(catalog.echo(3), max_steps=2).certify(trials=1)
    target = tmp_path / "cert.json"
    certificate.save(target)
    script = (
        "import sys\n"
        "from repro.verify import check_certificate\n"
        f"outcome = check_certificate({str(target)!r})\n"
        "assert outcome.ok, outcome.errors\n"
        "bad = [m for m in sys.modules"
        " if m.startswith(('repro.roundelim', 'repro.decidability'))]\n"
        "assert not bad, f'engine modules leaked into the checker: {bad}'\n"
        "print('ENGINE-FREE-OK')\n"
    )
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    assert "ENGINE-FREE-OK" in completed.stdout
