"""The linter must hold on the repository that ships it.

``repro-lint src/repro`` (and the test/benchmark/example trees) must
exit clean with no baseline, and the static REP003 verdict must agree
with the dynamic fresh-interpreter probe that
``tests/test_certificates.py`` runs.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def test_library_tree_is_lint_clean():
    result = run_lint([SRC / "repro"], root=REPO_ROOT)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.ok
    assert result.files_scanned > 50


def test_whole_repo_is_lint_clean():
    paths = [SRC, REPO_ROOT / "tests", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
    result = run_lint([p for p in paths if p.exists()], root=REPO_ROOT)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_repro_lint_cli_exits_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC / "repro"),
         "--root", str(REPO_ROOT)],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_static_and_dynamic_engine_free_checks_agree():
    """REP003 (static import graph) and the fresh-interpreter import probe
    (dynamic) guard the same contract; a tree that passes one must pass
    the other."""
    static = run_lint([SRC / "repro"], root=REPO_ROOT, select=["REP003"])
    static_clean = static.findings == []

    probe = (
        "import sys\n"
        "import repro.verify\n"
        "import repro.verify.check\n"
        "import repro.verify.transcript\n"
        "bad = [m for m in sys.modules\n"
        "       if m.startswith('repro.roundelim') or m.startswith('repro.decidability')]\n"
        "sys.exit(1 if bad else 0)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    dynamic_clean = proc.returncode == 0

    assert static_clean == dynamic_clean, (
        "static REP003 and the fresh-interpreter probe disagree: "
        f"static_clean={static_clean} dynamic_clean={dynamic_clean}\n"
        + "\n".join(f.render() for f in static.findings)
        + proc.stdout
        + proc.stderr
    )
    assert static_clean, "\n".join(f.render() for f in static.findings)
