"""Tests for the Lemma 3.3 forest wrapper and randomized failure notions."""

import pytest

from repro.exceptions import AlgorithmError, GraphError
from repro.graphs import (
    Graph,
    HalfEdgeLabeling,
    cycle,
    disjoint_union,
    path,
    random_forest,
    random_ids,
    random_tree,
    star,
)
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm
from repro.local.algorithms import LinialColoring
from repro.local.forests import ForestAlgorithm
from repro.local.model import LocalAlgorithm
from repro.local.randomized import RandomizedTrialColoring, estimate_local_failure

NO = catalog.NO_INPUT


def no_inputs(graph):
    return HalfEdgeLabeling.constant(graph, NO)


class TreesOnlyColoring(LinialColoring):
    """A Linial variant that *insists* it was promised a large tree.

    It refuses to run when its ball already contains its whole component
    — the situation that arises on forests but never on large trees.
    This models an algorithm whose correctness proof genuinely uses the
    tree promise, which is what Lemma 3.3 repairs.
    """

    def run(self, ctx):
        ball = ctx.ball(self.radius(ctx.declared_n))
        if all(len(ball.adj[v]) == ball.degrees[v] for v in range(ball.num_nodes)):
            raise AlgorithmError("promised a large tree, got a small component")
        return super().run(ctx)


class TestGraphFromPortMap:
    def test_roundtrip_port_structure(self):
        g = star(3)
        ports = [
            [(g.neighbor(v, p), g.neighbor_port(v, p)) for p in range(g.degree(v))]
            for v in range(g.num_nodes)
        ]
        rebuilt = Graph.from_port_map(ports)
        assert rebuilt.num_edges == g.num_edges
        for v, p in g.half_edges():
            assert rebuilt.neighbor(v, p) == g.neighbor(v, p)
            assert rebuilt.neighbor_port(v, p) == g.neighbor_port(v, p)

    def test_asymmetric_map_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_port_map([[(1, 0)], [(0, 5)]])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_port_map([[(0, 0)]])


class TestForestAlgorithm:
    def test_inner_fails_on_small_components(self):
        forest = random_forest([5, 3], max_degree=3, seed=2)
        with pytest.raises(AlgorithmError):
            run_local_algorithm(
                forest, TreesOnlyColoring(3), ids=random_ids(forest, seed=1)
            )

    def test_wrapper_repairs_small_components(self):
        problem = catalog.coloring(4, max_degree=3)
        forest = random_forest([5, 3, 1], max_degree=3, seed=2)
        wrapped = ForestAlgorithm(TreesOnlyColoring(3), problem)
        result = run_local_algorithm(
            forest, wrapped, ids=random_ids(forest, seed=1)
        )
        assert is_valid_solution(problem, forest, no_inputs(forest), result.outputs)

    def test_wrapper_also_valid_on_single_tree(self):
        problem = catalog.coloring(4, max_degree=3)
        tree = random_tree(14, max_degree=3, seed=4)
        wrapped = ForestAlgorithm(TreesOnlyColoring(3), problem)
        result = run_local_algorithm(tree, wrapped, ids=random_ids(tree, seed=2))
        assert is_valid_solution(problem, tree, no_inputs(tree), result.outputs)

    def test_large_component_branch_runs_inner(self):
        # With a radius-0 inner, components larger than ~2 nodes take the
        # fooled-inner branch; the trivial problem accepts any output.
        class ConstantInner(LocalAlgorithm):
            name = "constant-inner"

            def radius(self, n):
                return 0

            def run(self, ctx):
                return {p: "T" for p in range(ctx.degree)}

        problem = catalog.trivial(3)
        forest = disjoint_union([path(8), path(2)])
        wrapped = ForestAlgorithm(ConstantInner(), problem)
        result = run_local_algorithm(forest, wrapped, ids=random_ids(forest, seed=3))
        assert is_valid_solution(problem, forest, no_inputs(forest), result.outputs)

    def test_randomized_inner_rejected(self):
        class Coin(LocalAlgorithm):
            name = "coin"
            bits_per_node = 1

            def radius(self, n):
                return 0

            def run(self, ctx):
                return {}

        with pytest.raises(AlgorithmError):
            ForestAlgorithm(Coin(), catalog.trivial(2))

    def test_unsolvable_component_raises(self):
        from repro.exceptions import UnsolvableError

        class NeverRun(LocalAlgorithm):
            name = "never"

            def radius(self, n):
                return 1

            def run(self, ctx):  # pragma: no cover - small comps short-circuit
                raise AssertionError

        problem = catalog.two_coloring(2)
        odd = cycle(5)  # odd cycle: 2-coloring unsolvable; comp fits in ball
        wrapped = ForestAlgorithm(NeverRun(), problem)
        with pytest.raises(UnsolvableError):
            run_local_algorithm(odd, wrapped, ids=random_ids(odd, seed=5))


class TestRandomizedColoring:
    def test_deterministic_given_seed(self):
        graph = cycle(12)
        algorithm = RandomizedTrialColoring(2, trial_rounds=3)
        first = run_local_algorithm(graph, algorithm, ids=random_ids(graph, seed=1), seed=9)
        second = run_local_algorithm(graph, algorithm, ids=random_ids(graph, seed=1), seed=9)
        for h in graph.half_edges():
            assert first.outputs[h] == second.outputs[h]

    def test_decided_nodes_form_proper_coloring(self):
        graph = cycle(20)
        algorithm = RandomizedTrialColoring(2, trial_rounds=2)
        result = run_local_algorithm(graph, algorithm, ids=random_ids(graph, seed=2), seed=3)
        for u, pu, v, pv in graph.edges():
            a, b = result.outputs[(u, pu)], result.outputs[(v, pv)]
            if a != "cX" and b != "cX":
                assert a != b

    def test_local_failure_decays_with_rounds(self):
        graph = cycle(24)
        seeds = list(range(40))
        quick = estimate_local_failure(
            catalog.coloring(3, 2),
            graph,
            RandomizedTrialColoring(2, trial_rounds=1),
            seeds,
            ids=random_ids(graph, seed=7),
        )
        patient = estimate_local_failure(
            catalog.coloring(3, 2),
            graph,
            RandomizedTrialColoring(2, trial_rounds=6),
            seeds,
            ids=random_ids(graph, seed=7),
        )
        assert patient["local"] < quick["local"]

    def test_local_vs_global_failure_gap(self):
        # With few rounds on a large cycle: most trials fail *somewhere*
        # (global ~ 1) while each fixed location fails rarely (local small)
        # — exactly the distinction Definition 2.4 draws.
        graph = cycle(60)
        seeds = list(range(30))
        estimate = estimate_local_failure(
            catalog.coloring(3, 2),
            graph,
            RandomizedTrialColoring(2, trial_rounds=2),
            seeds,
            ids=random_ids(graph, seed=11),
        )
        assert estimate["global"] >= estimate["local"]
        # Nearly every trial fails somewhere on a 60-cycle, yet no fixed
        # location fails anywhere near that often.
        assert estimate["global"] >= 0.8
        assert estimate["local"] <= estimate["global"] - 0.2
