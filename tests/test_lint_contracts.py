"""Coverage tests for the shared sink/fork/engine contract registry.

``repro.analysis.contracts`` is the single source of truth for what the
rules consider a serialization sink, a fork boundary, or an engine
module.  These tests pin the registry against the *live tree*: every
serializing entrypoint the pipeline actually exposes must classify as a
sink (so REP010 cannot silently lose coverage when a module is renamed),
and the obvious non-sinks must not.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis import contracts

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The serialization surface REP010 guards, by qualname.  Adding a new
#: ordered-output entrypoint?  It belongs here *and* must classify.
KNOWN_SINKS = [
    "repro.lcl.codec.encode_label",
    "repro.lcl.codec.encode_problem",
    "repro.roundelim.canonical.canonical_order",
    "repro.roundelim.canonical.canonical_encoding",
    "repro.roundelim.canonical.canonical_hash",
    "repro.supervisor.journal.CampaignJournal.append_cell",
    "repro.roundelim.checkpoint.SequenceCheckpoint.save",
]

#: Same modules, read-side entrypoints: decoding/loading is not a sink.
KNOWN_NON_SINKS = [
    "repro.lcl.codec.decode_label",
    "repro.lcl.codec.decode_problem",
    "repro.supervisor.journal.CampaignJournal.load",
    "repro.roundelim.checkpoint.SequenceCheckpoint.load",
    "repro.graphs.generators.random_tree",  # sink verb shape needs an ordered-output module
]


class TestSinkRegistry:
    @pytest.mark.parametrize("qualname", KNOWN_SINKS)
    def test_known_serialization_entrypoints_classify(self, qualname):
        assert contracts.is_sink_function(qualname), qualname

    @pytest.mark.parametrize("qualname", KNOWN_NON_SINKS)
    def test_read_side_entrypoints_do_not_classify(self, qualname):
        assert not contracts.is_sink_function(qualname), qualname

    def test_known_sinks_exist_in_the_tree(self):
        """The pinned qualnames must stay real: a rename that orphans an
        entry here means REP010's coverage claim went stale."""
        for qualname in KNOWN_SINKS + [q for q in KNOWN_NON_SINKS if q.startswith("repro.")]:
            parts = qualname.split(".")
            assert parts[0] == "repro"
            found = False
            for split in range(1, len(parts)):
                module_path = SRC.joinpath(*parts[1:split]).with_suffix(".py")
                if not module_path.is_file():
                    continue
                tree = ast.parse(module_path.read_text(encoding="utf-8"))
                names = _defined_names(tree)
                if ".".join(parts[split:]) in names:
                    found = True
                    break
            assert found, f"{qualname} no longer exists under src/repro"

    def test_every_sink_verb_function_in_ordered_modules_classifies(self):
        """Drift guard: walk the tree; any public function whose *name*
        has a sink verb shape and whose module is ordered-output must be
        classified by :func:`contracts.is_sink_function`."""
        checked = 0
        for path in sorted(SRC.rglob("*.py")):
            rel = path.relative_to(SRC.parent)
            segments = [p for p in rel.with_suffix("").parts]
            stem = segments[-1]
            if not contracts.is_ordered_output_module(stem, segments):
                continue
            tree = ast.parse(path.read_text(encoding="utf-8"))
            module = ".".join(segments)
            for name in _defined_names(tree):
                leaf = name.rsplit(".", 1)[-1]
                if leaf.startswith("_") or not contracts.is_sink_name(leaf):
                    continue
                assert contracts.is_sink_function(f"{module}.{name}"), name
                checked += 1
        assert checked >= len(KNOWN_SINKS)

    def test_receiver_hint_sinks(self):
        assert contracts.sink_method_receiver(("self", "_journal"), "append")
        assert contracts.sink_method_receiver(("run_checkpoint",), "write")
        assert contracts.sink_method_receiver(("certificate",), "save")
        assert contracts.sink_method_receiver(("results",), "append") is None
        assert contracts.sink_method_receiver(("self", "_journal"), "tolist") is None


class TestModuleClassification:
    def test_ordered_output_stems(self):
        assert contracts.is_ordered_output_module("codec", ["repro", "lcl", "codec"])
        assert contracts.is_ordered_output_module("journal", ["repro", "supervisor", "journal"])
        assert not contracts.is_ordered_output_module("ops", ["repro", "roundelim", "ops"])

    def test_verify_package_is_ordered_output_throughout(self):
        assert contracts.is_ordered_output_module("bounds", ["repro", "verify", "bounds"])

    def test_engine_checker_producer_split(self):
        assert contracts.is_checker_module("repro.verify.certificate")
        assert not contracts.is_checker_module("repro.roundelim.ops")
        assert contracts.is_producer_module("repro.verify.certify")
        assert contracts.is_engine_module("repro.roundelim.ops")
        assert contracts.is_engine_module("repro.decidability.classifier")
        assert not contracts.is_engine_module("repro.lcl.problem")


class TestForkRegistry:
    def test_submit_slots_match_run_chunks_signature(self):
        """``_run_chunks(chunks, worker_fn, ..., initializer)``: the
        registered callable slots must match the real signature."""
        import inspect

        from repro.roundelim import ops

        sig = inspect.signature(ops._run_chunks)
        params = list(sig.parameters)
        slots = contracts.FORK_SUBMIT_NAMES["_run_chunks"]
        for slot in slots:
            assert slot < len(params)
        for keyword in contracts.FORK_SUBMIT_KEYWORDS:
            assert keyword in params, keyword

    def test_fork_entrypoints_exist(self):
        import importlib

        for suffix in contracts.FORK_ENTRYPOINT_SUFFIXES:
            module_path, name = suffix.rsplit(".", 1)
            module = importlib.import_module(f"repro.{module_path}")
            assert hasattr(module, name), suffix


def _defined_names(tree: ast.Module):
    """Top-level function names plus ``Class.method`` pairs."""
    names = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(f"{node.name}.{child.name}")
    return names
