"""Witness-equivalence harness for the SAT decision kernels.

The CNF engine (:mod:`repro.sat`) promises to be *witness-blind*:
flipping ``REPRO_SAT`` must never change a single byte of what the
decision kernels return.  This suite drives every catalog problem and a
seeded population of random LCLs through both engines and asserts

* identical 0-round verdicts, extracted cliques, and full ``A_det``
  rule tables (``==`` on the structures themselves);
* identical refutation payloads **and their certificate checksums** —
  the strongest end-to-end statement: the bytes a certificate signs are
  the same bytes regardless of which engine proposed them;
* the engine-free checkers (:func:`check_zero_round_table`,
  :func:`check_refutation`) accept whatever either engine produced;
* identical answers when the solver budget trips mid-decision — the
  dispatch falls back to enumeration, never to a different answer.

A second block pins the engine accounting (``sat_steps`` must tick when
the CNF path serves, ``sat_fallbacks`` when it declines), a third pins
the :func:`uncoverable_tuple` candidate hoist (one candidate list per
input label per clique, not one per port per enumerated tuple), and a
lint self-check keeps the encoder inside the REP002 ordered-output
audit.

The fuzz sweep scales with ``REPRO_SAT_DIFF_COUNT`` (default 100) and is
marked ``fuzz`` like the conformance harness, so tier-1 runs the catalog
and accounting tests while nightly jobs widen the population.
"""

import json

import pytest

from repro import sat
from repro.analysis import run_lint
from repro.lcl import catalog
from repro.lcl.catalog import standard_catalog
from repro.lcl.random_problems import random_lcl, solvable_random_lcl
from repro.roundelim.zero_round import decide_zero_round, find_zero_round_algorithm
from repro.utils import cache as operator_cache
from repro.utils import env
from repro.verify import refute
from repro.verify.certificate import body_checksum
from repro.verify.refute import (
    build_refutation,
    check_refutation,
    check_zero_round_table,
    self_looped_cliques,
    uncoverable_tuple,
)

CATALOG_PROBLEMS = [(p.name, p) for p in standard_catalog(max_degree=3)]

#: Fuzz population size (``REPRO_SAT_DIFF_COUNT``, default 100).
DIFF_COUNT = int(env.get_int("REPRO_SAT_DIFF_COUNT") or 100)
#: Seeds per parametrized fuzz chunk (narrow failure ranges, cheap collection).
CHUNK = 25


@pytest.fixture(autouse=True)
def fresh_engine():
    """Zeroed counters; the engine restored to the env knob afterwards."""
    operator_cache.reset()
    operator_cache.reset_stats()
    sat.configure_sat(enabled=None)
    yield
    sat.configure_sat(enabled=None)
    operator_cache.reset()
    operator_cache.reset_stats()


def decision_trace(problem, enabled):
    """Everything one engine decides for ``problem``, checksums included."""
    sat.configure_sat(enabled=enabled)
    try:
        algorithm = find_zero_round_algorithm(problem)
        decision = decide_zero_round(problem)
        refutation = build_refutation(problem)
    finally:
        sat.configure_sat(enabled=None)
    trace = ["decision", decision]
    if algorithm is None:
        trace += ["no-algorithm"]
    else:
        trace += ["clique", algorithm.clique, "table", algorithm.table]
    if refutation is None:
        trace += ["no-refutation"]
    else:
        trace += [
            "refutation",
            json.dumps(refutation, sort_keys=True),
            body_checksum(refutation),
        ]
    return trace


class TestCatalogDifferential:
    @pytest.mark.parametrize(
        "name, problem", CATALOG_PROBLEMS, ids=[n for n, _ in CATALOG_PROBLEMS]
    )
    def test_decisions_and_witnesses_agree(self, name, problem):
        enumeration = decision_trace(problem, enabled=False)
        sat_trace = decision_trace(problem, enabled=True)
        assert sat_trace == enumeration, f"{name}: engines diverged"
        # The two sides of the decision are mutually exclusive evidence.
        assert ("no-algorithm" in sat_trace) != ("no-refutation" in sat_trace)

    @pytest.mark.parametrize(
        "name, problem", CATALOG_PROBLEMS, ids=[n for n, _ in CATALOG_PROBLEMS]
    )
    def test_engine_free_checkers_accept_sat_witnesses(self, name, problem):
        sat.configure_sat(enabled=True)
        algorithm = find_zero_round_algorithm(problem)
        refutation = build_refutation(problem)
        sat.configure_sat(enabled=False)
        if algorithm is not None:
            assert check_zero_round_table(
                problem, sorted(algorithm.clique, key=repr), algorithm.table
            ) == []
        if refutation is not None:
            assert check_refutation(problem, refutation) == []

    def test_derived_alphabet_agrees(self):
        # The 17-label step problem of 3-coloring is the headline speedup
        # case (bench_roundelim measures it); it must also be *exact*.
        from repro.roundelim.sequence import ProblemSequence

        f1 = ProblemSequence(catalog.coloring(3, 2), use_cache=False).problem(1)
        assert len(f1.sigma_out) >= 10
        assert decision_trace(f1, enabled=True) == decision_trace(f1, enabled=False)

    def test_budget_trip_falls_back_to_the_same_answer(self, monkeypatch):
        # A solver budget that trips mid-decision must not change the
        # answer: the dispatch falls back to enumeration and counts it.
        problem = dict(CATALOG_PROBLEMS)["echo"]
        expected = decision_trace(problem, enabled=False)
        operator_cache.reset_stats()
        monkeypatch.setattr("repro.sat.dpll.DEFAULT_MAX_STEPS", 1)
        tripped = decision_trace(problem, enabled=True)
        assert tripped == expected
        counters = operator_cache.stats()["operators"]
        assert counters["zero_round"]["sat_fallbacks"] >= 1
        assert counters["refute"]["sat_fallbacks"] >= 1
        assert counters["zero_round"]["sat_steps"] == 0


def _fuzz_chunks(count):
    return [
        pytest.param(
            start,
            min(start + CHUNK, count),
            id=f"seeds{start}-{min(start + CHUNK, count) - 1}",
        )
        for start in range(0, count, CHUNK)
    ]


def _fuzz_problem(seed):
    """Deterministic variety over generators, shapes, and inputs."""
    if seed % 4 == 1:
        return solvable_random_lcl(seed, num_inputs=2)
    if seed % 4 == 2:
        return random_lcl(seed, num_labels=4, max_degree=3, num_inputs=1)
    if seed % 4 == 3:
        return random_lcl(seed, num_labels=3, max_degree=2, num_inputs=2)
    return solvable_random_lcl(seed, num_labels=4, max_degree=3)


@pytest.mark.fuzz
@pytest.mark.parametrize(("start", "stop"), _fuzz_chunks(DIFF_COUNT))
def test_fuzzed_decisions_agree(start, stop):
    for seed in range(start, stop):
        problem = _fuzz_problem(seed)
        enumeration = decision_trace(problem, enabled=False)
        sat_trace = decision_trace(problem, enabled=True)
        assert sat_trace == enumeration, f"seed {seed}: engines diverged"


class TestEngineAccounting:
    def test_sat_path_actually_runs(self):
        sat.configure_sat(enabled=True)
        find_zero_round_algorithm(dict(CATALOG_PROBLEMS)["4-coloring"])
        build_refutation(dict(CATALOG_PROBLEMS)["4-coloring"])
        counters = operator_cache.stats()["operators"]
        assert counters["zero_round"]["sat_steps"] >= 1
        assert counters["refute"]["sat_steps"] >= 1
        assert counters["zero_round"]["sat_fallbacks"] == 0

    def test_enumeration_path_records_no_sat_steps(self):
        sat.configure_sat(enabled=False)
        find_zero_round_algorithm(dict(CATALOG_PROBLEMS)["4-coloring"])
        build_refutation(dict(CATALOG_PROBLEMS)["4-coloring"])
        counters = operator_cache.stats()["operators"]
        assert counters.get("zero_round", {}).get("sat_steps", 0) == 0
        assert counters.get("refute", {}).get("sat_steps", 0) == 0

    def test_unsupported_shape_falls_back_loudly(self):
        # Degree 7 exceeds the encoder cap (MAX_DEGREE = 6): the CNF
        # path must decline and enumeration must still answer.
        wide = catalog.trivial(sat.MAX_DEGREE + 1)
        sat.configure_sat(enabled=True)
        algorithm = find_zero_round_algorithm(wide)
        sat.configure_sat(enabled=False)
        reference = find_zero_round_algorithm(wide)
        assert (algorithm is None) == (reference is None)
        if algorithm is not None:
            assert (algorithm.clique, algorithm.table) == (
                reference.clique,
                reference.table,
            )
        counters = operator_cache.stats()["operators"]
        assert counters["zero_round"]["sat_fallbacks"] >= 1

    def test_env_knob_disables_engine(self, monkeypatch):
        sat.configure_sat(enabled=None)  # defer to the environment
        monkeypatch.setenv("REPRO_SAT", "0")
        find_zero_round_algorithm(dict(CATALOG_PROBLEMS)["4-coloring"])
        counters = operator_cache.stats()["operators"]
        assert counters.get("zero_round", {}).get("sat_steps", 0) == 0
        monkeypatch.setenv("REPRO_SAT", "1")
        find_zero_round_algorithm(dict(CATALOG_PROBLEMS)["4-coloring"])
        counters = operator_cache.stats()["operators"]
        assert counters["zero_round"]["sat_steps"] >= 1


class TestCandidateHoist:
    """Regression guard for the per-tuple candidate recomputation bug.

    ``uncoverable_tuple`` used to rebuild ``g(input) ∩ clique`` for
    every port of every enumerated tuple; the lists depend only on the
    input label, so they are now hoisted to one computation per input
    label per call.
    """

    def setup_method(self):
        refute._candidate_stats.update(candidate_lists=0)

    def test_candidate_lists_computed_once_per_input_label(self):
        problem = dict(CATALOG_PROBLEMS)["echo"]
        cliques = self_looped_cliques(problem)
        assert cliques, "echo lost its self-looped cliques"
        for calls_so_far, clique in enumerate(cliques):
            uncoverable_tuple(problem, clique)
            assert refute._candidate_stats["candidate_lists"] == (
                (calls_so_far + 1) * len(problem.sigma_in)
            ), "candidate lists recomputed inside the tuple enumeration"

    def test_hoisted_scan_matches_per_tuple_covers(self):
        # The hoisted enumeration must agree with the checker's
        # independent per-tuple ``_covers`` on every clique.
        import itertools

        from repro.utils.multiset import label_sort_key

        problem = dict(CATALOG_PROBLEMS)["maximal-matching"]
        inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
        cliques = self_looped_cliques(problem)
        assert cliques, "maximal-matching lost its self-looped cliques"
        for clique in cliques:
            witness = uncoverable_tuple(problem, clique)
            expected = None
            for degree in problem.degrees():
                for input_tuple in itertools.combinations_with_replacement(
                    inputs_sorted, degree
                ):
                    if not refute._covers(problem, clique, input_tuple):
                        expected = (degree, input_tuple)
                        break
                if expected is not None:
                    break
            assert witness == expected


class TestLintSelfCheck:
    """CI satellite: the encoder itself stays inside the REP002 audit."""

    def test_encoder_module_is_order_audited(self):
        from repro.analysis.rules import ordering

        assert "encode" in ordering.ORDERED_OUTPUT_STEMS

    def test_sat_package_passes_repro_lint(self):
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        package = repo_root / "src" / "repro" / "sat"
        result = run_lint(sorted(package.glob("*.py")), root=repo_root)
        assert result.findings == [], "\n".join(f.render() for f in result.findings)

    def test_refute_module_stays_engine_free(self):
        # REP003: the checker half of repro.verify must not reach the
        # engine via module-level imports even with the SAT dispatch in
        # the builder half.
        import pathlib

        repo_root = pathlib.Path(__file__).resolve().parents[1]
        result = run_lint([repo_root / "src"], root=repo_root, select=["REP003"])
        assert result.findings == [], "\n".join(f.render() for f in result.findings)
