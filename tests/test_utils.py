"""Unit and property tests for repro.utils."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    GFPolynomial,
    Multiset,
    SplittableRNG,
    derive_seed,
    is_prime,
    iterated_log,
    next_prime,
    tower,
)
from repro.utils.multiset import label_sort_key


# ----------------------------------------------------------------- Multiset
class TestMultiset:
    def test_equality_ignores_order(self):
        assert Multiset(["A", "B", "A"]) == Multiset(["B", "A", "A"])

    def test_inequality_on_multiplicity(self):
        assert Multiset(["A", "B"]) != Multiset(["A", "A", "B"])

    def test_hash_consistency(self):
        assert hash(Multiset([1, 2, 2])) == hash(Multiset([2, 1, 2]))

    def test_len_and_count(self):
        m = Multiset("aabc")
        assert len(m) == 4
        assert m.count("a") == 2
        assert m.count("z") == 0

    def test_support(self):
        assert Multiset("aabc").support() == frozenset("abc")

    def test_add_and_remove(self):
        m = Multiset(["x"])
        assert m.add("y") == Multiset(["x", "y"])
        assert m.add("x").remove_one("x") == m

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            Multiset(["x"]).remove_one("y")

    def test_inclusion(self):
        assert Multiset("ab") <= Multiset("aabb")
        assert not (Multiset("aab") <= Multiset("ab"))

    def test_map(self):
        assert Multiset([1, 2]).map(lambda x: x * 2) == Multiset([2, 4])

    def test_usable_as_dict_key(self):
        d = {Multiset("ab"): 1}
        assert d[Multiset("ba")] == 1

    def test_frozenset_labels_sort_deterministically(self):
        a = frozenset({"x", "y"})
        b = frozenset({"z"})
        assert Multiset([a, b]).items == Multiset([b, a]).items

    def test_nested_frozenset_sort_key_total(self):
        key_a = label_sort_key(frozenset({frozenset({"a"}), frozenset({"b"})}))
        key_b = label_sort_key(frozenset({frozenset({"b"})}))
        assert key_a != key_b
        assert sorted([key_a, key_b]) == sorted([key_b, key_a])

    @given(st.lists(st.sampled_from("abcde"), max_size=8))
    def test_property_canonical_under_permutation(self, items):
        assert Multiset(items) == Multiset(list(reversed(items)))

    @given(
        st.lists(st.sampled_from("abc"), max_size=6),
        st.sampled_from("abc"),
    )
    def test_property_add_then_remove_roundtrip(self, items, extra):
        m = Multiset(items)
        assert m.add(extra).remove_one(extra) == m

    @given(st.lists(st.sampled_from("abc"), max_size=6))
    def test_property_counter_total(self, items):
        m = Multiset(items)
        assert sum(m.counter().values()) == len(m)


# ------------------------------------------------------------------ numbers
class TestNumbers:
    @pytest.mark.parametrize(
        "n, expected",
        [(1, 0), (2, 1), (4, 2), (16, 3), (65536, 4), (2**65536 if False else 65537, 5)],
    )
    def test_iterated_log_values(self, n, expected):
        assert iterated_log(n) == expected

    def test_iterated_log_below_one(self):
        assert iterated_log(0.5) == 0

    def test_tower_small(self):
        assert tower(0, top=3.0) == 3.0
        assert tower(1, top=3.0) == 8.0
        assert tower(2, top=2.0) == 16.0

    def test_tower_overflow_is_inf(self):
        assert tower(10) == math.inf

    def test_tower_negative_height_raises(self):
        with pytest.raises(ValueError):
            tower(-1)

    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 101, 997])
    def test_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", [0, 1, 4, 9, 100, 999])
    def test_composites(self, c):
        assert not is_prime(c)

    def test_next_prime(self):
        assert next_prime(8) == 11
        assert next_prime(11) == 11
        assert next_prime(0) == 2

    @given(st.integers(min_value=2, max_value=5000))
    def test_property_iterated_log_monotone_step(self, n):
        assert iterated_log(n) == 1 + iterated_log(math.log2(n))


class TestGFPolynomial:
    def test_requires_prime(self):
        with pytest.raises(ValueError):
            GFPolynomial(4, [1])

    def test_horner_evaluation(self):
        p = GFPolynomial(7, [1, 2, 3])  # 1 + 2x + 3x^2
        assert p(0) == 1
        assert p(1) == 6
        assert p(2) == (1 + 4 + 12) % 7

    def test_from_integer_injective(self):
        q, degree = 5, 2
        seen = {}
        for value in range(q ** (degree + 1)):
            poly = GFPolynomial.from_integer(q, value, degree)
            assert poly.coefficients not in seen
            seen[poly.coefficients] = value

    def test_from_integer_out_of_range(self):
        with pytest.raises(ValueError):
            GFPolynomial.from_integer(3, 27, 2)

    @given(st.integers(min_value=0, max_value=124), st.integers(min_value=0, max_value=4))
    def test_property_distinct_polynomials_agree_rarely(self, value, x):
        # Two distinct degree-2 polynomials over GF(5) agree on <= 2 points.
        q, degree = 5, 2
        p1 = GFPolynomial.from_integer(q, value, degree)
        p2 = GFPolynomial.from_integer(q, (value + 1) % (q ** (degree + 1)), degree)
        agreements = sum(1 for t in range(q) if p1(t) == p2(t))
        assert agreements <= degree


# ---------------------------------------------------------------------- rng
class TestRNG:
    def test_derive_seed_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_derive_seed_sensitive_to_parts(self):
        assert derive_seed("a", 1) != derive_seed("a", 2)
        assert derive_seed("ab") != derive_seed("a", "b")

    def test_child_streams_independent_of_creation_order(self):
        root = SplittableRNG(42)
        first = root.child("node", 7).bits(32)
        root2 = SplittableRNG(42)
        root2.child("node", 3).bits(32)  # interleave another child
        second = root2.child("node", 7).bits(32)
        assert first == second

    def test_bits_length_and_alphabet(self):
        bits = SplittableRNG(0).bits(100)
        assert len(bits) == 100
        assert set(bits) <= {"0", "1"}

    def test_integer_bounds(self):
        rng = SplittableRNG(5)
        values = [rng.integer(3, 9) for _ in range(100)]
        assert all(3 <= v <= 9 for v in values)
