"""Chaos suite for the lease-based scheduler: the crash-recovery contract.

A multi-worker campaign run under injected scheduler faults — workers
SIGKILLed mid-dispatch (``worker_abort``), heartbeats silenced until the
lease expires (``heartbeat_stall``), completions delivered twice
(``duplicate_completion``) — must produce a merged journal **byte
identical** to an undisturbed serial :func:`run_campaign` of the same
cells and seed, because a worker-level loss is a scheduling event, not a
cell attempt: the replayed cell re-derives the same value from the same
``(campaign seed, cell id)`` RNG and records ``attempts=1``.

Cell-level sim faults (``sim_crash`` / ``sim_oom``) *do* consume retry
attempts, and under concurrent dispatch the fault draws land on
timing-dependent cells — so those tests compare values, not bytes.
"""

import os
import signal

import pytest

from repro.exceptions import SchedulerHalted
from repro.scheduler import SchedulerConfig, run_scheduled_campaign
from repro.supervisor import (
    CampaignConfig,
    CellSpec,
    open_journal,
    register_runner,
    run_campaign,
)
from repro.utils import faults

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
    monkeypatch.delenv("REPRO_SCHED_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SCHED_LEASE_SECS", raising=False)
    faults.reset_faults()
    yield
    faults.reset_faults()


@register_runner("schedchaos.bits")
def _bits(spec, rng):
    # RNG-stream dependent: a duplicate or replayed execution that
    # consumed stale generator state would visibly diverge.
    return rng.child("measurement").bits(48)


CELLS = [CellSpec.make("schedchaos.bits", "p", n, seed=n) for n in range(1, 9)]


def serial_baseline(tmp_path):
    """The undisturbed serial run: its report and exact journal bytes."""
    faults.configure_faults(None)
    directory = tmp_path / "serial"
    directory.mkdir(exist_ok=True)
    journal = open_journal(CELLS, seed=7, directory=directory)
    config = CampaignConfig(seed=7, isolation="inline", retries=1)
    report = run_campaign(CELLS, config, journal=journal)
    assert not report.quarantined
    faults.reset_faults()
    return report, journal.path.read_bytes()


def scheduled(tmp_path, workers=3, lease_secs=5.0, **kwargs):
    journal = open_journal(CELLS, seed=7, directory=tmp_path)
    config = CampaignConfig(seed=7, isolation="inline", retries=1)
    report = run_scheduled_campaign(
        CELLS,
        config,
        scheduler=SchedulerConfig(workers=workers, lease_secs=lease_secs),
        journal=journal,
        **kwargs,
    )
    return report, journal


class TestSchedulerChaosRecovery:
    def test_worker_abort_byte_identical_to_serial(self, tmp_path):
        serial, baseline_bytes = serial_baseline(tmp_path)
        # seed=11: several dispatches land on a worker that SIGKILLs
        # itself; the engine reclaims the expired/dead leases and
        # re-dispatches. Worker loss is not a cell attempt.
        faults.configure_faults({"worker_abort": 0.4}, seed=11)
        report, journal = scheduled(tmp_path)
        assert not report.quarantined, [r.reason for r in report.quarantined]
        assert report.stats.worker_deaths > 0
        assert report.stats.reclaims > 0
        assert report.stats.respawns > 0
        assert all(result.attempts == 1 for result in report.results)
        assert report.values() == serial.values()
        assert journal.path.read_bytes() == baseline_bytes

    def test_heartbeat_stall_reclaimed_via_lease_expiry(self, tmp_path):
        serial, baseline_bytes = serial_baseline(tmp_path)
        # A stalled worker stays alive but silent: only the lease
        # deadline can flush it out. Short lease keeps the test fast.
        faults.configure_faults({"heartbeat_stall": 0.3}, seed=3)
        report, journal = scheduled(tmp_path, lease_secs=0.5)
        assert not report.quarantined, [r.reason for r in report.quarantined]
        assert report.stats.expired_leases > 0
        assert report.stats.reclaims > 0
        assert report.values() == serial.values()
        assert journal.path.read_bytes() == baseline_bytes

    def test_duplicate_completions_deduped_bit_identically(self, tmp_path):
        serial, baseline_bytes = serial_baseline(tmp_path)
        faults.configure_faults({"duplicate_completion": 0.5}, seed=2)
        report, journal = scheduled(tmp_path)
        assert not report.quarantined
        assert report.stats.duplicates > 0
        assert report.values() == serial.values()
        assert journal.path.read_bytes() == baseline_bytes

    def test_cell_level_faults_still_match_serial_values(self, tmp_path):
        serial, _ = serial_baseline(tmp_path)
        # sim faults consume retry attempts and land on timing-dependent
        # cells under concurrency, so this asserts value identity (the
        # reproducibility contract), not byte identity.
        faults.configure_faults(
            {"sim_crash": 0.2, "sim_oom": 0.15, "worker_abort": 0.2}, seed=17
        )
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        config = CampaignConfig(seed=7, isolation="process", timeout=60.0, retries=3)
        report = run_scheduled_campaign(
            CELLS,
            config,
            scheduler=SchedulerConfig(workers=3, lease_secs=5.0),
            journal=journal,
        )
        assert not report.quarantined, [r.reason for r in report.quarantined]
        assert report.values() == serial.values()


class TestCrashResumeAcceptance:
    def test_sigkilled_workers_resume_byte_identical(self, tmp_path):
        """The PR's acceptance contract: SIGKILL workers at fault-plan-
        chosen points mid-campaign, halt the parent with shards on disk,
        resume, and require the merged journal and report values to be
        byte-identical to the undisturbed serial run."""
        serial, baseline_bytes = serial_baseline(tmp_path)
        faults.configure_faults({"worker_abort": 0.3}, seed=29)
        with pytest.raises(SchedulerHalted):
            scheduled(tmp_path, _halt_after=3)
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        assert journal.shard_paths(), "halt must leave worker shards behind"
        # Recovery happens under clean skies: restored cells come from
        # the durable shards/journal, the rest recompute.
        faults.configure_faults(None)
        report, journal = scheduled(tmp_path, resume=True)
        assert not report.quarantined
        assert report.resumed_count >= 3
        assert report.values() == serial.values()
        assert journal.path.read_bytes() == baseline_bytes
        assert journal.shard_paths() == [], "resume must merge+delete shards"

    def test_sigterm_drains_in_flight_cells_then_resumes(self, tmp_path):
        serial, baseline_bytes = serial_baseline(tmp_path)
        fired = []

        def terminate_after_two(line):
            if not fired and "[2/" in line:
                fired.append(line)
                os.kill(os.getpid(), signal.SIGTERM)

        with pytest.raises(KeyboardInterrupt):
            scheduled(tmp_path, progress=terminate_after_two)
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        # Graceful drain journals every completion it waited for; no
        # shard may be stranded.
        assert journal.shard_paths() == []
        assert 0 < len(journal.completed_cells()) < len(CELLS)
        report, journal = scheduled(tmp_path, resume=True)
        assert report.resumed_count >= 2
        assert report.values() == serial.values()
        assert journal.path.read_bytes() == baseline_bytes


class TestNeverAbortSweep:
    @pytest.mark.parametrize("kind", faults.KINDS)
    def test_campaign_never_aborts_under_any_fault_kind(self, kind, tmp_path):
        """Satellite contract: ``run_campaign`` returns a terminal row
        for every cell under every registered fault kind — faults may
        cost retries or quarantines, never a lost cell or an abort."""
        cells = CELLS[:2]
        faults.configure_faults({kind: 0.5}, seed=13)
        journal = open_journal(cells, seed=7, directory=tmp_path)
        # Tight timeout so sim_hang is bounded by the kill path.
        config = CampaignConfig(seed=7, isolation="process", timeout=1.5, retries=1)
        report = run_campaign(cells, config, journal=journal)
        assert len(report.results) == len(cells)
        assert {r.spec.cell_id() for r in report.results} == {
            c.cell_id() for c in cells
        }
        for result in report.results:
            assert result.status in ("OK", "QUARANTINED")
