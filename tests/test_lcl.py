"""Tests for repro.lcl: problem definitions, checker, catalog, brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemDefinitionError
from repro.graphs import Graph, HalfEdgeLabeling, cycle, path, random_tree, star
from repro.lcl import catalog, check_solution, is_valid_solution
from repro.lcl.checker import brute_force_solution
from repro.lcl.nec import NodeEdgeCheckableLCL, all_multisets
from repro.utils.multiset import Multiset

NO = catalog.NO_INPUT


def no_inputs(graph: Graph) -> HalfEdgeLabeling:
    return HalfEdgeLabeling.constant(graph, NO)


# ----------------------------------------------------------- definitions
class TestNodeEdgeCheckableLCL:
    def test_validation_rejects_bad_cardinality(self):
        with pytest.raises(ProblemDefinitionError):
            NodeEdgeCheckableLCL(
                sigma_in=[NO],
                sigma_out=["a"],
                node_constraints={2: [Multiset(["a"])]},
                edge_constraint=[Multiset(["a", "a"])],
                g={NO: ["a"]},
            )

    def test_validation_rejects_unknown_labels(self):
        with pytest.raises(ProblemDefinitionError):
            NodeEdgeCheckableLCL(
                sigma_in=[NO],
                sigma_out=["a"],
                node_constraints={1: [Multiset(["b"])]},
                edge_constraint=[],
                g={NO: ["a"]},
            )

    def test_validation_rejects_incomplete_g(self):
        with pytest.raises(ProblemDefinitionError):
            NodeEdgeCheckableLCL(
                sigma_in=["x", "y"],
                sigma_out=["a"],
                node_constraints={1: [Multiset(["a"])]},
                edge_constraint=[Multiset(["a", "a"])],
                g={"x": ["a"]},
            )

    def test_allows_node_and_edge(self):
        problem = catalog.coloring(3, max_degree=2)
        assert problem.allows_node(["c0", "c0"])
        assert not problem.allows_node(["c0", "c1"])
        assert problem.allows_edge("c0", "c1")
        assert not problem.allows_edge("c2", "c2")

    def test_used_output_labels_drops_node_only_labels(self):
        problem = NodeEdgeCheckableLCL(
            sigma_in=[NO],
            sigma_out=["a", "b"],
            node_constraints={1: [Multiset(["a"]), Multiset(["b"])]},
            edge_constraint=[Multiset(["a", "a"])],
            g={NO: ["a", "b"]},
        )
        assert problem.used_output_labels() == frozenset({"a"})

    def test_restrict_outputs(self):
        problem = catalog.coloring(3, max_degree=2)
        restricted = problem.restrict_outputs(["c0", "c1"])
        assert restricted.sigma_out == frozenset({"c0", "c1"})
        assert restricted.allows_edge("c0", "c1")
        assert not restricted.allows_node(["c2", "c2"])

    def test_rename_outputs_roundtrip(self):
        problem = catalog.mis(3)
        swapped = problem.rename_outputs({"M": "P", "P": "M", "O": "O"})
        assert swapped != problem
        assert swapped.rename_outputs({"M": "P", "P": "M", "O": "O"}) == problem

    def test_rename_rejects_non_bijection(self):
        problem = catalog.mis(2)
        with pytest.raises(ProblemDefinitionError):
            problem.rename_outputs({"M": "x", "P": "x", "O": "y"})

    def test_isomorphism_detects_renaming(self):
        problem = catalog.coloring(3, max_degree=2)
        renamed = problem.rename_outputs({"c0": "z2", "c1": "z0", "c2": "z1"})
        assert problem.is_isomorphic(renamed)

    def test_isomorphism_rejects_different_structure(self):
        assert not catalog.coloring(3, 2).is_isomorphic(catalog.mis(2))

    def test_all_multisets_count(self):
        # C(3 + 2 - 1, 2) = 6 multisets of size 2 over 3 labels.
        assert len(all_multisets("abc", 2)) == 6

    def test_summary_mentions_constraints(self):
        text = catalog.sinkless_orientation(3).summary()
        assert "node[3]" in text and "edge:" in text

    def test_max_degree_and_degrees(self):
        problem = catalog.mis(3)
        assert problem.max_degree == 3
        assert problem.degrees() == (1, 2, 3)


# ----------------------------------------------------------------- checker
class TestChecker:
    def test_valid_coloring_on_path(self):
        g = path(4)
        problem = catalog.coloring(3, max_degree=2)
        outputs = HalfEdgeLabeling.from_node_labels(g, ["c0", "c1", "c0", "c2"])
        assert is_valid_solution(problem, g, no_inputs(g), outputs)

    def test_monochromatic_edge_fails(self):
        g = path(3)
        problem = catalog.coloring(3, max_degree=2)
        outputs = HalfEdgeLabeling.from_node_labels(g, ["c0", "c0", "c1"])
        report = check_solution(problem, g, no_inputs(g), outputs)
        assert (0, 1) in report.failed_edges
        assert not report.is_valid

    def test_inconsistent_node_coloring_fails_node(self):
        g = path(3)
        problem = catalog.coloring(3, max_degree=2)
        outputs = HalfEdgeLabeling.from_node_labels(g, ["c0", "c1", "c0"])
        outputs[(1, 0)] = "c2"  # node 1 announces different colors per port
        report = check_solution(problem, g, no_inputs(g), outputs)
        assert 1 in report.failed_nodes

    def test_missing_labels_reported(self):
        g = path(3)
        problem = catalog.trivial(2)
        outputs = HalfEdgeLabeling(g)
        report = check_solution(problem, g, no_inputs(g), outputs)
        assert len(report.unlabeled) == 4
        assert not report.is_valid

    def test_g_violation_detected(self):
        g = path(2)
        problem = catalog.input_copy(1)
        inputs = HalfEdgeLabeling.constant(g, "0")
        outputs = HalfEdgeLabeling.constant(g, "out1")
        report = check_solution(problem, g, inputs, outputs)
        assert report.failed_nodes and report.failed_edges

    def test_isolated_nodes_are_vacuously_valid(self):
        g = Graph(3, [(0, 1)])  # node 2 isolated
        problem = catalog.trivial(2)
        outputs = HalfEdgeLabeling.constant(g, "T")
        assert is_valid_solution(problem, g, no_inputs(g), outputs)

    def test_mis_encoding_valid_instance(self):
        g = path(4)
        problem = catalog.mis(2)
        # MIS {0, 2}: node 1 points to 0, node 3 points to 2.
        outputs = HalfEdgeLabeling(g)
        outputs[(0, 0)] = "M"
        outputs[(1, 0)] = "P"
        outputs[(1, 1)] = "O"
        outputs[(2, 0)] = "M"
        outputs[(2, 1)] = "M"
        outputs[(3, 0)] = "P"
        assert is_valid_solution(problem, g, no_inputs(g), outputs)

    def test_mis_adjacent_set_nodes_fail(self):
        g = path(2)
        problem = catalog.mis(1)
        outputs = HalfEdgeLabeling.constant(g, "M")
        report = check_solution(problem, g, no_inputs(g), outputs)
        assert (0, 1) in report.failed_edges

    def test_maximal_matching_unmatched_pair_fails(self):
        g = path(2)
        problem = catalog.maximal_matching(1)
        outputs = HalfEdgeLabeling.constant(g, "P")
        report = check_solution(problem, g, no_inputs(g), outputs)
        assert (0, 1) in report.failed_edges

    def test_sinkless_orientation_sink_fails(self):
        g = star(3)
        problem = catalog.sinkless_orientation(3)
        outputs = HalfEdgeLabeling(g)
        for port in range(3):
            outputs[(0, port)] = "I"  # hub is a sink
            outputs[(port + 1, 0)] = "O"
        report = check_solution(problem, g, no_inputs(g), outputs)
        assert 0 in report.failed_nodes

    def test_sinkless_orientation_valid(self):
        g = star(3)
        problem = catalog.sinkless_orientation(3)
        outputs = HalfEdgeLabeling(g)
        outputs[(0, 0)] = "O"
        outputs[(1, 0)] = "I"
        for port in (1, 2):
            outputs[(0, port)] = "I"
            outputs[(port + 1, 0)] = "O"
        assert is_valid_solution(problem, g, no_inputs(g), outputs)


# ------------------------------------------------------------- brute force
class TestBruteForce:
    def test_finds_coloring_on_cycle(self):
        g = cycle(5)
        problem = catalog.coloring(3, max_degree=2)
        solution = brute_force_solution(problem, g, no_inputs(g))
        assert solution is not None
        assert is_valid_solution(problem, g, no_inputs(g), solution)

    def test_two_coloring_odd_cycle_unsolvable(self):
        g = cycle(5)
        problem = catalog.two_coloring(2)
        assert brute_force_solution(problem, g, no_inputs(g)) is None

    def test_two_coloring_even_cycle_solvable(self):
        g = cycle(6)
        problem = catalog.two_coloring(2)
        solution = brute_force_solution(problem, g, no_inputs(g))
        assert solution is not None

    def test_echo_solution_matches_inputs(self):
        g = path(3)
        problem = catalog.echo(2)
        inputs = HalfEdgeLabeling(g)
        values = {(0, 0): "0", (1, 0): "1", (1, 1): "0", (2, 0): "1"}
        for h, v in values.items():
            inputs[h] = v
        solution = brute_force_solution(problem, g, inputs)
        assert solution is not None
        for half_edge, label in solution.items():
            opposite = g.opposite(half_edge)
            assert label == (inputs[half_edge], inputs[opposite])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=5))
    def test_property_brute_force_solutions_verify(self, n, seed):
        g = random_tree(n, max_degree=3, seed=seed)
        for problem in (catalog.mis(3), catalog.maximal_matching(3)):
            solution = brute_force_solution(problem, g, no_inputs(g))
            assert solution is not None
            assert is_valid_solution(problem, g, no_inputs(g), solution)


# ----------------------------------------------------------------- catalog
class TestCatalog:
    def test_standard_catalog_builds(self):
        problems = catalog.standard_catalog(3)
        assert len(problems) >= 10
        names = {p.name for p in problems}
        assert "mis" in names and "echo" in names

    def test_weak_coloring_solvable_on_edge(self):
        g = path(2)
        problem = catalog.weak_coloring(2, max_degree=1)
        solution = brute_force_solution(problem, g, no_inputs(g))
        assert solution is not None

    def test_forbidden_input_output_respects_g(self):
        problem = catalog.forbidden_input_output(2)
        assert "c1" not in problem.allowed_outputs("f1")
        assert "c0" in problem.allowed_outputs("f1")

    def test_consensus_requires_agreement(self):
        g = path(3)
        problem = catalog.consensus(2)
        good = HalfEdgeLabeling.constant(g, "0")
        bad = HalfEdgeLabeling.from_node_labels(g, ["0", "0", "1"])
        assert is_valid_solution(problem, g, no_inputs(g), good)
        assert not is_valid_solution(problem, g, no_inputs(g), bad)
