"""Tests for the VOLUME / LCA models (Definitions 2.8–2.10, §2.2, §4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProbeError, SimulationError
from repro.graphs import HalfEdgeLabeling, cycle, path, random_ids, star
from repro.lcl import catalog, is_valid_solution
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.utils.numbers import iterated_log
from repro.volume import (
    ChainColeVishkin,
    ComponentCount,
    NeighborhoodAggregate,
    VolumeQuery,
    check_volume_order_invariance,
    far_probe_free_equivalent,
    fooled_constant_volume,
    run_volume_algorithm,
)
from repro.volume.lca import LCAOracle, run_lca_algorithm
from repro.volume.model import ProbeOracle

NO = catalog.NO_INPUT


class TestProbeOracle:
    def test_tuple_contents(self):
        g = star(3)
        inputs = HalfEdgeLabeling(g, {h: f"x{h[1]}" for h in g.half_edges()})
        oracle = ProbeOracle(g, inputs, ids=[9, 5, 6, 7])
        t = oracle.tuple_of(0)
        assert t.identifier == 9
        assert t.degree == 3
        assert t.inputs == ("x0", "x1", "x2")

    def test_probe_counting(self):
        g = path(4)
        oracle = ProbeOracle(g, None, ids=[1, 2, 3, 4])
        oracle.probe(0, 0)
        oracle.probe(1, 1)
        assert oracle.probe_count == 2

    def test_invalid_port_raises(self):
        g = path(3)
        oracle = ProbeOracle(g, None, ids=[1, 2, 3])
        with pytest.raises(ProbeError):
            oracle.probe(0, 1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SimulationError):
            ProbeOracle(path(3), None, ids=[1, 1, 2])


class TestVolumeQueryBudget:
    def test_budget_enforced(self):
        g = path(5)
        oracle = ProbeOracle(g, None, ids=[1, 2, 3, 4, 5])
        query = VolumeQuery(oracle, 0, budget=2, declared_n=5)
        query.probe(0, 0)
        query.probe(1, 1)
        with pytest.raises(ProbeError):
            query.probe(2, 1)

    def test_unknown_node_index_rejected(self):
        g = path(3)
        oracle = ProbeOracle(g, None, ids=[1, 2, 3])
        query = VolumeQuery(oracle, 0, budget=5, declared_n=3)
        with pytest.raises(ProbeError):
            query.probe(3, 0)

    def test_probes_reveal_tuples_in_order(self):
        g = path(3)
        oracle = ProbeOracle(g, None, ids=[10, 20, 30])
        query = VolumeQuery(oracle, 0, budget=5, declared_n=3)
        revealed = query.probe(0, 0)
        assert revealed.identifier == 20
        assert query.known_count == 2


class TestVolumeAlgorithms:
    def test_neighborhood_aggregate_constant_probes(self):
        g = star(4)
        result = run_volume_algorithm(g, NeighborhoodAggregate(max_degree=4))
        assert result.outputs[(1, 0)] == 4
        assert result.max_probes_used <= 4

    @pytest.mark.parametrize("n", [2, 7, 40])
    def test_chain_cv_colors_paths(self, n):
        g = path(n)
        inputs = orient_path_inputs(g)
        result = run_volume_algorithm(
            g, ChainColeVishkin(), inputs=inputs, ids=random_ids(g, seed=1)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(
            problem, g, HalfEdgeLabeling.constant(g, NO), result.outputs
        )

    @pytest.mark.parametrize("n", [3, 12, 33])
    def test_chain_cv_colors_cycles(self, n):
        g = cycle(n)
        inputs = orient_path_inputs(g)
        result = run_volume_algorithm(
            g, ChainColeVishkin(), inputs=inputs, ids=random_ids(g, seed=2)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(
            problem, g, HalfEdgeLabeling.constant(g, NO), result.outputs
        )

    def test_chain_cv_probe_complexity_is_log_star(self):
        g = cycle(50)
        inputs = orient_path_inputs(g)
        result = run_volume_algorithm(
            g, ChainColeVishkin(), inputs=inputs, ids=random_ids(g, seed=3)
        )
        assert result.max_probes_used <= 3 * iterated_log(50**3) + 12
        assert result.within_declared_budget

    def test_component_count_probes_linear(self):
        g = path(20)
        result = run_volume_algorithm(g, ComponentCount())
        for h in g.half_edges():
            assert result.outputs[h] == 20
        assert result.max_probes_used >= 19

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=4, max_value=30), st.integers(min_value=0, max_value=50))
    def test_property_chain_cv_any_ids(self, n, seed):
        g = cycle(n)
        inputs = orient_path_inputs(g)
        result = run_volume_algorithm(
            g, ChainColeVishkin(), inputs=inputs, ids=random_ids(g, seed=seed)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(
            problem, g, HalfEdgeLabeling.constant(g, NO), result.outputs
        )


class TestOrderInvariance:
    def test_aggregate_is_order_invariant(self):
        g = star(3)
        assert check_volume_order_invariance(
            NeighborhoodAggregate(3), g, ids=[4, 8, 15, 16]
        )

    def test_chain_cv_is_not_order_invariant(self):
        # CV extracts bits of raw identifiers, so its output changes under
        # order-preserving reassignment: the Ramsey step of Theorem 4.1 is
        # about *existence* of an invariant twin, not about CV itself.
        g = cycle(12)
        inputs = orient_path_inputs(g)
        assert not check_volume_order_invariance(
            ChainColeVishkin(), g, ids=random_ids(g, seed=5), inputs=inputs, trials=8
        )

    def test_fooled_constant_volume_budget(self):
        inner = NeighborhoodAggregate(3)
        fooled = fooled_constant_volume(inner, n0=64)
        assert fooled.probes(10**9) == inner.probes(64)

    def test_fooled_algorithm_still_correct_for_order_invariant_inner(self):
        g = star(3)
        fooled = fooled_constant_volume(NeighborhoodAggregate(3), n0=16)
        result = run_volume_algorithm(g, fooled)
        assert result.outputs[(1, 0)] == 3

    def test_smallest_volume_n0(self):
        from repro.volume import smallest_volume_n0

        n0 = smallest_volume_n0(lambda n: 3, max_degree=3, checking_radius=1)
        assert 3 ** 2 * 4 <= n0 / 3 + 1  # the defining inequality holds at n0


class TestLCA:
    def test_lca_requires_canonical_ids(self):
        with pytest.raises(SimulationError):
            LCAOracle(path(3), None, ids=[2, 3, 4])

    def test_far_probe_counts(self):
        g = path(4)
        oracle = LCAOracle(g, None, ids=[1, 2, 3, 4])
        node = oracle.far_probe(3)
        assert node == 2
        assert oracle.far_probe_count == 1
        with pytest.raises(ProbeError):
            oracle.far_probe(99)

    def test_run_lca_with_volume_algorithm(self):
        g = path(10)
        inputs = orient_path_inputs(g)
        result = run_lca_algorithm(g, ChainColeVishkin(), inputs=inputs)
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(
            problem, g, HalfEdgeLabeling.constant(g, NO), result.outputs
        )
        assert result.far_probes_used == 0

    def test_range_padding_increases_budget(self):
        inner = ChainColeVishkin()
        padded = far_probe_free_equivalent(inner, id_exponent=3)
        assert padded.probes(100) == inner.probes(100**3)

    def test_range_padded_algorithm_handles_polynomial_ids(self):
        g = cycle(9)
        inputs = orient_path_inputs(g)
        padded = far_probe_free_equivalent(ChainColeVishkin(id_exponent=1))
        result = run_volume_algorithm(
            g, padded, inputs=inputs, ids=random_ids(g, seed=7, exponent=3)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(
            problem, g, HalfEdgeLabeling.constant(g, NO), result.outputs
        )
