"""Exhaustive order-invariance checks (Definitions 2.7 and 2.10).

The runtime checkers sample order-preserving reassignments; these tests
back them with *exhaustive* quantification on small instances: every
assignment of distinct identifiers to a 4-node path, grouped by relative
order — outputs must be constant within each group for order-invariant
algorithms and must differ somewhere for genuinely order-sensitive ones.
"""

import itertools

import pytest

from repro.graphs import cycle, path, star
from repro.local import (
    check_order_invariance,
    fooled_constant_algorithm,
    run_local_algorithm,
    smallest_valid_n0,
)
from repro.local.algorithms import TwoHopMaxDegree
from repro.local.model import LocalAlgorithm


class LocalLeader(LocalAlgorithm):
    """Order-invariant by construction: compares IDs, never reads them."""

    name = "local-leader"

    def radius(self, n):
        return 1

    def run(self, ctx):
        ball = ctx.ball(1)
        is_leader = ball.id_rank(0) == ball.num_nodes - 1
        return {p: int(is_leader) for p in range(ctx.degree)}


class ParityOfId(LocalAlgorithm):
    """Order-sensitive: reads a raw identifier bit."""

    name = "parity-of-id"

    def radius(self, n):
        return 0

    def run(self, ctx):
        return {p: ctx.my_id % 2 for p in range(ctx.degree)}


def all_outputs(graph, algorithm, ids):
    result = run_local_algorithm(graph, algorithm, ids=list(ids))
    return tuple(sorted(result.outputs.items()))


VALUE_SCALES = [
    (1, 2, 3, 4),
    (10, 20, 30, 40),
    (5, 17, 90, 1000),
]


class TestExhaustiveLocalInvariance:
    def test_local_leader_depends_only_on_order(self):
        graph = path(4)
        for permutation in itertools.permutations(range(4)):
            reference = None
            for scale in VALUE_SCALES:
                ids = [scale[permutation[v]] for v in range(4)]
                outputs = all_outputs(graph, LocalLeader(), ids)
                if reference is None:
                    reference = outputs
                else:
                    assert outputs == reference, (permutation, scale)

    def test_local_leader_output_changes_with_order(self):
        graph = path(4)
        increasing = all_outputs(graph, LocalLeader(), [1, 2, 3, 4])
        decreasing = all_outputs(graph, LocalLeader(), [4, 3, 2, 1])
        assert increasing != decreasing

    def test_parity_is_not_order_invariant_exhaustively(self):
        graph = path(3)
        violated = False
        for permutation in itertools.permutations(range(3)):
            outputs = set()
            for scale in ((1, 2, 3), (2, 4, 6)):
                ids = [scale[permutation[v]] for v in range(3)]
                outputs.add(all_outputs(graph, ParityOfId(), ids))
            if len(outputs) > 1:
                violated = True
        assert violated

    def test_checker_agrees_with_exhaustive_verdicts(self):
        graph = path(4)
        assert check_order_invariance(LocalLeader(), graph, ids=[3, 1, 4, 2])
        assert check_order_invariance(TwoHopMaxDegree(), graph, ids=[3, 1, 4, 2])
        assert not check_order_invariance(
            ParityOfId(), graph, ids=[3, 1, 4, 2], trials=10
        )


class TestFooling:
    def test_fooled_leader_still_order_invariant_and_correct(self):
        inner = LocalLeader()
        fooled = fooled_constant_algorithm(inner, n0=8)
        graph = cycle(12)
        ids = [7, 3, 11, 1, 9, 5, 12, 2, 10, 4, 8, 6]
        result = run_local_algorithm(graph, fooled, ids=ids)
        # Exactly the local maxima output 1.
        for v in range(12):
            expected = int(all(ids[v] > ids[u] for u in graph.neighbors(v)))
            assert result.outputs[(v, 0)] == expected
        assert check_order_invariance(fooled, graph, ids=ids)

    def test_smallest_valid_n0_inequality(self):
        n0 = smallest_valid_n0(lambda n: 1, max_degree=3, checking_radius=1)
        assert 3 ** 2 * 2 <= n0 / 3
        # Minimality: n0 - 1 violates the inequality.
        assert 3 ** 2 * 2 > (n0 - 1) / 3

    def test_fooled_budget_is_constant(self):
        fooled = fooled_constant_algorithm(LocalLeader(), n0=10)
        assert fooled.radius(10**9) == LocalLeader().radius(10)


class TestVolumeExhaustive:
    def test_aggregate_depends_only_on_order_exhaustively(self):
        from repro.volume import NeighborhoodAggregate, run_volume_algorithm

        graph = star(3)
        for permutation in itertools.permutations(range(4)):
            reference = None
            for scale in VALUE_SCALES:
                ids = [scale[permutation[v]] for v in range(4)]
                result = run_volume_algorithm(
                    graph, NeighborhoodAggregate(3), ids=ids
                )
                outputs = tuple(sorted(result.outputs.items()))
                if reference is None:
                    reference = outputs
                else:
                    assert outputs == reference
