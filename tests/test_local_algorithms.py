"""Tests for the classic LOCAL algorithms (Linial, CV, MIS, matching, ...)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    HalfEdgeLabeling,
    caterpillar,
    complete_regular_tree,
    cycle,
    path,
    random_ids,
    random_tree,
    skip_list_graph,
    star,
)
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm
from repro.local.algorithms import (
    AdaptivePeeling,
    ColeVishkinColoring,
    ColorClassMIS,
    GreedyMatchingFromColoring,
    LinialColoring,
    ShortcutColeVishkin,
    TwoHopMaxDegree,
    skip_list_inputs,
)
from repro.local.algorithms.cole_vishkin import orient_path_inputs, palette_schedule
from repro.local.algorithms.linial import reduction_schedule
from repro.utils.numbers import iterated_log

NO = catalog.NO_INPUT


def no_inputs(graph):
    return HalfEdgeLabeling.constant(graph, NO)


class TestSchedules:
    def test_linial_schedule_shrinks(self):
        schedule = reduction_schedule(10**9, max_degree=3)
        palettes = [entry[2] for entry in schedule]
        assert palettes == sorted(palettes, reverse=True)
        assert palettes[-1] <= 100

    def test_linial_schedule_loglog_star_length(self):
        # Schedule length grows like log*: doubling the exponent of the
        # palette adds O(1) rounds.
        small = len(reduction_schedule(2**16, 3))
        large = len(reduction_schedule(2**64, 3))
        assert large <= small + 3

    def test_cv_palette_schedule_reaches_six(self):
        schedule = palette_schedule(10**9)
        assert schedule[-1] == 6
        assert len(schedule) <= 10  # ~log* of 10^9 plus slack

    def test_cv_rounds_grow_like_log_star(self):
        algorithm = ColeVishkinColoring()
        assert algorithm.rounds(2**8) <= algorithm.rounds(2**64) <= algorithm.rounds(2**8) + 4


class TestLinialColoring:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_coloring_on_random_trees(self, seed):
        graph = random_tree(40, max_degree=3, seed=seed)
        algorithm = LinialColoring(max_degree=3)
        result = run_local_algorithm(
            graph, algorithm, ids=random_ids(graph, seed=seed)
        )
        problem = catalog.coloring(4, max_degree=3)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)

    def test_valid_on_cycle(self):
        graph = cycle(30)
        result = run_local_algorithm(graph, LinialColoring(2), ids=random_ids(graph, seed=1))
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)

    def test_locality_grows_slowly(self):
        # Measured radius at n and n^2 differs by O(1): the log* signature.
        small = run_local_algorithm(
            path(40), LinialColoring(2), ids=random_ids(path(40), seed=0)
        )
        large = run_local_algorithm(
            path(400), LinialColoring(2), ids=random_ids(path(400), seed=0)
        )
        assert large.max_radius_used <= small.max_radius_used + 4

    def test_requires_ids(self):
        from repro.exceptions import AlgorithmError

        with pytest.raises(AlgorithmError):
            run_local_algorithm(path(4), LinialColoring(2))


class TestColeVishkin:
    @pytest.mark.parametrize("n", [2, 5, 24])
    def test_three_colors_path(self, n):
        graph = path(n)
        inputs = orient_path_inputs(graph)
        result = run_local_algorithm(
            graph, ColeVishkinColoring(), inputs=inputs, ids=random_ids(graph, seed=2)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)

    @pytest.mark.parametrize("n", [3, 8, 31])
    def test_three_colors_cycle(self, n):
        graph = cycle(n)
        inputs = orient_path_inputs(graph)
        result = run_local_algorithm(
            graph, ColeVishkinColoring(), inputs=inputs, ids=random_ids(graph, seed=5)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=40), st.integers(min_value=0, max_value=100))
    def test_property_any_ids_any_size(self, n, seed):
        graph = cycle(n)
        inputs = orient_path_inputs(graph)
        result = run_local_algorithm(
            graph, ColeVishkinColoring(), inputs=inputs, ids=random_ids(graph, seed=seed)
        )
        problem = catalog.coloring(3, max_degree=2)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)


class TestMISAndMatching:
    @pytest.mark.parametrize("builder, seed", [
        (lambda: random_tree(30, 3, seed=1), 1),
        (lambda: cycle(17), 2),
        (lambda: star(3), 3),
        (lambda: caterpillar(6, 1), 4),
    ])
    def test_mis_valid(self, builder, seed):
        graph = builder()
        delta = max(3, graph.max_degree)
        algorithm = ColorClassMIS(LinialColoring(max_degree=delta))
        result = run_local_algorithm(graph, algorithm, ids=random_ids(graph, seed=seed))
        problem = catalog.mis(delta)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)

    @pytest.mark.parametrize("builder, seed", [
        (lambda: random_tree(30, 3, seed=5), 1),
        (lambda: cycle(16), 2),
        (lambda: complete_regular_tree(3, 3), 3),
        (lambda: path(9), 4),
    ])
    def test_matching_valid(self, builder, seed):
        graph = builder()
        delta = max(3, graph.max_degree)
        algorithm = GreedyMatchingFromColoring(
            LinialColoring(max_degree=delta), max_degree=delta
        )
        result = run_local_algorithm(graph, algorithm, ids=random_ids(graph, seed=seed))
        problem = catalog.maximal_matching(delta)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)

    def test_mis_with_cv_on_cycles(self):
        graph = cycle(20)
        algorithm = ColorClassMIS(ColeVishkinColoring())
        result = run_local_algorithm(
            graph,
            algorithm,
            inputs=orient_path_inputs(graph),
            ids=random_ids(graph, seed=9),
        )
        problem = catalog.mis(2)
        assert is_valid_solution(problem, graph, no_inputs(graph), result.outputs)


class TestConstantAndLogClasses:
    def test_two_hop_max_degree(self):
        graph = star(4)
        result = run_local_algorithm(graph, TwoHopMaxDegree())
        assert result.max_radius_used == 2
        for h in graph.half_edges():
            assert result.outputs[h] == 4

    def test_adaptive_peeling_levels_on_balanced_tree(self):
        graph = complete_regular_tree(3, 4)
        result = run_local_algorithm(
            graph, AdaptivePeeling(), ids=random_ids(graph, seed=0)
        )
        # Leaves peel at level 1; the root peels last.
        leaf = next(v for v in range(graph.num_nodes) if graph.degree(v) == 1)
        assert result.outputs[(leaf, 0)] == 1
        assert result.outputs[(0, 0)] >= 2
        assert result.max_radius_used <= 2 * result.outputs[(0, 0)] + 2

    def test_adaptive_peeling_log_growth_on_paths(self):
        # With random IDs, compress keeps the peeling depth logarithmic.
        small = run_local_algorithm(
            path(32), AdaptivePeeling(), ids=random_ids(path(32), seed=1)
        )
        large = run_local_algorithm(
            path(256), AdaptivePeeling(), ids=random_ids(path(256), seed=1)
        )
        assert large.max_radius_used <= 3 * small.max_radius_used + 8


class TestShortcutColeVishkin:
    @pytest.mark.parametrize("n", [17, 64, 200])
    def test_valid_path_coloring(self, n):
        graph = skip_list_graph(n)
        inputs = skip_list_inputs(graph)
        result = run_local_algorithm(
            graph,
            ShortcutColeVishkin(),
            inputs=inputs,
            ids=random_ids(graph, seed=4),
        )
        # Check the level-0 path edges are properly colored.
        for v in range(n - 1):
            port_v = graph.port_to(v, v + 1)
            port_u = graph.port_to(v + 1, v)
            assert result.outputs[(v, port_v)] != result.outputs[(v + 1, port_u)]

    def test_locality_is_exponentially_smaller_than_cv(self):
        n = 512
        graph = skip_list_graph(n)
        shortcut = run_local_algorithm(
            graph,
            ShortcutColeVishkin(),
            inputs=skip_list_inputs(graph),
            ids=random_ids(graph, seed=6),
        )
        assert shortcut.max_radius_used <= 2 * iterated_log(n**3) + 9
        # The separation is asymptotic (real log* values are tiny), so we
        # exhibit the t -> O(log t) deflation via the round override: a
        # path problem needing t CV rounds costs only O(log t) radius here.
        for t in (16, 256, 4096):
            deflated = ShortcutColeVishkin(cv_rounds_override=t).radius(10**6)
            assert deflated <= 2 * (t.bit_length() + 3) + 3
            assert deflated < t

    def test_override_still_produces_valid_coloring(self):
        n = 300
        graph = skip_list_graph(n)
        result = run_local_algorithm(
            graph,
            ShortcutColeVishkin(cv_rounds_override=12),
            inputs=skip_list_inputs(graph),
            ids=random_ids(graph, seed=11),
        )
        for v in range(n - 1):
            port_v = graph.port_to(v, v + 1)
            port_u = graph.port_to(v + 1, v)
            assert result.outputs[(v, port_v)] != result.outputs[(v + 1, port_u)]
