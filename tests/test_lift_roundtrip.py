"""Property: serialized algorithm descriptions round-trip bit-identically.

A ``"constant"`` certificate encodes the synthesized
:class:`~repro.roundelim.lift.LiftedAlgorithm` as data (problem chain +
intermediates + 0-round table).  The property under test: rebuilding the
algorithm from the *serialized and re-parsed* certificate and re-running
it on the recorded instances reproduces the recorded outputs exactly —
not merely some valid solution.  Exercised over planted-solvable random
problems (guaranteed ``"constant"``) and over whatever constant verdicts
plain random problems happen to produce.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lcl import catalog
from repro.lcl.random_problems import random_lcl, solvable_random_lcl
from repro.roundelim.gap import speedup
from repro.verify import Certificate, check_certificate, rebuild_algorithm, replay_certificate
from repro.verify.transcript import verify_algorithm_on_random_forests


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_planted_solvable_certificates_replay_bit_identically(seed):
    problem = solvable_random_lcl(seed)
    result = speedup(problem, max_steps=2)
    assert result.status == "constant", (
        f"planted positive control {problem.name} was not classified constant"
    )
    assert result.constant_rounds == 0
    certificate = result.certify(trials=2, seed=seed)
    # Round trip through the wire format before rebuilding: the rebuilt
    # algorithm must come from pure data, not from live engine objects.
    reparsed = Certificate.from_json(certificate.to_json())
    assert reparsed.to_json() == certificate.to_json()
    assert replay_certificate(reparsed) == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_constant_verdicts_replay_bit_identically(seed):
    problem = random_lcl(seed)
    result = speedup(problem, max_steps=2)
    if result.status != "constant":
        return  # property only concerns synthesized algorithms
    certificate = Certificate.from_json(result.certify(trials=2).to_json())
    outcome = check_certificate(certificate)
    assert outcome.ok, outcome.errors
    assert replay_certificate(certificate) == []


def test_rebuilt_algorithm_generalizes_beyond_recorded_trials():
    """The rebuilt algorithm is the real thing, not a transcript lookup:
    it must also solve *fresh* seeded instances it has never seen."""
    result = speedup(catalog.echo(3), max_steps=2)
    certificate = Certificate.from_json(result.certify(trials=1, seed=0).to_json())
    algorithm = rebuild_algorithm(certificate)
    assert verify_algorithm_on_random_forests(
        result.problem, algorithm, trials=3, seed=12345
    )


def test_multi_step_lift_round_trips():
    """echo2 needs a genuinely composed (2-round) lift chain."""
    result = speedup(catalog.echo2(), max_steps=3)
    assert result.status == "constant" and result.constant_rounds >= 2
    certificate = Certificate.from_json(result.certify(trials=2).to_json())
    assert len(certificate.body["chain"]["problems"]) == result.constant_rounds + 1
    assert replay_certificate(certificate) == []
