"""Luby's MIS, the Lemma 4.2 miniature, and serialization fuzzing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import HalfEdgeLabeling, cycle, path, random_ids, random_tree, star
from repro.lcl import catalog, random_lcl
from repro.lcl.fmt import parse, serialize
from repro.local import run_local_algorithm
from repro.local.randomized import LubyMIS, estimate_local_failure
from repro.volume import NeighborhoodAggregate
from repro.volume.order_invariant import find_order_invariant_id_subset

NO = catalog.NO_INPUT


class TestLubyMIS:
    def test_joined_nodes_are_independent(self):
        graph = random_tree(30, 3, seed=2)
        result = run_local_algorithm(
            graph, LubyMIS(phases=4), ids=random_ids(graph, seed=1), seed=5
        )
        in_set = {
            v
            for v in range(graph.num_nodes)
            if result.outputs.get((v, 0)) == "M"
        }
        for v in in_set:
            assert not (set(graph.neighbors(v)) & in_set)

    def test_pointers_hit_the_set(self):
        graph = cycle(24)
        result = run_local_algorithm(
            graph, LubyMIS(phases=5), ids=random_ids(graph, seed=3), seed=8
        )
        for v in range(graph.num_nodes):
            for port in range(graph.degree(v)):
                if result.outputs[(v, port)] == "P":
                    neighbor = graph.neighbor(v, port)
                    assert result.outputs[(neighbor, 0)] == "M"

    def test_local_failure_decays_with_phases(self):
        graph = cycle(30)
        seeds = list(range(30))
        impatient = estimate_local_failure(
            catalog.mis(2), graph, LubyMIS(phases=1), seeds, ids=random_ids(graph, seed=4)
        )
        patient = estimate_local_failure(
            catalog.mis(2), graph, LubyMIS(phases=6), seeds, ids=random_ids(graph, seed=4)
        )
        assert patient["local"] < impatient["local"]

    def test_enough_phases_usually_finish_small_graphs(self):
        graph = path(10)
        estimate = estimate_local_failure(
            catalog.mis(2),
            graph,
            LubyMIS(phases=10),
            seeds=list(range(20)),
            ids=random_ids(graph, seed=6),
        )
        assert estimate["global"] <= 0.2


class TestLemma42Miniature:
    def test_order_sensitive_algorithm_has_invariant_subset(self):
        """Parity-of-ID is order-sensitive on the full universe, but some
        ID subset (e.g. an all-even one) makes it order-invariant — the
        executable content of Lemma 4.2 at toy scale."""
        from repro.volume.model import VolumeAlgorithm, VolumeQuery

        class ParityAggregate(VolumeAlgorithm):
            name = "parity-aggregate"

            def probes(self, n):
                return 0

            def answer(self, query):
                value = query.start_tuple.identifier % 2
                return {p: value for p in range(query.start_tuple.degree)}

        graph = path(3)
        subset = find_order_invariant_id_subset(
            ParityAggregate(), graph, universe=range(1, 10), size=4
        )
        assert subset is not None
        parities = {value % 2 for value in subset}
        assert len(parities) == 1  # constant parity = order-invariant

    def test_invariant_algorithm_accepts_first_subset(self):
        graph = star(2)
        subset = find_order_invariant_id_subset(
            NeighborhoodAggregate(2), graph, universe=range(1, 7), size=4
        )
        assert subset == (1, 2, 3, 4)


class TestSerializationFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_random_problems_roundtrip(self, seed):
        problem = random_lcl(seed, num_labels=4, max_degree=3, num_inputs=2)
        assert parse(serialize(problem)) == problem

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_property_summary_never_crashes(self, seed):
        problem = random_lcl(seed, num_labels=3, max_degree=2, num_inputs=3)
        text = problem.summary()
        assert problem.name in text
