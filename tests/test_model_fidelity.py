"""Model-fidelity tests: information boundaries and literal definitions.

These tests check properties of the *models*, not of specific algorithms:

* the LOCAL simulator's ball is an information boundary — mutating the
  graph strictly outside a node's declared radius cannot change that
  node's output (Definition 2.1's defining property);
* the functional VOLUME form of Definition 2.9 (explicit ``f_{n,i}``
  probe functions) is interchangeable with the imperative adapter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, HalfEdgeLabeling, path, random_ids
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm
from repro.local.algorithms import LinialColoring
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.volume import (
    ChainColeVishkin,
    FunctionalVolumeAlgorithm,
    run_volume_algorithm,
)

NO = catalog.NO_INPUT


class TestInformationBoundary:
    def _extended_path(self, n, extra_edges):
        """A path on n nodes plus a pendant subtree glued to the far end."""
        edges = [(i, i + 1) for i in range(n - 1)]
        next_index = n
        for _ in range(extra_edges):
            edges.append((n - 1, next_index))
            next_index += 1
        return Graph(next_index, edges)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=50))
    def test_outputs_at_far_nodes_unchanged_by_distant_mutation(
        self, extra_edges, seed
    ):
        """Add structure beyond node 0's declared radius; its output stays."""
        n = 40
        # Δ=2 keeps the Linial retirement sweep (palette q² = 25) short
        # enough that node 0's ball ends strictly before the glue point.
        algorithm = LinialColoring(max_degree=2)
        radius = algorithm.radius(n)
        assert radius < n - 1, "test premise: the mutation is outside the ball"

        base = path(n)
        mutated = self._extended_path(n, extra_edges)
        base_ids = random_ids(base, seed=seed)
        mutated_ids = base_ids + [
            max(base_ids) + 1 + i for i in range(extra_edges)
        ]
        # Fix the declared n so the algorithm's schedule is identical.
        base_run = run_local_algorithm(
            base, algorithm, ids=base_ids, nodes=[0], declared_n=n
        )
        mutated_run = run_local_algorithm(
            mutated, algorithm, ids=mutated_ids, nodes=[0], declared_n=n
        )
        for port in range(base.degree(0)):
            assert base_run.outputs[(0, port)] == mutated_run.outputs[(0, port)]

    def test_ball_signature_agrees_across_host_graphs(self):
        from repro.graphs.balls import extract_ball

        base = path(20)
        mutated = self._extended_path(20, 2)
        ids = list(range(1, 23))
        sig_base = extract_ball(base, 0, 5, ids=ids[:20]).signature()
        sig_mutated = extract_ball(mutated, 0, 5, ids=ids).signature()
        assert sig_base == sig_mutated


class TestFunctionalVolumeForm:
    def test_walk_the_successor_chain_functionally(self):
        """Re-express 'probe 3 successors, output the last ID' as f_{n,i}."""
        from repro.local.algorithms.cole_vishkin import SUCCESSOR

        def probe_fn(n, i, tuples):
            if i > 3:
                return None
            last = tuples[-1]
            for port, label in enumerate(last.inputs):
                if label == SUCCESSOR:
                    return (len(tuples) - 1, port)
            return None

        def output_fn(n, tuples):
            value = tuples[-1].identifier
            return {port: value for port in range(tuples[0].degree)}

        algorithm = FunctionalVolumeAlgorithm(
            probes_of_n=lambda n: 3,
            probe_fn=probe_fn,
            output_fn=output_fn,
            name="three-hop-id",
        )
        graph = path(8)
        inputs = orient_path_inputs(graph)
        ids = list(range(1, 9))
        result = run_volume_algorithm(graph, algorithm, inputs=inputs, ids=ids)
        # Node 0's three successors end at node 3, whose ID is 4.
        assert result.outputs[(0, 0)] == 4
        # The path end cannot probe further and reports itself.
        assert result.outputs[(7, 0)] == 8
        assert result.max_probes_used <= 3

    def test_functional_form_respects_probe_budget(self):
        from repro.exceptions import ProbeError

        def greedy_probe(n, i, tuples):
            return (0, 0)  # keep re-probing port 0 of the start node

        algorithm = FunctionalVolumeAlgorithm(
            probes_of_n=lambda n: 2,
            probe_fn=greedy_probe,
            output_fn=lambda n, tuples: {0: len(tuples)},
            name="greedy",
        )
        graph = path(2)
        result = run_volume_algorithm(graph, algorithm, ids=[1, 2])
        # The driver stops exactly at the declared budget: 2 probes, so
        # the history holds the start tuple plus two revealed tuples.
        assert result.outputs[(0, 0)] == 3
        assert result.max_probes_used == 2

    def test_history_is_the_definition_2_9_tuple_sequence(self):
        seen_histories = []

        def probe_fn(n, i, tuples):
            seen_histories.append(tuple(t.identifier for t in tuples))
            return (len(tuples) - 1, 0)

        algorithm = FunctionalVolumeAlgorithm(
            probes_of_n=lambda n: 2,
            probe_fn=probe_fn,
            output_fn=lambda n, tuples: {
                port: None for port in range(tuples[0].degree)
            },
            name="historian",
        )
        graph = path(4)
        run_volume_algorithm(graph, algorithm, ids=[10, 20, 30, 40])
        # For the query at node 0: histories grow one tuple per probe.
        assert seen_histories[0] == (10,)
        assert seen_histories[1] == (10, 20)
