"""Property tests: the iterative-replay equivalence (message passing = balls).

The :class:`IterativeAlgorithm` machinery rests on one claim: replaying a
synchronous schedule inside each node's radius-``T`` ball computes exactly
the state the global synchronous execution would.  These tests check that
claim directly by comparing the replay against a straightforward global
simulator on random trees and cycles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import cycle, path, random_ids, random_tree
from repro.local import IterativeAlgorithm, run_local_algorithm


class SumOfIdsFlood(IterativeAlgorithm):
    """State: sum over ids seen so far via repeated neighbor folding."""

    name = "sum-flood"
    finalize_lookahead = 0

    def __init__(self, rounds):
        self._rounds = rounds

    def rounds(self, n):
        return self._rounds

    def initial_state(self, node_id, degree, inputs, bits, n):
        return (node_id, node_id)

    def step(self, round_index, state, neighbor_states, n):
        # Deliberately non-idempotent: accumulates with multiplicity, so
        # any replay discrepancy (wrong rounds, wrong neighbors) shows up.
        my_id, total = state
        folded = total + sum(s[1] for s in neighbor_states if s is not None)
        return (my_id, folded)

    def finalize(self, state, neighbor_states, degree, inputs, n):
        return {p: state[1] for p in range(degree)}


def global_simulation(graph, ids, rounds):
    states = [(i, i) for i in ids]
    for _ in range(rounds):
        nxt = []
        for v in range(graph.num_nodes):
            total = states[v][1] + sum(states[u][1] for u in graph.neighbors(v))
            nxt.append((states[v][0], total))
        states = nxt
    return [s[1] for s in states]


class TestReplayEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=18),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=4),
    )
    def test_property_matches_global_simulation_on_trees(self, n, seed, rounds):
        graph = random_tree(n, max_degree=3, seed=seed)
        ids = random_ids(graph, seed=seed)
        expected = global_simulation(graph, ids, rounds)
        result = run_local_algorithm(graph, SumOfIdsFlood(rounds), ids=ids)
        for v in range(graph.num_nodes):
            for port in range(graph.degree(v)):
                assert result.outputs[(v, port)] == expected[v]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=3, max_value=15), st.integers(min_value=0, max_value=4))
    def test_property_matches_on_cycles(self, n, rounds):
        graph = cycle(n)
        ids = random_ids(graph, seed=n)
        expected = global_simulation(graph, ids, rounds)
        result = run_local_algorithm(graph, SumOfIdsFlood(rounds), ids=ids)
        for v in range(graph.num_nodes):
            assert result.outputs[(v, 0)] == expected[v]

    def test_declared_radius_equals_rounds(self):
        graph = path(9)
        result = run_local_algorithm(
            graph, SumOfIdsFlood(3), ids=random_ids(graph, seed=1)
        )
        assert result.declared_radius == 3
        assert result.max_radius_used == 3
