"""Tests for rake-and-compress 3-coloring (the Θ(log n) class witness)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    HalfEdgeLabeling,
    caterpillar,
    complete_regular_tree,
    disjoint_union,
    path,
    random_forest,
    random_ids,
    random_tree,
    star,
)
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm
from repro.local.algorithms import LinialColoring, RakeCompressColoring

NO = catalog.NO_INPUT


def check(graph, seed=0):
    result = run_local_algorithm(
        graph, RakeCompressColoring(), ids=random_ids(graph, seed=seed)
    )
    problem = catalog.coloring(3, max_degree=max(1, graph.max_degree))
    assert is_valid_solution(
        problem, graph, HalfEdgeLabeling.constant(graph, NO), result.outputs
    )
    return result


class TestCorrectness:
    @pytest.mark.parametrize(
        "builder, seed",
        [
            (lambda: path(2), 0),
            (lambda: path(3), 1),
            (lambda: star(3), 2),
            (lambda: caterpillar(5, 1), 3),
            (lambda: complete_regular_tree(3, 3), 4),
            (lambda: random_tree(40, 3, seed=6), 5),
            (lambda: random_forest([9, 5, 2], 3, seed=7), 6),
        ],
    )
    def test_valid_three_coloring(self, builder, seed):
        check(builder(), seed)

    def test_two_node_tree_consistency(self):
        # The mutual-anchor hazard: both endpoints must agree on who was
        # peeled first (ID priority), under every ID order.
        graph = path(2)
        for ids in ([1, 2], [2, 1], [5, 100], [100, 5]):
            result = run_local_algorithm(graph, RakeCompressColoring(), ids=ids)
            assert result.outputs[(0, 0)] != result.outputs[(1, 0)]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=100))
    def test_property_random_trees_and_ids(self, n, seed):
        graph = random_tree(n, max_degree=3, seed=seed)
        check(graph, seed=seed)


class TestLocality:
    def test_logarithmic_growth_on_paths(self):
        small = check(path(64), seed=3).max_radius_used
        large = check(path(512), seed=3).max_radius_used
        # Eightfold size, bounded locality growth (doubling granularity).
        assert large <= 4 * small
        assert large < 512 / 4  # far from global

    def test_slower_than_linial_faster_than_global(self):
        # 3 colors genuinely cost more locality than Δ+1 colors: the
        # Θ(log* n) vs Θ(log n) separation in the measured direction.
        graph = path(256)
        three = check(graph, seed=1).max_radius_used
        four = run_local_algorithm(
            graph, LinialColoring(2), ids=random_ids(graph, seed=1)
        )
        # (Linial's radius is a large constant; the point is growth, so we
        # only sanity-check both are far below n.)
        assert three < 128 and four.max_radius_used < 128
