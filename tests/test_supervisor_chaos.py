"""Chaos suite for supervised campaigns: the end-to-end recovery contract.

A campaign run under injected ``sim_crash`` / ``sim_oom`` /
``journal_torn`` faults — crash-isolated, retried, journaled,
interrupted, and resumed — must yield per-cell results **bit-identical**
to a clean serial run, with every unrecoverable cell surfaced as a
``QUARANTINED`` row carrying its traceback, and with
``gap_violations`` provably ignoring quarantined rows.

Everything here is deterministic: fault decisions are pure functions of
``(REPRO_FAULTS_SEED, kind, occurrence)``, and each cell's RNG is a pure
function of ``(campaign seed, cell id)`` rebuilt per attempt.
"""

import pytest

from repro.exceptions import SupervisorError
from repro.supervisor import (
    CampaignConfig,
    CellSpec,
    open_journal,
    register_runner,
    run_campaign,
)
from repro.supervisor.measurements import assemble_panel, plan_panel
from repro.utils import faults

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
    faults.reset_faults()
    yield
    faults.reset_faults()


@register_runner("chaos.bits")
def _bits(spec, rng):
    # A value that depends on the per-cell RNG stream: any attempt that
    # consumed stale generator state would visibly diverge.
    return rng.child("measurement").bits(48)


@register_runner("chaos.broken")
def _broken(spec, rng):
    raise ZeroDivisionError(f"irreparably broken cell n={spec.n}")


CELLS = [CellSpec.make("chaos.bits", "p", n, seed=n) for n in range(1, 9)]

CHAOS = {"sim_crash": 0.3, "sim_oom": 0.2, "journal_torn": 0.15}


def clean_serial_values():
    """The clean serial baseline: inline isolation, no faults, no journal."""
    faults.configure_faults(None)
    report = run_campaign(CELLS, CampaignConfig(seed=7, isolation="inline"))
    assert not report.quarantined
    faults.reset_faults()
    return report.values()


class TestChaosRecovery:
    def test_faulty_run_bit_identical_to_clean_serial(self, tmp_path):
        baseline = clean_serial_values()
        # seed=9: several cells crash/OOM and are retried, none beyond
        # the retry budget (deterministic — see module docstring).
        faults.configure_faults(CHAOS, seed=9)
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        config = CampaignConfig(seed=7, isolation="process", timeout=60.0, retries=3)
        report = run_campaign(CELLS, config, journal=journal)
        assert not report.quarantined, [r.reason for r in report.quarantined]
        assert any(result.attempts > 1 for result in report.results)
        assert report.values() == baseline

    def test_interrupted_then_resumed_run_bit_identical(self, tmp_path):
        baseline = clean_serial_values()
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        config = CampaignConfig(seed=7, isolation="process", timeout=60.0, retries=3)
        # First pass dies mid-campaign (here: only ever sees a prefix of
        # the cells) while faults tear journal lines and crash cells.
        faults.configure_faults(CHAOS, seed=23)
        run_campaign(CELLS[:5], config, journal=journal)
        # The resumed pass runs under *different* fault draws — recorded
        # cells restore from the journal, torn ones recompute.
        faults.configure_faults(CHAOS, seed=24)
        resumed = run_campaign(CELLS, config, journal=journal, resume=True)
        assert not resumed.quarantined, [r.reason for r in resumed.quarantined]
        assert resumed.values() == baseline
        assert resumed.resumed_count > 0

    def test_torn_journal_costs_recomputation_never_wrong_values(self, tmp_path):
        baseline = clean_serial_values()
        # journal_torn at a high rate: most lines are torn, so the resume
        # restores few cells — but every value still matches the baseline.
        faults.configure_faults({"journal_torn": 0.8}, seed=5)
        journal = open_journal(CELLS, seed=7, directory=tmp_path)
        config = CampaignConfig(seed=7, isolation="inline")
        run_campaign(CELLS, config, journal=journal)
        resumed = run_campaign(CELLS, config, journal=journal, resume=True)
        assert resumed.values() == baseline
        assert resumed.resumed_count < len(CELLS)

    def test_unrecoverable_cells_quarantined_with_traceback(self, tmp_path):
        mixed = CELLS[:3] + [CellSpec.make("chaos.broken", "p", 99, seed=0)]
        # No injected faults here: the quarantine record must carry the
        # *cell's own* traceback, not an injection's.
        faults.configure_faults(None)
        journal = open_journal(mixed, seed=7, directory=tmp_path)
        config = CampaignConfig(seed=7, isolation="process", timeout=60.0, retries=2)
        report = run_campaign(mixed, config, journal=journal)
        assert len(report.quarantined) == 1
        bad = report.quarantined[0]
        assert bad.spec.runner == "chaos.broken"
        assert bad.classification == "error"
        assert bad.attempts == 3
        assert "ZeroDivisionError" in bad.traceback
        assert "irreparably broken" in bad.reason
        good = {k: v for k, v in clean_serial_values().items() if k in report.values()}
        assert report.values() == good
        # The quarantine verdict itself survives a resume bit-identically.
        faults.configure_faults(None)
        resumed = run_campaign(mixed, config, journal=journal, resume=True)
        assert resumed.resumed_count == 4
        assert resumed.quarantined[0].traceback == bad.traceback


class TestChaosLandscape:
    def test_landscape_panel_under_chaos_matches_clean_render(self, tmp_path):
        plan = plan_panel("volume", 3)
        faults.configure_faults(None)
        clean = assemble_panel(
            plan, run_campaign(plan.cells, CampaignConfig(isolation="inline"))
        )
        faults.configure_faults(CHAOS, seed=2)
        journal = open_journal(plan.cells, seed=0, directory=tmp_path)
        config = CampaignConfig(isolation="process", timeout=60.0, retries=3)
        chaotic = assemble_panel(
            plan, run_campaign(plan.cells, config, journal=journal)
        )
        assert chaotic.render() == clean.render()
        assert not chaotic.gap_violations()

    def test_quarantined_series_excluded_from_gap_check(self):
        plan = plan_panel("volume", 2)
        report = run_campaign(plan.cells, CampaignConfig(isolation="inline"))
        violations_before = [
            row.problem
            for row in assemble_panel(plan, report).gap_violations()
        ]
        # Kill one whole series: it must become a QUARANTINED row and
        # leave the gap verdict untouched.
        for result in report.results:
            if result.spec.problem == plan.series[1].problem:
                result.status = "QUARANTINED"
                result.classification = "timeout"
        panel = assemble_panel(plan, report)
        assert len(panel.quarantined) == 1
        assert [row.problem for row in panel.gap_violations()] == violations_before
        rendered = panel.render()
        assert "QUARANTINED [timeout]" in rendered
        assert "degraded panel" in rendered


class TestFaultPlanDiscipline:
    def test_sim_fault_draws_are_deterministic(self):
        a = faults.FaultPlan(CHAOS, seed=9)
        b = faults.FaultPlan(CHAOS, seed=9)
        draws_a = [faults.fire_sim_faults(a) for _ in range(50)]
        draws_b = [faults.fire_sim_faults(b) for _ in range(50)]
        assert draws_a == draws_b
        fired = [kinds for kinds in draws_a if kinds]
        assert fired, "chaos rates should fire within 50 attempts"

    def test_resume_without_journal_is_caller_error(self):
        with pytest.raises(SupervisorError):
            run_campaign(CELLS, resume=True)
