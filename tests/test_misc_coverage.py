"""Coverage for small helpers across the package."""

import pytest

import repro
from repro.exceptions import (
    AlgorithmError,
    DecidabilityError,
    GraphError,
    LabelingError,
    ProbeError,
    ProblemDefinitionError,
    ReproError,
    SimulationError,
    UnsolvableError,
)
from repro.graphs import extract_ball, path, star
from repro.utils.multiset import Multiset


class TestExceptionsHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            GraphError,
            LabelingError,
            ProblemDefinitionError,
            SimulationError,
            AlgorithmError,
            UnsolvableError,
            DecidabilityError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_probe_error_is_simulation_error(self):
        assert issubclass(ProbeError, SimulationError)

    def test_catchable_at_the_top(self):
        with pytest.raises(ReproError):
            raise ProbeError("boom")


class TestTopLevelApi:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_speedup_reexport(self):
        result = repro.speedup(repro.catalog.trivial(2))
        assert result.status == "constant"


class TestBallHelpers:
    def test_nodes_at_distance(self):
        ball = extract_ball(path(7), 3, 2)
        assert ball.nodes_at_distance(0) == [0]
        assert len(ball.nodes_at_distance(1)) == 2
        assert len(ball.nodes_at_distance(2)) == 2

    def test_center_accessors(self):
        ball = extract_ball(star(3), 0, 1, ids=[9, 1, 2, 3])
        assert ball.center_degree() == 3
        assert ball.center_id() == 9
        assert ball.center_bits() is None

    def test_id_rank_requires_ids(self):
        ball = extract_ball(path(3), 1, 1)
        with pytest.raises(ValueError):
            ball.id_rank(0)

    def test_signature_mode_validation(self):
        ball = extract_ball(path(3), 1, 1)
        with pytest.raises(ValueError):
            ball.signature(ids="bogus")


class TestMultisetProtocol:
    def test_eq_against_other_types(self):
        assert Multiset("ab").__eq__("ab") is NotImplemented
        assert Multiset("ab") != "ab"

    def test_le_against_other_types(self):
        assert Multiset("ab").__le__("ab") is NotImplemented

    def test_repr_roundtrips_visually(self):
        assert repr(Multiset(["a", "b"])) == "Multiset(['a', 'b'])"


class TestCatalogInvariants:
    def test_every_catalog_problem_well_formed(self):
        for problem in repro.catalog.standard_catalog(3):
            assert problem.sigma_out
            assert problem.degrees()
            # Serializable summaries never crash.
            assert problem.name in problem.summary() or True

    def test_catalog_names_unique(self):
        names = [p.name for p in repro.catalog.standard_catalog(3)]
        assert len(names) == len(set(names))
