from setuptools import setup

# Kept for environments without PEP 660 support (no `wheel` module);
# configuration lives in pyproject.toml.
setup()
