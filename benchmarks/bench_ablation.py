"""Ablation: the engineering choices behind the round elimination engine.

DESIGN.md calls out two solvability-preserving deviations from the
paper's literal constructions — reduced label universes and domination
pruning.  This experiment measures what each buys and verifies that
neither changes any decision:

* alphabet sizes and wall-clock of one f-step with/without domination;
* decisions (0-round solvability at depths 0/1) across the ablation grid;
* literal (``universe_mode="full"``) vs reduced operators on problems
  small enough for the power set.
"""

import time

from conftest import cache_report_lines, write_report

from repro.lcl import catalog
from repro.roundelim.gap import speedup
from repro.roundelim.ops import R, R_bar, simplify
from repro.roundelim.sequence import ProblemSequence

PROBLEMS = [
    ("consensus", lambda: catalog.consensus(3)),
    ("sinkless", lambda: catalog.sinkless_orientation(3)),
    ("echo", lambda: catalog.echo(2)),
    ("echo2", lambda: catalog.echo2()),
    ("mis", lambda: catalog.mis(2)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
]


def run_experiment():
    lines = ["Ablation: domination pruning and reduced universes", ""]
    lines.append(
        f"  {'problem':<12} {'|f| dom':>8} {'|f| nodom':>10} {'t dom':>8} {'t nodom':>9} agree"
    )
    agreement = []
    for name, build in PROBLEMS:
        sizes = {}
        times = {}
        statuses = {}
        for domination in (True, False):
            problem = build()
            start = time.perf_counter()
            try:
                sequence = ProblemSequence(
                    problem, use_domination=domination, max_universe=8192
                )
                sizes[domination] = len(sequence.problem(1).sigma_out)
            except Exception:
                sizes[domination] = -1
            times[domination] = time.perf_counter() - start
            result = speedup(
                problem, max_steps=1, use_domination=domination, max_universe=8192
            )
            statuses[domination] = (result.status, result.constant_rounds)
        agrees = statuses[True] == statuses[False]
        agreement.append((name, agrees))
        lines.append(
            f"  {name:<12} {sizes[True]:>8} {sizes[False]:>10} "
            f"{times[True]:>8.3f} {times[False]:>9.3f} {agrees}"
        )

    lines.append("")
    lines.append("  literal (full power set) vs reduced operators:")
    full_agreement = []
    for name, build in PROBLEMS:
        problem = build()
        if 2 ** len(problem.sigma_out) > 4096:
            lines.append(f"  {name:<12} full mode out of range (by design)")
            continue
        reduced = simplify(R_bar(R(problem)), domination=True)
        intermediate = simplify(R(problem, universe_mode="full"), domination=True)
        literal = simplify(
            R_bar(intermediate, universe_mode="full", max_universe=8192),
            domination=True,
        )
        from repro.roundelim.zero_round import find_zero_round_algorithm

        same = (find_zero_round_algorithm(reduced) is None) == (
            find_zero_round_algorithm(literal) is None
        )
        full_agreement.append((name, same))
        lines.append(
            f"  {name:<12} |reduced f|={len(reduced.sigma_out)} "
            f"|literal f|={len(literal.sigma_out)} decision-agree={same}"
        )
    return agreement, full_agreement, "\n".join(lines)


def test_ablation(once, roundelim_cache):
    agreement, full_agreement, report = once(run_experiment)
    report += "\n" + "\n".join(cache_report_lines(roundelim_cache))
    write_report("ablation", report)
    assert all(agrees for _, agrees in agreement)
    assert all(same for _, same in full_agreement)


def test_kernel_f_step_with_domination(benchmark):
    problem = catalog.mis(2)
    benchmark(lambda: simplify(R_bar(R(problem)), domination=True))


def test_kernel_f_step_without_domination(benchmark):
    problem = catalog.mis(2)
    benchmark(lambda: simplify(R_bar(R(problem)), domination=False))
