"""Experiment LINT-cache: whole-tree analysis, cold vs. warm.

Runs the interprocedural linter over the entire repository twice against
a fresh cache directory.  The cold pass parses every file, extracts
per-function summaries, and populates the per-file cache; the warm pass
replays the cached facts and re-runs only the whole-program judgments
(call-graph resolution, taint propagation, fork-safety and
engine-reachability queries — those are never cached, by design).

Two claims are asserted before any timing is trusted:

* **byte identity** — the text, JSON, and SARIF reports of the cold and
  warm passes are identical, so the cache is observationally invisible;
* **speedup** — the warm pass is at least 5x faster than the cold pass
  (the headline claim ``BENCH_lint.json`` tracks over time).
"""

import json
import time

from conftest import RESULTS_DIR, write_report
from pathlib import Path

from repro.analysis.core import run_lint
from repro.analysis.report import render_json, render_sarif, render_text

REPO = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "examples")
LINT_TRAJECTORY = "BENCH_lint.json"

#: Warm passes are cheap — take the best of a few to shed scheduler
#: noise; the cold pass is timed once (it dominates either way).
WARM_REPETITIONS = 3


def run_experiment(cache_dir):
    paths = [REPO / target for target in TARGETS if (REPO / target).exists()]
    started = time.perf_counter()
    cold = run_lint(paths, root=REPO, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - started
    assert cold.cache_misses == cold.files_scanned, "bench cache dir was not cold"

    warm_seconds = float("inf")
    warm = None
    for _ in range(WARM_REPETITIONS):
        started = time.perf_counter()
        warm = run_lint(paths, root=REPO, cache_dir=cache_dir)
        warm_seconds = min(warm_seconds, time.perf_counter() - started)
    assert warm.cache_hits == warm.files_scanned, "warm pass missed the cache"

    # Byte identity first: a speedup for an analyzer that changed its
    # answer is meaningless.
    for renderer in (render_text, render_json, render_sarif):
        assert renderer(cold) == renderer(warm), "cold/warm reports diverged"

    speedup = cold_seconds / warm_seconds
    rows = [
        {
            "tree": "+".join(TARGETS),
            "files": cold.files_scanned,
            "findings": len(cold.findings),
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(speedup, 2),
        }
    ]
    lines = [
        "LINT-cache: interprocedural lint, cold vs. warm over the whole tree",
        "",
        f"  {'tree':<28} {'files':>6} {'cold':>9} {'warm':>9} {'speedup':>8}",
        f"  {rows[0]['tree']:<28} {rows[0]['files']:>6} "
        f"{cold_seconds:>8.3f}s {warm_seconds:>8.3f}s {speedup:>7.1f}x",
        "",
        f"  findings: {len(cold.findings)} "
        f"(suppressed: {cold.suppressed}, reports byte-identical: yes)",
    ]
    return rows, "\n".join(lines)


def append_lint_trajectory(rows, results_dir=None):
    """Append one entry to the ``BENCH_lint.json`` speedup trajectory."""
    directory = results_dir or RESULTS_DIR
    directory.mkdir(exist_ok=True)
    target = directory / LINT_TRAJECTORY
    trajectory = []
    if target.exists():
        trajectory = json.loads(target.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "rows": rows,
        }
    )
    target.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return target


def test_lint_warm_cache_speedup(once, tmp_path):
    rows, report = once(run_experiment, tmp_path / "lint-bench-cache")
    write_report("lint", report)
    append_lint_trajectory(rows)

    (row,) = rows
    assert row["files"] > 100, "bench should cover the real tree"
    assert row["speedup"] >= 5.0, f"warm-cache speedup regressed: {row}"
