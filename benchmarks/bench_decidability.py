"""Experiment D-paths: the §1.4 decidability procedures.

Regenerates the decidable trichotomy on directed paths/cycles for the
catalog problems (O(1) / Θ(log* n) / Θ(n) / unsolvable), times the
automaton classification on random LCLs, and runs the Question 1.7
semidecision on both sides of the gap.
"""

import pytest
from conftest import cache_report_lines, write_report

from repro.decidability import (
    classify_cycle_problem,
    classify_path_problem,
    semidecide_constant_time,
)
from repro.lcl import catalog
from repro.lcl.random_problems import random_lcl

EXPECTED_CYCLES = [
    ("trivial", lambda: catalog.trivial(2), "O(1)"),
    ("consensus", lambda: catalog.consensus(2), "O(1)"),
    ("3-coloring", lambda: catalog.coloring(3, 2), "Theta(log* n)"),
    ("mis", lambda: catalog.mis(2), "Theta(log* n)"),
    ("maximal-matching", lambda: catalog.maximal_matching(2), "Theta(log* n)"),
    ("2-coloring", lambda: catalog.two_coloring(2), "Theta(n)"),
    ("source-sink-alternation", lambda: catalog.edge_orientation_consistent(2), "Theta(n)"),
]


def run_experiment():
    lines = ["D-paths: decidable classification on directed paths/cycles", ""]
    outcomes = {}
    for name, build, expected in EXPECTED_CYCLES:
        problem = build()
        on_cycles = classify_cycle_problem(problem)
        on_paths = classify_path_problem(problem)
        outcomes[name] = (on_cycles, on_paths)
        lines.append(
            f"  {name:<24} cycles={on_cycles.complexity:<15} paths={on_paths.complexity}"
        )

    lines.append("")
    histogram = {}
    for seed in range(200):
        verdict = classify_cycle_problem(random_lcl(seed, num_labels=3, max_degree=2))
        histogram[verdict.complexity] = histogram.get(verdict.complexity, 0) + 1
    lines.append(f"  200 random 3-label LCLs on cycles: {histogram}")

    lines.append("")
    for problem in (catalog.echo(2), catalog.sinkless_orientation(3)):
        verdict = semidecide_constant_time(problem, max_steps=3)
        lines.append("  " + verdict.summary())
    return outcomes, histogram, "\n".join(lines)


def test_decidability(once, roundelim_cache):
    outcomes, histogram, report = once(run_experiment)
    report += "\n" + "\n".join(cache_report_lines(roundelim_cache))
    write_report("decidability", report)

    for name, build, expected in EXPECTED_CYCLES:
        on_cycles, _ = outcomes[name]
        assert on_cycles.complexity == expected, name
    # Paths agree with cycles on these problems except where endpoint
    # conditions matter; spot-check the main classes.
    assert outcomes["3-coloring"][1].complexity == "Theta(log* n)"
    assert outcomes["trivial"][1].complexity == "O(1)"
    # The trichotomy is exhaustive on random problems.
    assert set(histogram) <= {"O(1)", "Theta(log* n)", "Theta(n)", "unsolvable"}


def test_kernel_classification(benchmark):
    problem = catalog.maximal_matching(2)
    result = benchmark(lambda: classify_cycle_problem(problem))
    assert result.complexity == "Theta(log* n)"


def test_kernel_random_classification(benchmark):
    problems = [random_lcl(seed, num_labels=4, max_degree=2) for seed in range(20)]
    benchmark(lambda: [classify_cycle_problem(p) for p in problems])
