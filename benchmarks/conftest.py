"""Shared helpers for the benchmark harness.

Every experiment writes its Figure-1-style table (or theorem report) to
``benchmarks/results/<experiment>.txt`` *and* asserts the paper's
qualitative claims (class shapes, who wins, empty gap), so
``pytest benchmarks/ --benchmark-only`` both times the kernels and
regenerates the paper's figure content as text artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="run the round-elimination experiments with the operator cache disabled",
    )


@pytest.fixture
def roundelim_cache(request):
    """The operator-cache module, configured per the ``--no-cache`` flag.

    Counters are zeroed on entry so every experiment reports its own hit
    rate; the cache itself is cleared so 'cold' passes are genuinely cold
    and the prior global configuration is restored afterwards.
    """
    from repro.utils import cache as operator_cache

    operator_cache.reset()
    enabled = not request.config.getoption("--no-cache")
    operator_cache.configure(enabled=enabled, disk_dir=None)
    operator_cache.reset_stats()
    yield operator_cache
    operator_cache.reset()
    operator_cache.reset_stats()


def cache_report_lines(operator_cache) -> list:
    """Report footer: cache mode plus the per-operator counter table."""
    enabled = operator_cache.get_cache().enabled
    rate = operator_cache.hit_rate()
    return [
        "",
        f"  cache mode: {'enabled' if enabled else 'disabled (--no-cache)'}; "
        f"hit rate: {'n/a' if rate is None else f'{rate:.1%}'}",
        operator_cache.format_stats(),
    ]


def write_report(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{name}.txt"
    target.write_text(text + "\n", encoding="utf-8")
    return target


def measured_locality(graph, algorithm, ids=None, inputs=None, sample=16, seed=0):
    """Max locality actually charged over a spread sample of nodes."""
    from repro.graphs.ids import random_ids
    from repro.local.model import run_local_algorithm

    if ids is None:
        ids = random_ids(graph, seed=seed)
    step = max(1, graph.num_nodes // sample)
    nodes = list(range(0, graph.num_nodes, step))
    result = run_local_algorithm(
        graph, algorithm, inputs=inputs, ids=ids, nodes=nodes
    )
    return max(result.radius_per_node)


@pytest.fixture
def once(benchmark):
    """Run a heavyweight kernel exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
