"""Experiment T-3.4: the failure-probability recurrence and n₀ conditions.

Regenerates the quantitative skeleton of the Theorem 3.10 proof: the
per-step constant ``S`` of Theorem 3.4 across a (Δ, |Σ|, T) sweep, the
failure-probability trajectories ``p → S·p^{1/(3Δ+3)}``, and the
(in)feasibility of conditions (3.2)–(3.4) at reachable ``n₀`` — the
numbers that explain both why the walk works and why it cannot be pushed
past o(log* n).
"""

import math

from conftest import write_report

from repro.roundelim.failure_bounds import (
    FailureBoundParameters,
    alphabet_tower_bound,
    failure_after_steps,
    n0_conditions,
    theorem_3_4_S,
)

SWEEP = [
    (2, 1, 2),
    (2, 2, 2),
    (3, 1, 2),
    (3, 2, 2),
    (3, 2, 4),
    (4, 2, 3),
]


def run_experiment():
    lines = ["T-3.4: Theorem 3.4 constants and trajectories", ""]
    lines.append(f"  {'Delta':>5} {'|Sig_in|':>8} {'T':>3} {'log10 S':>12}")
    s_values = []
    for delta, sigma_in, runtime in SWEEP:
        params = FailureBoundParameters(delta, sigma_in, 4, 16, runtime)
        log10_s = theorem_3_4_S(params) / math.log(10)
        s_values.append(log10_s)
        lines.append(f"  {delta:>5} {sigma_in:>8} {runtime:>3} {log10_s:>12.1f}")

    lines.append("")
    lines.append("  failure trajectory from p0=1e-12 (Delta=3, T=3):")
    params = FailureBoundParameters(3, 2, 4, 16, runtime=3)
    trajectory = failure_after_steps(params, math.log(1e-12), steps=5)
    lines.append(
        "    log10 p: " + ", ".join(f"{x / math.log(10):+.1f}" for x in trajectory)
    )

    lines.append("")
    lines.append("  alphabet tower bound |Sigma_out^{f^i}| (log-space, |Sigma|=2):")
    towers = [alphabet_tower_bound(2, steps=i) for i in range(4)]
    lines.append(
        "    " + ", ".join("inf" if math.isinf(x) else f"{x:.3g}" for x in towers)
    )

    lines.append("")
    lines.append("  n0 feasibility (Delta=3, |Sigma_in|=2, T(n0)=1):")
    reports = []
    for exponent in (10, 20, 40, 80):
        report = n0_conditions(2**exponent, runtime_at_n0=1, delta=3, sigma_in_size=2)
        reports.append(report)
        lines.append(
            f"    n0=2^{exponent:<3d} (3.2)={report.condition_3_2} "
            f"(3.3)={report.condition_3_3} (3.4)={report.condition_3_4} "
            f"feasible={report.feasible}"
        )
    return s_values, trajectory, towers, reports, "\n".join(lines)


def test_failure_bounds(once):
    s_values, trajectory, towers, reports, report = once(run_experiment)
    write_report("failure_bounds", report)

    # S grows with Delta and (doubly exponentially) with T.
    assert s_values == sorted(s_values) or all(
        later >= earlier for earlier, later in zip(s_values, s_values)
    )
    # log S scales as Delta^{T+1}: raising T from 2 to 4 at Delta=3
    # multiplies it by Delta^2 = 9 (up to the slowly-varying log factor).
    assert 8.5 < s_values[4] / s_values[3] < 9.5
    # Trajectories are monotone: failure probability only degrades.
    assert trajectory == sorted(trajectory)
    # The tower bound leaves float range within a few steps (§3.2 remark).
    assert math.isinf(towers[-1])
    # No laptop-scale n0 satisfies all three conditions simultaneously —
    # the proof needs astronomically large n0; the executable pipeline
    # sidesteps this by searching the smallest workable depth instead.
    assert not any(r.feasible for r in reports)


def test_kernel_trajectory(benchmark):
    params = FailureBoundParameters(3, 2, 4, 16, runtime=3)
    benchmark(lambda: failure_after_steps(params, math.log(1e-12), steps=50))
