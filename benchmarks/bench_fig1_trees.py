"""Experiment F1-trees: the Figure 1 (top left) landscape on trees.

Regenerates, as measured locality series over bounded-degree trees, the
inhabited classes of Corollary 1.2 — O(1), Θ(log* n), Θ(log n), Θ(n) —
and mechanically checks Theorem 1.1's red region: no series may sit in
ω(1) ∩ o(log* n).

The randomized-vs-deterministic split of class (C) (Θ(log n) det /
Θ(log log n) rand) is out of measurable reach — log log n and log n
differ by a factor ~4 at laptop scales — so the panel plots the
deterministic representative; the class structure itself is the
reproduction target (see EXPERIMENTS.md).
"""

from conftest import measured_locality, write_report

from repro.graphs import complete_regular_tree, path, random_tree
from repro.landscape import LandscapePanel
from repro.local.algorithms import (
    AdaptivePeeling,
    ColorClassMIS,
    LinialColoring,
    RakeCompressColoring,
    TwoHopMaxDegree,
)
from repro.local.model import LocalAlgorithm

NS = [2**k for k in range(5, 10)]


class EccentricityProbe(LocalAlgorithm):
    """Global class representative: output the node's eccentricity."""

    name = "eccentricity-probe"

    def radius(self, n):
        return max(1, n)

    def run(self, ctx):
        radius = 1
        while True:
            ball = ctx.ball(radius)
            if max(ball.distance) < radius:
                return {p: max(ball.distance) for p in range(ctx.degree)}
            if radius >= ctx.declared_n:
                return {p: max(ball.distance) for p in range(ctx.degree)}
            radius = min(2 * radius, ctx.declared_n)


def balanced_tree(n: int):
    depth = max(1, (n // 3).bit_length())
    return complete_regular_tree(3, depth)


def build_panel() -> LandscapePanel:
    panel = LandscapePanel("F1-trees: LCL landscape on trees")
    series = [
        ("two-hop-max-degree", "O(1)", TwoHopMaxDegree, lambda n: random_tree(n, 3, seed=n)),
        (
            "linial-(D+1)-coloring",
            "Theta(log* n)",
            lambda: LinialColoring(3),
            lambda n: random_tree(n, 3, seed=n),
        ),
        (
            "mis-color-sweep",
            "Theta(log* n)",
            lambda: ColorClassMIS(LinialColoring(3)),
            lambda n: random_tree(n, 3, seed=n),
        ),
        ("rake-depth", "Theta(log n)", AdaptivePeeling, balanced_tree),
        ("3-coloring-rake-compress", "Theta(log n)", RakeCompressColoring, path),
        ("eccentricity", "Theta(n)", EccentricityProbe, path),
    ]
    for name, expected, make_algorithm, make_graph in series:
        values = [
            measured_locality(make_graph(n), make_algorithm(), seed=n, sample=8)
            for n in NS
        ]
        panel.add(name, expected, NS, values)
    return panel


def test_fig1_trees_panel(once):
    panel = once(build_panel)
    report = panel.render()
    write_report("fig1_trees", report)

    # Theorem 1.1: the gap between omega(1) and o(log* n) is empty.
    assert not panel.gap_violations()
    by_name = {row.problem: row for row in panel.rows}
    # Who wins and by what shape:
    assert by_name["two-hop-max-degree"].fit.best == "O(1)"
    assert by_name["eccentricity"].fit.best == "Theta(n)"
    assert "Theta(log n)" in by_name["rake-depth"].fit.tied
    # The genuine Θ(log n)-class LCL (3-coloring of trees): the Θ(log n)
    # lower bound is asymptotic — with random identifiers the measured
    # rake-compress locality is small and nearly flat at these sizes (the
    # compress phase is extremely effective), so the honest checks are
    # (a) the series stays far below the global class and (b) the
    # expected class is among the statistically tied fits.
    three_coloring = by_name["3-coloring-rake-compress"].values
    assert max(three_coloring) <= NS[-1] / 8
    # The series is noise-dominated (ID luck moves the adaptive radius by
    # one growth notch), so assert the defensible core: the expected class
    # fits within the noise floor of whatever fits best.
    scores = by_name["3-coloring-rake-compress"].fit.scores
    assert scores["Theta(log n)"] - min(scores.values()) < 0.05
    # The log*-class problems must not grow like log n or faster.
    for name in ("linial-(D+1)-coloring", "mis-color-sweep"):
        spread = max(by_name[name].values) - min(by_name[name].values)
        assert spread <= 3, f"{name} grew too fast for the log* class"


def test_kernel_linial_coloring(benchmark):
    graph = random_tree(256, 3, seed=1)
    benchmark(lambda: measured_locality(graph, LinialColoring(3), seed=1, sample=8))


def test_kernel_two_hop_aggregate(benchmark):
    graph = random_tree(256, 3, seed=2)
    benchmark(lambda: measured_locality(graph, TwoHopMaxDegree(), seed=2, sample=8))
