"""Simulator throughput: the systems-side scaling of the three models.

Not a paper artifact — a maintenance benchmark for the substrate itself:
ball extraction rate, LOCAL simulation throughput (nodes/second for a
radius-2 aggregate and for Cole–Vishkin), VOLUME query throughput, and
the round elimination step on the catalog's largest problem.  Regressions
here are what would silently make the figure benchmarks unrunnable.
"""

import pytest

from repro.graphs import cycle, random_ids, random_tree
from repro.graphs.balls import extract_ball
from repro.local import run_local_algorithm
from repro.local.algorithms import ColeVishkinColoring, TwoHopMaxDegree
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.volume import NeighborhoodAggregate, run_volume_algorithm


def test_kernel_ball_extraction(benchmark):
    graph = random_tree(2048, 3, seed=1)
    benchmark(lambda: [extract_ball(graph, v, 4) for v in range(0, 2048, 64)])


def test_kernel_local_aggregate_throughput(benchmark):
    graph = random_tree(1024, 3, seed=2)
    algorithm = TwoHopMaxDegree()
    benchmark(lambda: run_local_algorithm(graph, algorithm))


def test_kernel_local_cv_throughput(benchmark):
    graph = cycle(1024)
    inputs = orient_path_inputs(graph)
    ids = random_ids(graph, seed=3)
    algorithm = ColeVishkinColoring()
    nodes = list(range(0, 1024, 16))
    benchmark(
        lambda: run_local_algorithm(
            graph, algorithm, inputs=inputs, ids=ids, nodes=nodes
        )
    )


def test_kernel_volume_throughput(benchmark):
    graph = cycle(2048)
    ids = random_ids(graph, seed=4)
    benchmark(lambda: run_volume_algorithm(graph, NeighborhoodAggregate(2), ids=ids))


def test_kernel_roundelim_largest_catalog(benchmark):
    from repro.lcl import catalog
    from repro.roundelim.ops import R, R_bar, simplify

    problem = catalog.echo_chain(4)  # 108 labels

    def step():
        return simplify(R_bar(simplify(R(problem), domination=True)), domination=True)

    result = benchmark.pedantic(step, rounds=1, iterations=1)
    assert result.sigma_out
