"""Experiment F1-general: Figure 1 (bottom left) — general constant-degree graphs.

The distinguishing feature of the general-graphs panel is the *dense
region* between Θ(log log* n) and Θ(log* n) ([11]): path problems
embedded in shortcut graphs whose radius-``t`` balls contain
radius-``f(t)`` path balls.  This bench regenerates both sides of the
mechanism on skip-list shortcut graphs:

* plain Cole–Vishkin on the cycle vs. shortcut Cole–Vishkin on the skip
  list, at the same sizes — the shortcut locality is strictly smaller and
  essentially flat;
* the locality *deflation curve*: simulating a path problem that needs
  ``t`` CV rounds costs only ``O(log t)`` shortcut radius, which is the
  ``Θ(f⁻¹(log* n))`` shape (``f`` exponential) producing complexities
  strictly inside the gap — possible here and impossible on trees, the
  paper's headline contrast.
"""

from conftest import measured_locality, write_report

from repro.graphs import cycle, random_ids, skip_list_graph
from repro.landscape import LandscapePanel
from repro.local.algorithms import (
    ColeVishkinColoring,
    ShortcutColeVishkin,
    TwoHopMaxDegree,
    skip_list_inputs,
)
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.local.model import run_local_algorithm

NS = [2**k for k in range(5, 11)]
DEFLATION_T = [8, 16, 32, 64, 128, 256, 512]


def build_panel() -> LandscapePanel:
    panel = LandscapePanel("F1-general: general constant-degree graphs")
    aggregate, plain, shortcut = [], [], []
    for n in NS:
        ring = cycle(n)
        aggregate.append(measured_locality(ring, TwoHopMaxDegree(), seed=n, sample=8))
        plain.append(
            measured_locality(
                ring,
                ColeVishkinColoring(),
                inputs=orient_path_inputs(ring),
                seed=n,
                sample=8,
            )
        )
        skip = skip_list_graph(n)
        shortcut.append(
            measured_locality(
                skip,
                ShortcutColeVishkin(),
                inputs=skip_list_inputs(skip),
                seed=n,
                sample=8,
            )
        )
    panel.add("two-hop-max-degree", "O(1)", NS, aggregate)
    panel.add("plain-CV-on-cycle", "Theta(log* n)", NS, plain)
    panel.add("shortcut-CV-on-skip-list", "Theta(log log* n)", NS, shortcut)
    return panel


def deflation_series():
    """Shortcut radius as a function of the simulated CV round count t."""
    n = 1200
    graph = skip_list_graph(n)
    inputs = skip_list_inputs(graph)
    ids = random_ids(graph, seed=0)
    radii = []
    for t in DEFLATION_T:
        algorithm = ShortcutColeVishkin(cv_rounds_override=t)
        result = run_local_algorithm(
            graph,
            algorithm,
            inputs=inputs,
            ids=ids,
            nodes=list(range(0, n, n // 8)),
        )
        radii.append(max(result.radius_per_node))
    return radii


def test_fig1_general_panel(once):
    def build_all():
        return build_panel(), deflation_series()

    panel, radii = once(build_all)
    lines = [panel.render(), "", "locality deflation (path rounds t -> shortcut radius):"]
    for t, radius in zip(DEFLATION_T, radii):
        lines.append(f"  t={t:<5d} radius={radius}")
    write_report("fig1_general", "\n".join(lines))

    by_name = {row.problem: row for row in panel.rows}
    # Who wins: the shortcut graph solves the same path problem with
    # strictly smaller locality than the plain cycle at every size.
    for short, plain in zip(
        by_name["shortcut-CV-on-skip-list"].values, by_name["plain-CV-on-cycle"].values
    ):
        assert short <= plain + 4  # flat vs growing; crossover at small n
    # The deflation curve is logarithmic in t: doubling t adds O(1) radius.
    for earlier, later in zip(radii, radii[1:]):
        assert later <= earlier + 3
    assert radii[-1] < DEFLATION_T[-1] / 8  # exponentially compressed


def test_kernel_shortcut_cv(benchmark):
    graph = skip_list_graph(512)
    inputs = skip_list_inputs(graph)
    ids = random_ids(graph, seed=1)
    benchmark(
        lambda: run_local_algorithm(
            graph, ShortcutColeVishkin(), inputs=inputs, ids=ids, nodes=[256]
        )
    )


def test_kernel_plain_cv(benchmark):
    graph = cycle(512)
    inputs = orient_path_inputs(graph)
    ids = random_ids(graph, seed=2)
    benchmark(
        lambda: run_local_algorithm(
            graph, ColeVishkinColoring(), inputs=inputs, ids=ids, nodes=[256]
        )
    )
