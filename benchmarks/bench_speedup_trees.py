"""Experiment T-3.11: the gap pipeline on trees, end to end.

Runs the executable Theorem 3.10/3.11 procedure on the catalog: for each
constant-time problem the walk must terminate with a synthesized,
verified deterministic O(1)-round algorithm at the *exact* expected
depth; for the Θ(log* n)-class problems it must never claim success; for
sinkless orientation it must produce the fixed-point certificate.
"""

import pytest
from conftest import cache_report_lines, write_report

from repro.lcl import catalog
from repro.roundelim.gap import speedup, verify_on_random_forests

CONSTANT_CASES = [
    ("trivial", lambda: catalog.trivial(3), 0),
    ("consensus", lambda: catalog.consensus(3), 0),
    ("input-copy", lambda: catalog.input_copy(3), 0),
    ("echo(d=2)", lambda: catalog.echo(2), 1),
    ("echo(d=3)", lambda: catalog.echo(3), 1),
    ("echo2", lambda: catalog.echo2(), 2),
]

HARD_CASES = [
    ("3-coloring-paths", lambda: catalog.coloring(3, 2)),
    ("mis", lambda: catalog.mis(3)),
    ("maximal-matching", lambda: catalog.maximal_matching(3)),
]


def run_all(constant_cases=CONSTANT_CASES, hard_cases=HARD_CASES, use_cache=True):
    lines = ["T-3.11: gap pipeline (speedup o(log* n) -> O(1)) on trees/forests", ""]
    outcomes = {}
    for name, build, expected_rounds in constant_cases:
        result = speedup(build(), max_steps=4, use_cache=use_cache)
        verified = verify_on_random_forests(
            result,
            component_sizes=(6, 4, 1) if result.problem.max_degree == 2 else (7, 5, 3, 1),
            trials=3,
        )
        outcomes[name] = (result, verified)
        lines.append(
            f"  {name:<18} status={result.status:<12} rounds={result.constant_rounds} "
            f"alphabets={result.alphabet_sizes} verified={verified}"
        )
    for name, build in hard_cases:
        result = speedup(build(), max_steps=1, use_cache=use_cache)
        outcomes[name] = (result, None)
        lines.append(
            f"  {name:<18} status={result.status:<12} rounds={result.constant_rounds} "
            f"alphabets={result.alphabet_sizes}"
        )
    so = speedup(catalog.sinkless_orientation(3), max_steps=3, use_cache=use_cache)
    outcomes["sinkless-orientation"] = (so, None)
    lines.append(
        f"  {'sinkless-orient.':<18} status={so.status:<12} fixed_point_at={so.fixed_point_at}"
    )
    return outcomes, "\n".join(lines)


def test_speedup_pipeline(once, roundelim_cache):
    use_cache = roundelim_cache.get_cache().enabled
    outcomes, report = once(run_all, use_cache=use_cache)
    report += "\n" + "\n".join(cache_report_lines(roundelim_cache))
    write_report("speedup_trees", report)

    for name, build, expected_rounds in CONSTANT_CASES:
        result, verified = outcomes[name]
        assert result.status == "constant", name
        assert result.constant_rounds == expected_rounds, name
        assert verified, name
    for name, _ in HARD_CASES:
        result, _ = outcomes[name]
        assert result.status != "constant", name
    so, _ = outcomes["sinkless-orientation"]
    assert so.status == "fixed-point" and so.fixed_point_at == 1


@pytest.mark.parametrize(
    "name, build",
    [(name, build) for name, build, _ in CONSTANT_CASES[3:]],
)
def test_kernel_speedup(benchmark, name, build):
    problem = build()
    result = benchmark(lambda: speedup(problem, max_steps=4))
    assert result.status == "constant"


def test_kernel_zero_round_decision(benchmark):
    from repro.roundelim.zero_round import find_zero_round_algorithm

    problem = catalog.mis(3)
    assert benchmark(lambda: find_zero_round_algorithm(problem)) is None
