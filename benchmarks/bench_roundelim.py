"""Experiment RE-fixedpoint: round elimination as a lower-bound tool.

Times the R / R̄ operators across the catalog, tracks the alphabet sizes
along ``f^k`` (the §3.2 growth remark, tamed by label hygiene), and
regenerates the classic certificate: sinkless orientation is a fixed
point of ``f`` that is not 0-round solvable, hence not o(log* n).

The experiment runs twice — a cold pass and a warm pass over the same
problems — so the report also shows what the canonical operator cache
buys: the warm pass must reproduce the cold outputs exactly while
(cache enabled) hitting on every operator application.  ``--no-cache``
reruns everything through the raw kernels.
"""

import json
import time

import pytest
from conftest import RESULTS_DIR, cache_report_lines, write_report

from repro import sat
from repro.decidability import find_fixed_point_certificate
from repro.lcl import catalog
from repro.roundelim.canonical import canonical_hash
from repro.roundelim.ops import R, R_bar, configure_bitset, simplify
from repro.roundelim.sequence import ProblemSequence
from repro.roundelim.zero_round import find_zero_round_algorithm

PROBLEMS = [
    ("trivial", lambda: catalog.trivial(3)),
    ("consensus", lambda: catalog.consensus(3)),
    ("sinkless-orientation", lambda: catalog.sinkless_orientation(3)),
    ("echo", lambda: catalog.echo(2)),
    ("echo2", lambda: catalog.echo2()),
    ("mis", lambda: catalog.mis(3)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
]


def run_experiment(problems=PROBLEMS, use_cache=True):
    lines = ["RE-fixedpoint: operator sizes and fixed-point certificates", ""]
    lines.append(f"  {'problem':<22} {'|out|':>5} {'|R|':>5} {'|f|':>5}  sequence")
    sizes = {}
    for name, build in problems:
        problem = build()
        sequence = ProblemSequence(problem, use_domination=True, use_cache=use_cache)
        try:
            r_size = len(sequence.intermediate(0).sigma_out)
            f_size = len(sequence.problem(1).sigma_out)
            growth = sequence.alphabet_sizes(1)
        except Exception as error:  # alphabet blow-up is an expected outcome
            r_size = f_size = -1
            growth = [len(problem.sigma_out), "blown-up"]
        sizes[name] = (len(problem.sigma_out), r_size, f_size)
        lines.append(
            f"  {name:<22} {len(problem.sigma_out):>5} {r_size:>5} {f_size:>5}  {growth}"
        )

    lines.append("")
    certificate = find_fixed_point_certificate(catalog.sinkless_orientation(3))
    lines.append("  " + certificate.summary())
    return sizes, certificate, "\n".join(lines)


def test_roundelim_sizes_and_certificate(once, roundelim_cache):
    use_cache = roundelim_cache.get_cache().enabled

    cold_start = time.perf_counter()
    sizes, certificate, report = once(run_experiment, use_cache=use_cache)
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    warm_sizes, warm_certificate, _ = run_experiment(use_cache=use_cache)
    warm_seconds = time.perf_counter() - warm_start

    # The cache must be invisible in the outputs...
    assert warm_sizes == sizes
    assert warm_certificate.certifies_lower_bound == certificate.certifies_lower_bound
    if use_cache:
        # ...while actually being used (and paying off) on the warm pass.
        assert roundelim_cache.hit_rate() > 0
        computes = {
            op: c["computes"]
            for op, c in roundelim_cache.stats()["operators"].items()
        }
        assert any(computes.values()), "cold pass should have executed kernels"

    report += "\n" + "\n".join(cache_report_lines(roundelim_cache))
    report += (
        f"\n  cold pass: {cold_seconds:.3f}s  warm pass: {warm_seconds:.3f}s"
    )
    write_report("roundelim", report)

    # Hygiene keeps the constant-class and fixed-point sequences tiny.
    assert sizes["sinkless-orientation"][2] == 2
    assert sizes["echo"][2] <= 4
    # The Θ(log* n) problems genuinely grow under f.
    assert sizes["3-coloring"][2] > sizes["3-coloring"][0]
    # The classic lower-bound certificate.
    assert certificate is not None and certificate.certifies_lower_bound


def test_warm_cache_speedup(roundelim_cache):
    """Warm ``f``-walks hit the cache on every operator application."""
    if not roundelim_cache.get_cache().enabled:
        pytest.skip("--no-cache")
    problem = catalog.mis(3)
    ProblemSequence(problem, use_domination=True).problem(1)
    before = {
        op: c["computes"] for op, c in roundelim_cache.stats()["operators"].items()
    }
    ProblemSequence(problem, use_domination=True).problem(1)
    after = {
        op: c["computes"] for op, c in roundelim_cache.stats()["operators"].items()
    }
    assert after == before, "warm walk recomputed an operator"
    assert roundelim_cache.hit_rate() > 0


@pytest.mark.parametrize(
    "name, build",
    [(n, b) for n, b in PROBLEMS if n in ("sinkless-orientation", "echo", "mis")],
)
def test_kernel_R_operator(benchmark, roundelim_cache, name, build):
    problem = build()
    use_cache = roundelim_cache.get_cache().enabled
    result = benchmark(lambda: R(problem, use_cache=use_cache))
    assert result.sigma_out


# --------------------------------------------------------- backend comparison
# Problems for the bitset-vs-oracle timing rows: ``steps`` walks the
# ``f``-sequence first, so the timed operator runs on the (much larger)
# derived alphabet where the compiled kernels matter.  The 3-coloring
# step problem is the headline case: ≥10 labels, and the oracle spends
# seconds in ``label_sort_key`` recursion that the bitset path never
# touches.
#: ``kernel="f"`` times the full f-step; ``"R"`` stops after R + simplify
#: (the 3-coloring step problem's R̄ universe legitimately exceeds the
#: default cap, so only the forward operator is comparable there).
BACKEND_PROBLEMS = [
    ("5-edge-coloring", lambda: catalog.edge_coloring(5, 2), 0, "f"),
    ("3-coloring f^1", lambda: catalog.coloring(3, 2), 1, "R"),
]

BITSET_TRAJECTORY = "BENCH_bitset.json"


def run_backend_experiment(problems=BACKEND_PROBLEMS):
    """Time ``R`` + ``simplify`` under both backends on each problem.

    Returns the result rows and the report text.  Outputs are asserted
    identical (the differential contract) before any timing is trusted,
    so a row can never report a speedup for a kernel that changed the
    answer.
    """
    rows = []
    lines = ["RE-bitset: compiled backend vs pure-Python oracle", ""]
    lines.append(
        f"  {'problem':<18} {'labels':>6} {'oracle':>9} {'bitset':>9} {'speedup':>8}"
    )
    # Warm-up: the compiled backend lazily imports its numpy kernels on
    # first use — pay that once outside the timed regions.
    configure_bitset(enabled=True)
    R(catalog.trivial(2), use_cache=False)
    for name, build, steps, kernel in problems:
        base = build()
        problem = (
            ProblemSequence(base, use_cache=False).problem(steps) if steps else base
        )
        timings = {}
        outputs = {}
        for backend in ("oracle", "bitset"):
            configure_bitset(enabled=backend == "bitset")
            started = time.perf_counter()
            r = R(problem, use_cache=False)
            result = simplify(r, domination=True, use_cache=False)
            if kernel == "f":
                rbar = R_bar(result, use_cache=False)
                result = simplify(rbar, domination=True, use_cache=False)
            timings[backend] = time.perf_counter() - started
            outputs[backend] = (r, result, canonical_hash(result))
        configure_bitset(enabled=None)
        assert outputs["bitset"] == outputs["oracle"], (
            f"{name}: backends disagree — timings are meaningless"
        )
        speedup = timings["oracle"] / timings["bitset"]
        rows.append(
            {
                "problem": name,
                "labels": len(problem.sigma_out),
                "oracle_seconds": round(timings["oracle"], 6),
                "bitset_seconds": round(timings["bitset"], 6),
                "speedup": round(speedup, 2),
            }
        )
        lines.append(
            f"  {name:<18} {len(problem.sigma_out):>6} "
            f"{timings['oracle']:>8.3f}s {timings['bitset']:>8.3f}s "
            f"{speedup:>7.1f}x"
        )
    return rows, "\n".join(lines)


def append_bitset_trajectory(rows, results_dir=None):
    """Append one entry to the ``BENCH_bitset.json`` speedup trajectory."""
    directory = results_dir or RESULTS_DIR
    directory.mkdir(exist_ok=True)
    target = directory / BITSET_TRAJECTORY
    trajectory = []
    if target.exists():
        trajectory = json.loads(target.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "rows": rows,
        }
    )
    target.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return target


def test_bitset_backend_speedup(once, roundelim_cache):
    rows, report = once(run_backend_experiment)
    write_report("roundelim_bitset", report)
    append_bitset_trajectory(rows)

    by_name = {row["problem"]: row for row in rows}
    # The compiled path must win everywhere it claims support...
    for row in rows:
        assert row["speedup"] > 1.0, f"{row['problem']}: bitset slower than oracle"
    # ...and by ≥5x on the headline catalog walk with a ≥10-label alphabet.
    headline = by_name["3-coloring f^1"]
    assert headline["labels"] >= 10
    assert headline["speedup"] >= 5.0, f"headline speedup regressed: {headline}"


# ------------------------------------------------------------ SAT comparison
# Problems for the SAT-vs-enumeration decision rows: the 0-round
# existence question on ``f``-derived alphabets, where the enumeration
# path pays a full clique-by-clique cover search and the CNF engine
# answers each clique by unit propagation.  Timed through the *public*
# dispatch (``find_zero_round_algorithm`` under ``configure_sat``), so
# the rows measure exactly what callers get.
SAT_PROBLEMS = [
    ("3-coloring f^1", lambda: catalog.coloring(3, 2), 1),
    ("5-edge-coloring f^1", lambda: catalog.edge_coloring(5, 2), 1),
]

SAT_TRAJECTORY = "BENCH_sat.json"


def run_sat_experiment(problems=SAT_PROBLEMS, repetitions=3):
    """Time the 0-round decision under both engines on each problem.

    Like :func:`run_backend_experiment`, outputs are asserted identical
    (clique, rule table, and verdict) before any timing is trusted — a
    row can never report a speedup for an engine that changed the
    answer.  Timings are best-of-``repetitions`` to shed scheduler
    noise.
    """
    rows = []
    lines = ["RE-sat: CNF decision kernel vs enumeration oracle", ""]
    lines.append(
        f"  {'problem':<22} {'labels':>6} {'enum':>9} {'sat':>9} {'speedup':>8}"
    )
    for name, build, steps in problems:
        base = build()
        problem = (
            ProblemSequence(base, use_cache=False).problem(steps) if steps else base
        )
        timings = {}
        outputs = {}
        for backend in ("enumeration", "sat"):
            sat.configure_sat(enabled=backend == "sat")
            try:
                best = float("inf")
                for _ in range(repetitions):
                    started = time.perf_counter()
                    algorithm = find_zero_round_algorithm(problem)
                    best = min(best, time.perf_counter() - started)
            finally:
                sat.configure_sat(enabled=None)
            timings[backend] = best
            outputs[backend] = (
                None
                if algorithm is None
                else (algorithm.clique, algorithm.table)
            )
        assert outputs["sat"] == outputs["enumeration"], (
            f"{name}: engines disagree — timings are meaningless"
        )
        speedup = timings["enumeration"] / timings["sat"]
        rows.append(
            {
                "problem": name,
                "labels": len(problem.sigma_out),
                "enumeration_seconds": round(timings["enumeration"], 6),
                "sat_seconds": round(timings["sat"], 6),
                "speedup": round(speedup, 2),
            }
        )
        lines.append(
            f"  {name:<22} {len(problem.sigma_out):>6} "
            f"{timings['enumeration']:>8.4f}s {timings['sat']:>8.4f}s "
            f"{speedup:>7.1f}x"
        )
    return rows, "\n".join(lines)


def append_sat_trajectory(rows, results_dir=None):
    """Append one entry to the ``BENCH_sat.json`` speedup trajectory."""
    directory = results_dir or RESULTS_DIR
    directory.mkdir(exist_ok=True)
    target = directory / SAT_TRAJECTORY
    trajectory = []
    if target.exists():
        trajectory = json.loads(target.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "rows": rows,
        }
    )
    target.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return target


def test_sat_backend_speedup(once, roundelim_cache):
    rows, report = once(run_sat_experiment)
    write_report("roundelim_sat", report)
    append_sat_trajectory(rows)

    by_name = {row["problem"]: row for row in rows}
    # The CNF path must win everywhere it claims support...
    for row in rows:
        assert row["speedup"] > 1.0, f"{row['problem']}: SAT slower than enumeration"
    # ...and by ≥5x on the headline derived alphabet (≥10 labels).
    headline = by_name["3-coloring f^1"]
    assert headline["labels"] >= 10
    assert headline["speedup"] >= 5.0, f"headline speedup regressed: {headline}"


def test_kernel_full_f_step(benchmark, roundelim_cache):
    problem = catalog.sinkless_orientation(3)
    use_cache = roundelim_cache.get_cache().enabled
    benchmark(
        lambda: simplify(
            R_bar(R(problem, use_cache=use_cache), use_cache=use_cache),
            domination=True,
            use_cache=use_cache,
        )
    )
