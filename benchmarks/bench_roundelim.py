"""Experiment RE-fixedpoint: round elimination as a lower-bound tool.

Times the R / R̄ operators across the catalog, tracks the alphabet sizes
along ``f^k`` (the §3.2 growth remark, tamed by label hygiene), and
regenerates the classic certificate: sinkless orientation is a fixed
point of ``f`` that is not 0-round solvable, hence not o(log* n).
"""

import pytest
from conftest import write_report

from repro.decidability import find_fixed_point_certificate
from repro.lcl import catalog
from repro.roundelim.ops import R, R_bar, simplify
from repro.roundelim.sequence import ProblemSequence

PROBLEMS = [
    ("trivial", lambda: catalog.trivial(3)),
    ("consensus", lambda: catalog.consensus(3)),
    ("sinkless-orientation", lambda: catalog.sinkless_orientation(3)),
    ("echo", lambda: catalog.echo(2)),
    ("echo2", lambda: catalog.echo2()),
    ("mis", lambda: catalog.mis(3)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
]


def run_experiment():
    lines = ["RE-fixedpoint: operator sizes and fixed-point certificates", ""]
    lines.append(f"  {'problem':<22} {'|out|':>5} {'|R|':>5} {'|f|':>5}  sequence")
    sizes = {}
    for name, build in PROBLEMS:
        problem = build()
        sequence = ProblemSequence(problem, use_domination=True)
        try:
            r_size = len(sequence.intermediate(0).sigma_out)
            f_size = len(sequence.problem(1).sigma_out)
            growth = sequence.alphabet_sizes(1)
        except Exception as error:  # alphabet blow-up is an expected outcome
            r_size = f_size = -1
            growth = [len(problem.sigma_out), "blown-up"]
        sizes[name] = (len(problem.sigma_out), r_size, f_size)
        lines.append(
            f"  {name:<22} {len(problem.sigma_out):>5} {r_size:>5} {f_size:>5}  {growth}"
        )

    lines.append("")
    certificate = find_fixed_point_certificate(catalog.sinkless_orientation(3))
    lines.append("  " + certificate.summary())
    return sizes, certificate, "\n".join(lines)


def test_roundelim_sizes_and_certificate(once):
    sizes, certificate, report = once(run_experiment)
    write_report("roundelim", report)

    # Hygiene keeps the constant-class and fixed-point sequences tiny.
    assert sizes["sinkless-orientation"][2] == 2
    assert sizes["echo"][2] <= 4
    # The Θ(log* n) problems genuinely grow under f.
    assert sizes["3-coloring"][2] > sizes["3-coloring"][0]
    # The classic lower-bound certificate.
    assert certificate is not None and certificate.certifies_lower_bound


@pytest.mark.parametrize(
    "name, build",
    [(n, b) for n, b in PROBLEMS if n in ("sinkless-orientation", "echo", "mis")],
)
def test_kernel_R_operator(benchmark, name, build):
    problem = build()
    result = benchmark(lambda: R(problem))
    assert result.sigma_out


def test_kernel_full_f_step(benchmark):
    problem = catalog.sinkless_orientation(3)
    benchmark(lambda: simplify(R_bar(R(problem)), domination=True))
