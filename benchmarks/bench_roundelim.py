"""Experiment RE-fixedpoint: round elimination as a lower-bound tool.

Times the R / R̄ operators across the catalog, tracks the alphabet sizes
along ``f^k`` (the §3.2 growth remark, tamed by label hygiene), and
regenerates the classic certificate: sinkless orientation is a fixed
point of ``f`` that is not 0-round solvable, hence not o(log* n).

The experiment runs twice — a cold pass and a warm pass over the same
problems — so the report also shows what the canonical operator cache
buys: the warm pass must reproduce the cold outputs exactly while
(cache enabled) hitting on every operator application.  ``--no-cache``
reruns everything through the raw kernels.
"""

import time

import pytest
from conftest import cache_report_lines, write_report

from repro.decidability import find_fixed_point_certificate
from repro.lcl import catalog
from repro.roundelim.ops import R, R_bar, simplify
from repro.roundelim.sequence import ProblemSequence

PROBLEMS = [
    ("trivial", lambda: catalog.trivial(3)),
    ("consensus", lambda: catalog.consensus(3)),
    ("sinkless-orientation", lambda: catalog.sinkless_orientation(3)),
    ("echo", lambda: catalog.echo(2)),
    ("echo2", lambda: catalog.echo2()),
    ("mis", lambda: catalog.mis(3)),
    ("3-coloring", lambda: catalog.coloring(3, 2)),
]


def run_experiment(problems=PROBLEMS, use_cache=True):
    lines = ["RE-fixedpoint: operator sizes and fixed-point certificates", ""]
    lines.append(f"  {'problem':<22} {'|out|':>5} {'|R|':>5} {'|f|':>5}  sequence")
    sizes = {}
    for name, build in problems:
        problem = build()
        sequence = ProblemSequence(problem, use_domination=True, use_cache=use_cache)
        try:
            r_size = len(sequence.intermediate(0).sigma_out)
            f_size = len(sequence.problem(1).sigma_out)
            growth = sequence.alphabet_sizes(1)
        except Exception as error:  # alphabet blow-up is an expected outcome
            r_size = f_size = -1
            growth = [len(problem.sigma_out), "blown-up"]
        sizes[name] = (len(problem.sigma_out), r_size, f_size)
        lines.append(
            f"  {name:<22} {len(problem.sigma_out):>5} {r_size:>5} {f_size:>5}  {growth}"
        )

    lines.append("")
    certificate = find_fixed_point_certificate(catalog.sinkless_orientation(3))
    lines.append("  " + certificate.summary())
    return sizes, certificate, "\n".join(lines)


def test_roundelim_sizes_and_certificate(once, roundelim_cache):
    use_cache = roundelim_cache.get_cache().enabled

    cold_start = time.perf_counter()
    sizes, certificate, report = once(run_experiment, use_cache=use_cache)
    cold_seconds = time.perf_counter() - cold_start

    warm_start = time.perf_counter()
    warm_sizes, warm_certificate, _ = run_experiment(use_cache=use_cache)
    warm_seconds = time.perf_counter() - warm_start

    # The cache must be invisible in the outputs...
    assert warm_sizes == sizes
    assert warm_certificate.certifies_lower_bound == certificate.certifies_lower_bound
    if use_cache:
        # ...while actually being used (and paying off) on the warm pass.
        assert roundelim_cache.hit_rate() > 0
        computes = {
            op: c["computes"]
            for op, c in roundelim_cache.stats()["operators"].items()
        }
        assert any(computes.values()), "cold pass should have executed kernels"

    report += "\n" + "\n".join(cache_report_lines(roundelim_cache))
    report += (
        f"\n  cold pass: {cold_seconds:.3f}s  warm pass: {warm_seconds:.3f}s"
    )
    write_report("roundelim", report)

    # Hygiene keeps the constant-class and fixed-point sequences tiny.
    assert sizes["sinkless-orientation"][2] == 2
    assert sizes["echo"][2] <= 4
    # The Θ(log* n) problems genuinely grow under f.
    assert sizes["3-coloring"][2] > sizes["3-coloring"][0]
    # The classic lower-bound certificate.
    assert certificate is not None and certificate.certifies_lower_bound


def test_warm_cache_speedup(roundelim_cache):
    """Warm ``f``-walks hit the cache on every operator application."""
    if not roundelim_cache.get_cache().enabled:
        pytest.skip("--no-cache")
    problem = catalog.mis(3)
    ProblemSequence(problem, use_domination=True).problem(1)
    before = {
        op: c["computes"] for op, c in roundelim_cache.stats()["operators"].items()
    }
    ProblemSequence(problem, use_domination=True).problem(1)
    after = {
        op: c["computes"] for op, c in roundelim_cache.stats()["operators"].items()
    }
    assert after == before, "warm walk recomputed an operator"
    assert roundelim_cache.hit_rate() > 0


@pytest.mark.parametrize(
    "name, build",
    [(n, b) for n, b in PROBLEMS if n in ("sinkless-orientation", "echo", "mis")],
)
def test_kernel_R_operator(benchmark, roundelim_cache, name, build):
    problem = build()
    use_cache = roundelim_cache.get_cache().enabled
    result = benchmark(lambda: R(problem, use_cache=use_cache))
    assert result.sigma_out


def test_kernel_full_f_step(benchmark, roundelim_cache):
    problem = catalog.sinkless_orientation(3)
    use_cache = roundelim_cache.get_cache().enabled
    benchmark(
        lambda: simplify(
            R_bar(R(problem, use_cache=use_cache), use_cache=use_cache),
            domination=True,
            use_cache=use_cache,
        )
    )
