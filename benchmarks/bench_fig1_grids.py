"""Experiment F1-grids: the Figure 1 (top right) landscape on oriented grids.

Corollary 1.5: on oriented d-dimensional grids the only complexities are
O(1), Θ(log* n), and Θ(n^{1/d}).  Measured here for d = 1 and d = 2 with
one representative per class, plus the Theorem 1.4 empty-gap check.
"""

from conftest import write_report

from repro.graphs.ids import random_ids
from repro.grids import (
    DimensionLengthProbe,
    FollowDimensionOrientation,
    GridProductColoring,
    OrientedGrid,
    prod_ids,
)
from repro.landscape import LandscapePanel
from repro.local import run_local_algorithm

SIDES_2D = [4, 6, 9, 13, 19]
LENGTHS_1D = [2**k for k in range(4, 9)]


def measure(grid: OrientedGrid, algorithm, ids=None) -> int:
    result = run_local_algorithm(
        grid.graph,
        algorithm,
        inputs=grid.orientation_inputs(),
        ids=ids,
    )
    return result.max_radius_used


def build_panel_2d() -> LandscapePanel:
    panel = LandscapePanel("F1-grids: oriented 2-dimensional toroidal grids")
    ns = [side * side for side in SIDES_2D]
    follow, coloring, probe = [], [], []
    for side in SIDES_2D:
        grid = OrientedGrid([side, side])
        follow.append(measure(grid, FollowDimensionOrientation()))
        coloring.append(
            measure(grid, GridProductColoring(dimensions=2), ids=prod_ids(grid, seed=side))
        )
        probe.append(measure(grid, DimensionLengthProbe()))
    panel.add("follow-orientation", "O(1)", ns, follow)
    panel.add("product-CV-9-coloring", "Theta(log* n)", ns, coloring)
    panel.add("dim0-side-length", "Theta(n^{1/2})", ns, probe)
    return panel


def build_panel_1d() -> LandscapePanel:
    panel = LandscapePanel("F1-grids: oriented 1-dimensional tori (directed cycles)")
    follow, coloring, probe = [], [], []
    for length in LENGTHS_1D:
        grid = OrientedGrid([length])
        follow.append(measure(grid, FollowDimensionOrientation()))
        coloring.append(
            measure(grid, GridProductColoring(dimensions=1), ids=prod_ids(grid, seed=length))
        )
        probe.append(measure(grid, DimensionLengthProbe()))
    panel.add("follow-orientation", "O(1)", LENGTHS_1D, follow)
    panel.add("product-CV-3-coloring", "Theta(log* n)", LENGTHS_1D, coloring)
    panel.add("dim0-side-length", "Theta(n)", LENGTHS_1D, probe)
    return panel


def test_fig1_grids_panels(once):
    def build_both():
        return build_panel_2d(), build_panel_1d()

    panel_2d, panel_1d = once(build_both)
    write_report("fig1_grids", panel_2d.render() + "\n\n" + panel_1d.render())

    for panel in (panel_2d, panel_1d):
        # Theorem 1.4: nothing lives between omega(1) and o(log* n).
        assert not panel.gap_violations()
        by_name = {row.problem: row for row in panel.rows}
        assert by_name["follow-orientation"].fit.best == "O(1)"
    # The global representatives scale with the dimension: n^{1/2} vs n.
    assert "Theta(n^{1/2})" in {
        row.problem: row for row in panel_2d.rows
    }["dim0-side-length"].fit.tied
    assert {row.problem: row for row in panel_1d.rows}[
        "dim0-side-length"
    ].fit.best == "Theta(n)"


def test_kernel_product_coloring(benchmark):
    grid = OrientedGrid([9, 9])
    inputs = grid.orientation_inputs()
    ids = prod_ids(grid, seed=9)
    benchmark(
        lambda: run_local_algorithm(
            grid.graph, GridProductColoring(dimensions=2), inputs=inputs, ids=ids
        )
    )


def test_kernel_grid_construction(benchmark):
    benchmark(lambda: OrientedGrid([13, 13]).orientation_inputs())
