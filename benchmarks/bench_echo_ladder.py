"""Experiment T-3.11b: scaling the pipeline down the echo ladder.

The ``echo_chain(k)`` family has LOCAL complexity exactly ``⌈k/2⌉`` and
alphabet ``4·3^{k-1}``, so it measures how the whole stack — reduced
universes, 0-round decision, multi-step lifting — scales with the
elimination depth and the label count: the ladder reaches a synthesized,
verified **3-round** algorithm from a 324-label problem.
"""

import pytest
from conftest import write_report

from repro.lcl import catalog
from repro.roundelim.gap import speedup, verify_on_random_forests

DEPTHS = [1, 2, 3, 4, 5]


def run_ladder():
    import time

    lines = ["T-3.11b: the echo ladder (depth k -> ceil(k/2) rounds)", ""]
    lines.append(
        f"  {'k':>2} {'|labels|':>9} {'rounds':>7} {'alphabets along f^i':<28} {'time':>7}"
    )
    outcomes = []
    for depth in DEPTHS:
        problem = catalog.echo_chain(depth)
        start = time.perf_counter()
        result = speedup(problem, max_steps=4, max_universe=20000)
        elapsed = time.perf_counter() - start
        verified = (
            verify_on_random_forests(result, component_sizes=(7, 4), trials=2)
            if result.algorithm is not None
            else False
        )
        outcomes.append((depth, result, verified))
        lines.append(
            f"  {depth:>2} {len(problem.sigma_out):>9} {str(result.constant_rounds):>7} "
            f"{str(result.alphabet_sizes):<28} {elapsed:>6.1f}s  verified={verified}"
        )
    return outcomes, "\n".join(lines)


def test_echo_ladder(once):
    outcomes, report = once(run_ladder)
    write_report("echo_ladder", report)
    for depth, result, verified in outcomes:
        assert result.status == "constant", depth
        assert result.constant_rounds == (depth + 1) // 2, depth
        assert verified, depth


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_kernel_ladder_step(benchmark, depth):
    problem = catalog.echo_chain(depth)
    result = benchmark(lambda: speedup(problem, max_steps=3, max_universe=20000))
    assert result.status == "constant"
