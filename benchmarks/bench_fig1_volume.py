"""Experiment F1-volume: the Figure 1 (bottom right) VOLUME landscape.

Theorem 1.3 plus [42, 16]: the deterministic VOLUME complexities of LCLs
are Θ(1), Θ(log* n), and polynomial classes up to Θ(n) — in particular
nothing in ω(1) ∩ o(log* n).  Measured as max probes per query on
consistently oriented cycles.
"""

from conftest import write_report

from repro.graphs import cycle, random_ids
from repro.landscape import LandscapePanel
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.volume import (
    ChainColeVishkin,
    ComponentCount,
    NeighborhoodAggregate,
    run_volume_algorithm,
)

NS = [2**k for k in range(4, 11)]


def build_panel() -> LandscapePanel:
    panel = LandscapePanel("F1-volume: probe-complexity landscape on oriented cycles")
    aggregate, chain, component = [], [], []
    for n in NS:
        graph = cycle(n)
        inputs = orient_path_inputs(graph)
        ids = random_ids(graph, seed=n)
        aggregate.append(
            run_volume_algorithm(graph, NeighborhoodAggregate(2), ids=ids).max_probes_used
        )
        chain.append(
            run_volume_algorithm(
                graph, ChainColeVishkin(), inputs=inputs, ids=ids
            ).max_probes_used
        )
        component.append(
            run_volume_algorithm(graph, ComponentCount(), ids=ids).max_probes_used
        )
    panel.add("neighborhood-max-degree", "O(1)", NS, aggregate)
    panel.add("chain-CV-3-coloring", "Theta(log* n)", NS, chain)
    panel.add("component-count", "Theta(n)", NS, component)
    return panel


def test_fig1_volume_panel(once):
    panel = once(build_panel)
    write_report("fig1_volume", panel.render())

    # Theorem 1.3 (via 4.1/4.3): the probe-complexity gap is empty.
    assert not panel.gap_violations()
    by_name = {row.problem: row for row in panel.rows}
    assert by_name["neighborhood-max-degree"].fit.best == "O(1)"
    assert by_name["component-count"].fit.best == "Theta(n)"
    # chain-CV's probes stay within the log* envelope.
    spread = max(by_name["chain-CV-3-coloring"].values) - min(
        by_name["chain-CV-3-coloring"].values
    )
    assert spread <= 3


def test_kernel_chain_cv_probe(benchmark):
    graph = cycle(256)
    inputs = orient_path_inputs(graph)
    ids = random_ids(graph, seed=3)
    benchmark(
        lambda: run_volume_algorithm(
            graph, ChainColeVishkin(), inputs=inputs, ids=ids
        ).max_probes_used
    )


def test_kernel_component_count(benchmark):
    graph = cycle(128)
    ids = random_ids(graph, seed=4)
    benchmark(
        lambda: run_volume_algorithm(graph, ComponentCount(), ids=ids).max_probes_used
    )
