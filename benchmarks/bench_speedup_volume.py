"""Experiment T-4.1: the VOLUME speedup (order invariance + Thm 2.11).

Executable content of Theorem 4.1/4.3: an order-invariant o(log* n)-probe
algorithm, fooled with a fixed n₀ (Theorem 2.11), keeps constant probe
complexity and correct outputs on arbitrarily larger instances; a
non-order-invariant algorithm is refuted by the checker (the Ramsey half
of the proof is existential — see DESIGN.md).
"""

from conftest import write_report

from repro.graphs import cycle, random_ids, star
from repro.lcl import catalog, is_valid_solution
from repro.graphs.core import HalfEdgeLabeling
from repro.local.algorithms.cole_vishkin import orient_path_inputs
from repro.volume import (
    ChainColeVishkin,
    NeighborhoodAggregate,
    check_volume_order_invariance,
    fooled_constant_volume,
    run_volume_algorithm,
    smallest_volume_n0,
)

SIZES = [32, 128, 512, 2048]


def run_experiment():
    lines = ["T-4.1: VOLUME order invariance and Theorem 2.11 fooling", ""]

    invariant = check_volume_order_invariance(
        NeighborhoodAggregate(3), star(3), ids=[4, 8, 15, 16]
    )
    ring = cycle(16)
    refuted = not check_volume_order_invariance(
        ChainColeVishkin(),
        ring,
        ids=random_ids(ring, seed=5),
        inputs=orient_path_inputs(ring),
        trials=8,
    )
    lines.append(f"  aggregate order-invariant: {invariant}")
    lines.append(f"  chain-CV refuted as order-invariant: {refuted}")

    n0 = smallest_volume_n0(lambda n: 2, max_degree=2, checking_radius=1)
    fooled = fooled_constant_volume(NeighborhoodAggregate(2), n0=n0)
    lines.append(f"  Theorem 2.11 n0 for the aggregate: {n0}")
    probes = []
    for n in SIZES:
        graph = cycle(n)
        result = run_volume_algorithm(graph, fooled, ids=random_ids(graph, seed=n))
        probes.append(result.max_probes_used)
        correct = all(
            result.outputs[h] == 2 for h in graph.half_edges()
        )
        lines.append(
            f"  n={n:<5d} probes={result.max_probes_used} output-correct={correct}"
        )
    return invariant, refuted, probes, "\n".join(lines)


def test_volume_speedup(once):
    invariant, refuted, probes, report = once(run_experiment)
    write_report("speedup_volume", report)
    assert invariant
    assert refuted
    # Constant probe complexity across a 64x size range.
    assert len(set(probes)) == 1


def test_kernel_order_invariance_check(benchmark):
    graph = star(3)
    benchmark(
        lambda: check_volume_order_invariance(
            NeighborhoodAggregate(3), graph, ids=[4, 8, 15, 16], trials=3
        )
    )


def test_kernel_fooled_query(benchmark):
    graph = cycle(512)
    fooled = fooled_constant_volume(NeighborhoodAggregate(2), n0=32)
    ids = random_ids(graph, seed=1)
    benchmark(lambda: run_volume_algorithm(graph, fooled, ids=ids))
