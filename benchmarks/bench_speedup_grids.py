"""Experiment T-5.1: the oriented-grid speedup (Props 5.3–5.5).

Executable content of Theorem 5.1: the orientation hands every ball a
canonical identifier order (Prop. 5.5), so an order-invariant PROD-LOCAL
algorithm fooled with a fixed n₀ runs in constant rounds and stays
correct on arbitrarily large oriented grids; the non-order-invariant
Θ(log* n) coloring is refuted by the invariance checker, showing why it
does not collapse.
"""

from conftest import write_report

from repro.graphs.core import HalfEdgeLabeling
from repro.grids import (
    FollowDimensionOrientation,
    GridProductColoring,
    OrientedGrid,
    check_prod_order_invariance,
    coordinate_prod_ids,
    fooled_grid_algorithm,
    prod_ids,
)
from repro.lcl import catalog, is_valid_solution
from repro.local import run_local_algorithm

SIDES = [4, 8, 16, 24]


def run_experiment():
    lines = ["T-5.1: oriented-grid speedup (Props 5.3-5.5)", ""]
    small = OrientedGrid([5, 5])
    invariant = check_prod_order_invariance(
        FollowDimensionOrientation(), small, prod_ids(small, seed=1)
    )
    refuted = not check_prod_order_invariance(
        GridProductColoring(dimensions=2), small, prod_ids(small, seed=1), trials=8
    )
    lines.append(f"  follow-orientation order-invariant: {invariant}")
    lines.append(f"  product coloring refuted as order-invariant: {refuted}")

    fooled = fooled_grid_algorithm(FollowDimensionOrientation(), n0=9)
    radii, valid = [], []
    for side in SIDES:
        grid = OrientedGrid([side, side])
        result = run_local_algorithm(
            grid.graph,
            fooled,
            inputs=grid.orientation_inputs(),
            ids=coordinate_prod_ids(grid),
        )
        radii.append(result.max_radius_used)
        ok = is_valid_solution(
            catalog.sinkless_orientation(4),
            grid.graph,
            HalfEdgeLabeling.constant(grid.graph, catalog.NO_INPUT),
            result.outputs,
        )
        valid.append(ok)
        lines.append(
            f"  {side:>2d}x{side:<2d} grid: radius={result.max_radius_used} valid={ok}"
        )
    return invariant, refuted, radii, valid, "\n".join(lines)


def test_grid_speedup(once):
    invariant, refuted, radii, valid, report = once(run_experiment)
    write_report("speedup_grids", report)
    assert invariant and refuted
    assert all(valid)
    # Constant locality across a 36x node-count range.
    assert set(radii) == {0}


def test_kernel_prod_invariance_check(benchmark):
    grid = OrientedGrid([4, 4])
    ids = prod_ids(grid, seed=2)
    benchmark(
        lambda: check_prod_order_invariance(
            FollowDimensionOrientation(), grid, ids, trials=2
        )
    )


def test_kernel_fooled_grid_run(benchmark):
    grid = OrientedGrid([12, 12])
    fooled = fooled_grid_algorithm(FollowDimensionOrientation(), n0=9)
    inputs = grid.orientation_inputs()
    ids = coordinate_prod_ids(grid)
    benchmark(
        lambda: run_local_algorithm(grid.graph, fooled, inputs=inputs, ids=ids)
    )
