"""Experiment SUP: the cost and value of supervised campaigns.

The supervisor (:mod:`repro.supervisor`) is the production posture for
landscape sweeps: per-cell subprocess isolation, bounded deterministic
retries, journaled resume, structured quarantine.  This experiment
measures what that posture costs and proves what it buys:

* supervision overhead — the same VOLUME panel campaign measured inline
  (clean serial baseline), under subprocess isolation, and isolated with
  a journal attached (per-line checksum + flush + fsync);
* chaos recovery — the campaign re-run under injected ``sim_crash`` /
  ``sim_oom`` / ``journal_torn`` faults with retries, asserting per-cell
  values **bit-identical** to the clean serial baseline;
* resume speedup — a journal-backed re-run that restores every cell
  without recomputation.
"""

import time

from conftest import write_report

from repro.supervisor import CampaignConfig, open_journal, run_campaign
from repro.supervisor.measurements import assemble_panel, plan_panel
from repro.utils import faults

PANEL = "volume"
POINTS = 5
CHAOS = {"sim_crash": 0.2, "sim_oom": 0.1, "journal_torn": 0.1}
CHAOS_SEED = 9
RETRIES = 4


def timed_campaign(plan, config, journal=None, resume=False):
    start = time.perf_counter()
    report = run_campaign(plan.cells, config, journal=journal, resume=resume)
    return report, time.perf_counter() - start


def run_experiment(tmp_dir):
    plan = plan_panel(PANEL, POINTS)
    lines = [f"SUP: supervised campaign overhead and recovery ({PANEL} panel)", ""]

    faults.configure_faults(None)
    baseline, t_inline = timed_campaign(plan, CampaignConfig(isolation="inline"))
    isolated, t_process = timed_campaign(
        plan, CampaignConfig(isolation="process", timeout=120.0)
    )
    journal = open_journal(plan.cells, seed=0, directory=tmp_dir)
    journaled, t_journal = timed_campaign(
        plan, CampaignConfig(isolation="process", timeout=120.0), journal=journal
    )
    resumed, t_resume = timed_campaign(
        plan,
        CampaignConfig(isolation="process", timeout=120.0),
        journal=journal,
        resume=True,
    )

    faults.configure_faults(CHAOS, seed=CHAOS_SEED)
    chaos_journal = open_journal(plan.cells, seed=1, directory=tmp_dir)
    chaotic, t_chaos = timed_campaign(
        plan,
        CampaignConfig(seed=0, isolation="process", timeout=120.0, retries=RETRIES),
        journal=chaos_journal,
    )
    faults.configure_faults(None)

    cells = len(plan.cells)
    rows = [
        ("inline (clean serial baseline)", t_inline, baseline),
        ("subprocess isolation", t_process, isolated),
        ("isolation + journal", t_journal, journaled),
        ("journal resume (no recompute)", t_resume, resumed),
        (f"chaos {CHAOS} + retries", t_chaos, chaotic),
    ]
    lines.append(f"  {'mode':<38} {'total':>8} {'per-cell':>9} {'summary'}")
    for label, elapsed, report in rows:
        lines.append(
            f"  {label:<38} {elapsed:>7.3f}s {elapsed / cells * 1e3:>7.1f}ms"
            f"  {report.summary()}"
        )
    retried = sum(1 for r in chaotic.results if r.attempts > 1)
    lines.append("")
    lines.append(f"  chaos run: {retried} cell(s) needed retries; values bit-identical")

    panel = assemble_panel(plan, chaotic)
    lines.append("")
    lines.append(panel.render())

    results = {
        "baseline": baseline,
        "isolated": isolated,
        "journaled": journaled,
        "resumed": resumed,
        "chaotic": chaotic,
        "panel": panel,
        "retried": retried,
    }
    return results, "\n".join(lines)


def test_supervised_campaign(once, tmp_path):
    results, report = once(run_experiment, tmp_path)
    write_report("supervised_campaign", report)

    baseline = results["baseline"].values()
    # Isolation, journaling, chaos + retries: all bit-identical to the
    # clean serial baseline — supervision never changes a measurement.
    assert results["isolated"].values() == baseline
    assert results["journaled"].values() == baseline
    assert results["chaotic"].values() == baseline
    # The resume restored every cell from the journal.
    assert results["resumed"].values() == baseline
    assert results["resumed"].resumed_count == len(baseline)
    # The assembled panel stays clean: empty gap, no quarantine.
    assert not results["panel"].gap_violations()
    assert results["panel"].complete
