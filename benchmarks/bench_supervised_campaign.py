"""Experiment SUP: the cost and value of supervised campaigns.

The supervisor (:mod:`repro.supervisor`) is the production posture for
landscape sweeps: per-cell subprocess isolation, bounded deterministic
retries, journaled resume, structured quarantine.  This experiment
measures what that posture costs and proves what it buys:

* supervision overhead — the same VOLUME panel campaign measured inline
  (clean serial baseline), under subprocess isolation, and isolated with
  a journal attached (per-line checksum + flush + fsync);
* chaos recovery — the campaign re-run under injected ``sim_crash`` /
  ``sim_oom`` / ``journal_torn`` faults with retries, asserting per-cell
  values **bit-identical** to the clean serial baseline;
* resume speedup — a journal-backed re-run that restores every cell
  without recomputation;
* scheduler scaling — the same campaign across 1/2/4 lease-supervised
  worker processes (:mod:`repro.scheduler`), values and journal bytes
  pinned to the serial run, wall-clock recorded to
  ``results/BENCH_scheduler.json`` over time.
"""

import json
import os
import time

from conftest import RESULTS_DIR, write_report

from repro.scheduler import SchedulerConfig, run_scheduled_campaign
from repro.supervisor import CampaignConfig, open_journal, run_campaign
from repro.supervisor.measurements import assemble_panel, plan_panel
from repro.utils import faults

PANEL = "volume"
POINTS = 5
CHAOS = {"sim_crash": 0.2, "sim_oom": 0.1, "journal_torn": 0.1}
CHAOS_SEED = 9
RETRIES = 4
WORKER_COUNTS = (1, 2, 4)
#: The scaling experiment uses a deeper panel than the overhead one:
#: its largest cells run for seconds, so worker parallelism has real
#: work to amortize the dispatch/lease machinery against.
SCALING_POINTS = 7
SCHEDULER_TRAJECTORY = "BENCH_scheduler.json"


def timed_campaign(plan, config, journal=None, resume=False):
    start = time.perf_counter()
    report = run_campaign(plan.cells, config, journal=journal, resume=resume)
    return report, time.perf_counter() - start


def run_experiment(tmp_dir):
    plan = plan_panel(PANEL, POINTS)
    lines = [f"SUP: supervised campaign overhead and recovery ({PANEL} panel)", ""]

    faults.configure_faults(None)
    baseline, t_inline = timed_campaign(plan, CampaignConfig(isolation="inline"))
    isolated, t_process = timed_campaign(
        plan, CampaignConfig(isolation="process", timeout=120.0)
    )
    journal = open_journal(plan.cells, seed=0, directory=tmp_dir)
    journaled, t_journal = timed_campaign(
        plan, CampaignConfig(isolation="process", timeout=120.0), journal=journal
    )
    resumed, t_resume = timed_campaign(
        plan,
        CampaignConfig(isolation="process", timeout=120.0),
        journal=journal,
        resume=True,
    )

    faults.configure_faults(CHAOS, seed=CHAOS_SEED)
    chaos_journal = open_journal(plan.cells, seed=1, directory=tmp_dir)
    chaotic, t_chaos = timed_campaign(
        plan,
        CampaignConfig(seed=0, isolation="process", timeout=120.0, retries=RETRIES),
        journal=chaos_journal,
    )
    faults.configure_faults(None)

    cells = len(plan.cells)
    rows = [
        ("inline (clean serial baseline)", t_inline, baseline),
        ("subprocess isolation", t_process, isolated),
        ("isolation + journal", t_journal, journaled),
        ("journal resume (no recompute)", t_resume, resumed),
        (f"chaos {CHAOS} + retries", t_chaos, chaotic),
    ]
    lines.append(f"  {'mode':<38} {'total':>8} {'per-cell':>9} {'summary'}")
    for label, elapsed, report in rows:
        lines.append(
            f"  {label:<38} {elapsed:>7.3f}s {elapsed / cells * 1e3:>7.1f}ms"
            f"  {report.summary()}"
        )
    retried = sum(1 for r in chaotic.results if r.attempts > 1)
    lines.append("")
    lines.append(f"  chaos run: {retried} cell(s) needed retries; values bit-identical")

    panel = assemble_panel(plan, chaotic)
    lines.append("")
    lines.append(panel.render())

    results = {
        "baseline": baseline,
        "isolated": isolated,
        "journaled": journaled,
        "resumed": resumed,
        "chaotic": chaotic,
        "panel": panel,
        "retried": retried,
    }
    return results, "\n".join(lines)


def run_scaling_experiment(tmp_dir):
    """Worker-count scaling: the scheduled campaign must match the
    serial journaled run in values *and* journal bytes at every width."""
    plan = plan_panel(PANEL, SCALING_POINTS)
    faults.configure_faults(None)

    serial_dir = tmp_dir / "serial"
    serial_dir.mkdir(parents=True, exist_ok=True)
    serial_journal = open_journal(plan.cells, seed=0, directory=serial_dir)
    config = CampaignConfig(isolation="process", timeout=120.0)
    serial, t_serial = timed_campaign(plan, config, journal=serial_journal)
    serial_bytes = serial_journal.path.read_bytes()

    cells = len(plan.cells)
    cores = os.cpu_count() or 1
    rows = [
        {
            "mode": "serial",
            "workers": 0,
            "cores": cores,
            "cells": cells,
            "seconds": round(t_serial, 6),
            "speedup": 1.0,
        }
    ]
    reports = {}
    for workers in WORKER_COUNTS:
        directory = tmp_dir / f"workers-{workers}"
        directory.mkdir(parents=True, exist_ok=True)
        journal = open_journal(plan.cells, seed=0, directory=directory)
        start = time.perf_counter()
        report = run_scheduled_campaign(
            plan.cells,
            config,
            scheduler=SchedulerConfig(workers=workers),
            journal=journal,
        )
        elapsed = time.perf_counter() - start
        reports[workers] = (report, journal.path.read_bytes())
        rows.append(
            {
                "mode": "scheduled",
                "workers": workers,
                "cores": cores,
                "cells": cells,
                "seconds": round(elapsed, 6),
                "speedup": round(t_serial / elapsed, 2),
            }
        )

    lines = [
        "SUP-SCHED: lease-based scheduler worker scaling "
        f"({cores} core(s) — CPU-bound cells cannot beat the core count; "
        "the pinned contract is value and journal-byte identity)",
        "",
    ]
    lines.append(f"  {'mode':<12} {'workers':>7} {'cells':>6} {'total':>9} {'speedup':>8}")
    for row in rows:
        label = "serial" if row["mode"] == "serial" else f"{row['workers']}"
        lines.append(
            f"  {row['mode']:<12} {label:>7} {row['cells']:>6} "
            f"{row['seconds']:>8.3f}s {row['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("  values and journal bytes identical to serial at every width")
    return {"serial": serial, "serial_bytes": serial_bytes,
            "reports": reports, "rows": rows}, "\n".join(lines)


def append_scheduler_trajectory(rows, results_dir=None):
    """Append one entry to the ``BENCH_scheduler.json`` scaling trajectory."""
    directory = results_dir or RESULTS_DIR
    directory.mkdir(exist_ok=True)
    target = directory / SCHEDULER_TRAJECTORY
    trajectory = []
    if target.exists():
        trajectory = json.loads(target.read_text(encoding="utf-8"))
    trajectory.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
            "rows": rows,
        }
    )
    target.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    return target


def test_scheduler_worker_scaling(once, tmp_path):
    results, report = once(run_scaling_experiment, tmp_path)
    write_report("scheduler_scaling", report)
    append_scheduler_trajectory(results["rows"])

    baseline = results["serial"].values()
    for workers, (scheduled, journal_bytes) in sorted(results["reports"].items()):
        assert scheduled.values() == baseline, f"workers={workers} diverged"
        assert journal_bytes == results["serial_bytes"], (
            f"workers={workers} journal not byte-identical"
        )
        assert not scheduled.quarantined


def test_supervised_campaign(once, tmp_path):
    results, report = once(run_experiment, tmp_path)
    write_report("supervised_campaign", report)

    baseline = results["baseline"].values()
    # Isolation, journaling, chaos + retries: all bit-identical to the
    # clean serial baseline — supervision never changes a measurement.
    assert results["isolated"].values() == baseline
    assert results["journaled"].values() == baseline
    assert results["chaotic"].values() == baseline
    # The resume restored every cell from the journal.
    assert results["resumed"].values() == baseline
    assert results["resumed"].resumed_count == len(baseline)
    # The assembled panel stays clean: empty gap, no quarantine.
    assert not results["panel"].gap_violations()
    assert results["panel"].complete
