"""The declarative contract registry shared by every rule family.

PR 6 and PR 7 each patched the ordered-output stem list inside
``rules/ordering.py`` ad hoc; this module is the single place where the
project's determinism *vocabulary* lives, so the per-statement rules
(REP002), the interprocedural taint rules (REP010), the fork-safety
rules (REP011), and the engine-freedom rules (REP003/REP012) can never
drift apart on what counts as a source, a sink, or an entrypoint.

Everything here is data, not behavior:

* **ordered-output surfaces** — module stems/packages whose bytes must
  be identical across processes (REP002's scope, REP010's sink modules);
* **taint sources** — the expression shapes that introduce
  nondeterminism (unseeded RNG, unordered iteration, wall clock,
  ``os.environ``);
* **sink verbs** — the function-name shapes that serialize, hash, or
  persist a value (``encode*``, ``canonical*``, ``append``ing to a
  journal, ...);
* **fork entrypoints** — where execution crosses into a forked child
  (``_run_chunks`` worker slots, the supervisor cell entry);
* **engine-freedom frontier** — checker roots, producer exemptions, and
  forbidden engine packages.

``tests/test_lint_contracts.py`` asserts the tables stay in sync with
the real tree: every public serialization entrypoint of the
canonical/codec/checkpoint/journal/encode modules must be classified as
a sink by :func:`is_sink_name`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

# --------------------------------------------------------------------------
# Ordered-output surfaces (REP002 scope; REP010 sink modules).
# --------------------------------------------------------------------------

#: File stems whose whole module is an ordered-output surface: their
#: public functions produce bytes/structures that must be identical
#: across processes and label spellings.
ORDERED_OUTPUT_STEMS = frozenset(
    {"bitset", "canonical", "codec", "checkpoint", "encode", "journal"}
)

#: Any module inside a package with one of these segments is an
#: ordered-output surface (the certificate envelope tree).
ORDERED_OUTPUT_PACKAGES = frozenset({"verify"})

#: Builtins that consume an iterable order-insensitively; feeding them
#: an unordered iterable is safe, and their result sheds order taint.
ORDER_INSENSITIVE_SINKS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Dict methods returning unordered-contract views (dict order is
#: insertion order, which is itself a process artifact for our
#: canonical-bytes purposes — same stance as REP002 since PR 4).
UNORDERED_VIEW_METHODS = frozenset({"keys", "values", "items"})


def is_ordered_output_module(stem: str, segments: Sequence[str]) -> bool:
    """Whether ``module`` (file stem + dotted segments) is an
    ordered-output surface."""
    if stem in ORDERED_OUTPUT_STEMS:
        return True
    return bool(ORDERED_OUTPUT_PACKAGES & set(segments[:-1]))


# --------------------------------------------------------------------------
# Sink verbs (REP010): function names that serialize/hash/persist.
# --------------------------------------------------------------------------

#: Name prefixes marking a function as a serialization/persistence sink
#: *when it lives in an ordered-output module*.  A tainted value passed
#: into one of these crosses from "in-memory" to "bytes someone will
#: compare".
SINK_NAME_PREFIXES: Tuple[str, ...] = (
    "encode",
    "canonical",
    "serialize",
    "checksum",
    "digest",
    "dump",
    "write",
    "save",
    "append",
    "record",
    "pack",
    "store",
    "fingerprint",
)

#: Method names that persist their argument when invoked on a receiver
#: whose name mentions one of :data:`SINK_RECEIVER_HINTS` (catches
#: ``journal.append(row)`` / ``self._checkpoint.write(...)`` where the
#: receiver type is invisible statically).
SINK_METHOD_NAMES = frozenset({"append", "write", "save", "record", "add_row"})

#: Receiver-name fragments that mark an attribute call as a persistence
#: sink (``self._journal``, ``run_journal``, ``checkpoint`` ...).
SINK_RECEIVER_HINTS = frozenset({"journal", "checkpoint", "certificate", "envelope"})


def is_sink_name(name: str) -> bool:
    """Whether a function *name* has a sink verb shape."""
    return name.lstrip("_").startswith(SINK_NAME_PREFIXES)


def is_sink_function(qualname: str) -> bool:
    """Whether a project function qualname is a serialization sink:
    a sink-verb name defined in an ordered-output module."""
    parts = qualname.split(".")
    if len(parts) < 2:
        return False
    name = parts[-1]
    # The defining module may be `pkg.codec` (function) or
    # `pkg.codec.Class` (method) — scan every candidate module prefix.
    for end in range(1, len(parts)):
        stem = parts[end - 1]
        if is_ordered_output_module(stem, parts[:end]) and is_sink_name(name):
            return True
    return False


def sink_method_receiver(receiver_parts: Sequence[str], method: str) -> Optional[str]:
    """Classify an attribute call ``a.b.method(x)`` as a sink from the
    receiver's *name* alone; returns a short sink description or None.

    ``receiver_parts`` are the dotted name parts of the receiver
    expression (``self._journal`` -> ``("self", "_journal")``).
    """
    if method not in SINK_METHOD_NAMES:
        return None
    for part in receiver_parts:
        lowered = part.lstrip("_").lower()
        for hint in SINK_RECEIVER_HINTS:
            if hint in lowered:
                return f"{'.'.join(receiver_parts)}.{method}"
    return None


# --------------------------------------------------------------------------
# Taint sources.
# --------------------------------------------------------------------------

#: Taint kinds tracked by the dataflow engine.
TAINT_RNG = "unseeded-rng"
TAINT_ORDER = "set-order"
TAINT_CLOCK = "wall-clock"
TAINT_ENV = "environ"

ALL_TAINT_KINDS = (TAINT_RNG, TAINT_ORDER, TAINT_CLOCK, TAINT_ENV)

#: ``random``-module callables backed by the hidden global generator
#: (shared with REP001).
GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "seed",
        "setstate",
        "getstate",
    }
)

#: Wall-clock reads (shared with REP005).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Environment reads whose value is ambient process state.
ENVIRON_CALLS = frozenset({"os.getenv", "os.environ.get"})


# --------------------------------------------------------------------------
# Fork / pool entrypoints (REP011).
# --------------------------------------------------------------------------

#: Call-site shapes whose arguments become fork/pool roots:
#: name -> 0-based positional indexes shipped to workers (matching
#: REP004's table for ``_run_chunks``).
FORK_SUBMIT_NAMES = {"_run_chunks": (1, 3)}

#: Keyword names that carry pool-bound callables at those call sites.
FORK_SUBMIT_KEYWORDS = frozenset({"worker_fn", "initializer"})

#: Decorator name whose decorated function runs inside a forked
#: supervisor cell (``@register_runner("name")`` in repro.supervisor).
FORK_RUNNER_DECORATORS = frozenset({"register_runner"})

#: Qualname suffixes that are fork-child entrypoints by construction.
FORK_ENTRYPOINT_SUFFIXES: Tuple[str, ...] = (
    "supervisor.isolation._child_entry",
    "supervisor.isolation._execute",
    "scheduler.worker._worker_main",
)

#: Module-level constructor calls considered unpicklable when a
#: fork-reachable function references the global they are bound to.
UNPICKLABLE_GLOBAL_CALLS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition", "open"}
)


# --------------------------------------------------------------------------
# Engine-freedom frontier (REP003 module-level, REP012 call-level).
# --------------------------------------------------------------------------

#: Package segments marking the import-pure checker roots.
CHECKER_PACKAGES = frozenset({"verify"})

#: Final segments of modules declared producer-side (lazily loaded, may
#: use the engine); both the import-graph rule and the call-graph rule
#: treat them as a sanctioned boundary.
PRODUCER_STEMS = frozenset({"certify"})

#: Package segments the checker half must never reach.
FORBIDDEN_ENGINE_SEGMENTS = frozenset({"roundelim", "decidability"})


def is_checker_module(module: str) -> bool:
    parts = module.split(".")
    return bool(CHECKER_PACKAGES & set(parts)) and parts[-1] not in PRODUCER_STEMS


def is_producer_module(module: str) -> bool:
    parts = module.split(".")
    return bool(CHECKER_PACKAGES & set(parts)) and parts[-1] in PRODUCER_STEMS


def is_engine_module(module: str) -> bool:
    return bool(FORBIDDEN_ENGINE_SEGMENTS & set(module.split(".")))
