"""Incremental per-file lint cache.

One JSON record per linted file, keyed by the sha256 of the file's raw
bytes plus a global *salt*.  A record stores exactly the per-file,
context-free products of analysis:

* the raw (pre-suppression, pre-baseline) per-file rule findings;
* the :class:`~repro.analysis.summaries.FileFacts` bundle (function
  records, import-edge candidates, module globals);
* the source text (needed to rebuild suppression directives and report
  snippets without re-reading at a racy later moment).

On a warm hit the driver skips ``ast.parse`` and every per-file rule
entirely — that is where the whole-repo speedup comes from.  Everything
cross-file (import graph, taint propagation, fork reachability) is
recomputed from the cached facts on every run, so invalidation is
transitively sound *by construction*: there is nothing stale to
invalidate.

The salt folds in:

* :data:`ANALYSIS_VERSION` — bumped whenever extraction or rule logic
  changes shape;
* the active rule codes (a ``--select``/``--disable`` run must not
  poison the default run's cache, and vice versa);
* the env-knob registry digest (REP006 findings and parent-scope
  classifications depend on it).

Corrupt or mismatched records are treated as misses, never as errors —
the cache can always be deleted with ``rm -r``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.core import Finding
from repro.analysis.summaries import FileFacts

#: Bump on any change to extraction logic, dep encoding, or per-file
#: rule behavior: every cached record becomes a miss.
ANALYSIS_VERSION = 2

#: Record format sanity marker.
_FORMAT = "repro-lint-cache-v1"


def _env_registry_digest() -> str:
    """Digest of the declared env-knob registry (name, default, scope):
    editing ``repro/utils/env.py`` must invalidate cached findings."""
    try:
        from repro.utils.env import REGISTRY
    except Exception:  # pragma: no cover - env module always importable
        return "no-registry"
    rows = [
        (knob.name, repr(knob.default), getattr(knob, "scope", "any"))
        for knob in REGISTRY.values()
    ]
    payload = json.dumps(sorted(rows), separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def compute_salt(active_codes: Sequence[str]) -> str:
    payload = json.dumps(
        {
            "version": ANALYSIS_VERSION,
            "codes": sorted(active_codes),
            "env": _env_registry_digest(),
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CachedFile:
    """A warm-cache replay of one file's per-file analysis."""

    findings: List[Finding]
    facts: FileFacts
    source: str


class LintCache:
    """Content-addressed per-file store under ``<dir>/<rel-path-hash>.json``."""

    def __init__(self, directory: Path, salt: str):
        self.directory = directory
        self.salt = salt

    # -- construction -------------------------------------------------------
    @classmethod
    def open(
        cls,
        active_codes: Sequence[str],
        enabled: Optional[bool] = None,
        directory: Optional[Union[str, Path]] = None,
        root: Optional[Path] = None,
    ) -> Optional["LintCache"]:
        """The configured cache, or ``None`` when disabled.  Defaults
        come from the ``REPRO_LINT_CACHE`` / ``REPRO_LINT_CACHE_DIR``
        knobs; explicit arguments win.  A *relative* cache directory is
        anchored at ``root`` (the lint root), so linting a checkout keeps
        its cache inside that checkout."""
        from repro.utils import env as env_knobs

        if enabled is None:
            enabled = env_knobs.get_bool("REPRO_LINT_CACHE")
        if not enabled:
            return None
        if directory is None:
            directory = env_knobs.get_str("REPRO_LINT_CACHE_DIR")
        path = Path(directory).expanduser()
        if not path.is_absolute() and root is not None:
            path = Path(root) / path
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None  # unwritable cache dir -> run uncached
        return cls(path, compute_salt(active_codes))

    # -- keys ---------------------------------------------------------------
    def _record_path(self, rel_path: str) -> Path:
        name = hashlib.sha256(rel_path.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"{name}.json"

    @staticmethod
    def content_hash(raw: bytes) -> str:
        return hashlib.sha256(raw).hexdigest()

    # -- lookup / store -----------------------------------------------------
    def lookup(self, rel_path: str, raw: bytes) -> Optional[CachedFile]:
        record_path = self._record_path(rel_path)
        try:
            payload = json.loads(record_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _FORMAT
            or payload.get("salt") != self.salt
            or payload.get("rel_path") != rel_path
            or payload.get("content_sha256") != self.content_hash(raw)
        ):
            return None
        try:
            findings = [Finding.from_cache_dict(f) for f in payload["findings"]]
            facts = FileFacts.from_dict(payload["facts"])
            source = payload["source"]
        except (KeyError, TypeError, ValueError):
            return None
        return CachedFile(findings=findings, facts=facts, source=source)

    def store(
        self,
        rel_path: str,
        raw: bytes,
        findings: Sequence[Finding],
        facts: FileFacts,
        source: str,
    ) -> None:
        payload = {
            "format": _FORMAT,
            "salt": self.salt,
            "rel_path": rel_path,
            "content_sha256": self.content_hash(raw),
            "findings": [f.cache_dict() for f in findings],
            "facts": facts.as_dict(),
            "source": source,
        }
        record_path = self._record_path(rel_path)
        tmp = record_path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(
                json.dumps(payload, separators=(",", ":"), sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, record_path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- maintenance --------------------------------------------------------
    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for record in self.directory.glob("*.json"):
            try:
                record.unlink()
                removed += 1
            except OSError:
                pass
        return removed
