"""Static analysis for the gap pipeline: ``repro-lint``.

The pipeline's headline guarantees — relabeling-invariant canonical
hashes, bit-identical checkpoint resume, engine-free and seed-replayable
certificates — rest on invariants that used to be enforced only
dynamically, after the fact, by fresh-interpreter and replay test
suites.  This package proves them at lint time, on every file:

========  ==============================================================
REP001    no unseeded / global randomness in library code
REP002    no unordered (set / dict-view) iteration in ordered-output
          modules without ``sorted()``
REP003    the certificate checker stays statically engine-free
REP004    pool-bound callables are module-level and picklable
REP005    no wall-clock reads in replay-sensitive paths
REP006    every ``REPRO_*`` knob is declared in ``repro.utils.env`` and
          read through its typed accessors
REP007    no bare ``except:``
REP008    no mutable default arguments
REP009    only ``ReproError`` subclasses cross the public API
REP010    no nondeterministic value reaching a serialization sink across
          calls (interprocedural taint with witness chains)
REP011    no fork-unsafe state (global mutation, unpicklable captures,
          parent-scoped knob reads) reachable from pool/cell workers
REP012    no engine *call* reachable from the certificate checker, even
          through sanctioned lazy function-level imports
========  ==============================================================

REP001–REP009 are single-pass, per-file rules.  REP010–REP012 consume
the whole-program dataflow engine: per-function summaries
(:mod:`repro.analysis.summaries`, cached per content hash by
:mod:`repro.analysis.cache`) propagated to a fixed point over the
project call graph (:mod:`repro.analysis.dataflow`) on every run.

Entry points: the ``repro-lint`` console script, ``python -m
repro.analysis``, and the ``lcl-landscape lint`` verb.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalog, suppression syntax
(``# repro-lint: disable=REPXXX``), and the baseline workflow.
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    Project,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register,
    run_lint,
)

__all__ = [
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "register",
    "run_lint",
]
