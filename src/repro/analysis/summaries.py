"""Per-function dataflow facts: the cacheable half of the analyzer.

For every function in a file this module extracts a *local*
:class:`FunctionRecord` — which taints the function generates, how its
return value and call arguments depend on parameters and callee returns,
which serialization sinks it feeds, which fork hazards it carries.  The
records are pure data (JSON round-trip via :meth:`FileFacts.as_dict`),
deliberately independent of every *other* file, so the incremental cache
(:mod:`repro.analysis.cache`) can key them on the file's content hash
alone.  Everything cross-file — call resolution, fixed-point taint
propagation, reachability — happens later in
:mod:`repro.analysis.dataflow`, recomputed on every run from these
facts, which is what makes cache invalidation trivially sound: a changed
file re-derives its facts, and every whole-program judgment downstream
of it is rebuilt from scratch.

Dependency facts ("deps") are small tagged tuples:

=============================  ============================================
``("taint", kind, line, d)``   value carries nondeterminism ``kind`` born
                               at ``line`` (description ``d``)
``("unordered", line, d)``     value is an unordered container; taints on
                               iteration / materialization
``("call", key, line)``        value derives from the return of project
                               function ``key`` (resolved candidates)
``("param", name)``            value derives from this function's param
``("fref", key, line)``        value *is* a reference to project function
                               ``key`` (fork-root discovery)
=============================  ============================================

The variable environment is a single forward pass with union semantics
at joins — flow-sensitive enough for lint, cheap enough to run on every
file on every commit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis import contracts
from repro.analysis.core import FileContext

Dep = Tuple[Any, ...]
DepSet = FrozenSet[Dep]

_EMPTY: DepSet = frozenset()

#: Recursion guard for dep evaluation in the propagation engine.
MAX_EVAL_DEPTH = 50

#: env accessor functions whose first literal argument is a knob read.
_ENV_ACCESSORS = frozenset(
    {
        "repro.utils.env.get_bool",
        "repro.utils.env.get_int",
        "repro.utils.env.get_float",
        "repro.utils.env.get_str",
        "repro.utils.env.get_raw",
    }
)

#: Receiver method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)

#: Constructor calls producing mutable module-level globals.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"})


@dataclass
class CallFact:
    """One call site inside a function, with per-argument dep sets."""

    candidates: Tuple[str, ...]  # resolved callee qualname candidates
    line: int
    offset: int  # 1 for self/cls method calls (arg i -> param i+offset)
    args: Tuple[DepSet, ...]
    kwargs: Dict[str, DepSet]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "candidates": list(self.candidates),
            "line": self.line,
            "offset": self.offset,
            "args": [sorted(map(list, deps)) for deps in self.args],
            "kwargs": {k: sorted(map(list, v)) for k, v in sorted(self.kwargs.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CallFact":
        return cls(
            candidates=tuple(payload["candidates"]),
            line=payload["line"],
            offset=payload["offset"],
            args=tuple(_depset_from_json(deps) for deps in payload["args"]),
            kwargs={k: _depset_from_json(v) for k, v in payload["kwargs"].items()},
        )


@dataclass
class SinkFact:
    """A call feeding a serialization/persistence sink."""

    sink: str  # display name, e.g. "repro.lcl.codec.encode_problem"
    line: int
    deps: DepSet

    def as_dict(self) -> Dict[str, Any]:
        return {"sink": self.sink, "line": self.line, "deps": sorted(map(list, self.deps))}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SinkFact":
        return cls(payload["sink"], payload["line"], _depset_from_json(payload["deps"]))


@dataclass
class FunctionRecord:
    """Everything the whole-program engine needs about one function."""

    key: str  # qualname: module[.Class][.outer].name
    module: str
    rel_path: str
    line: int
    name: str
    params: Tuple[str, ...]
    nested: bool = False
    decorators: Tuple[str, ...] = ()
    return_deps: DepSet = _EMPTY
    calls: List[CallFact] = field(default_factory=list)
    sinks: List[SinkFact] = field(default_factory=list)
    env_reads: List[Tuple[str, int]] = field(default_factory=list)
    global_mutations: List[Tuple[str, int]] = field(default_factory=list)
    global_reads: List[Tuple[str, int]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "module": self.module,
            "rel_path": self.rel_path,
            "line": self.line,
            "name": self.name,
            "params": list(self.params),
            "nested": self.nested,
            "decorators": list(self.decorators),
            "return_deps": sorted(map(list, self.return_deps)),
            "calls": [c.as_dict() for c in self.calls],
            "sinks": [s.as_dict() for s in self.sinks],
            "env_reads": [list(item) for item in self.env_reads],
            "global_mutations": [list(item) for item in self.global_mutations],
            "global_reads": [list(item) for item in self.global_reads],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FunctionRecord":
        return cls(
            key=payload["key"],
            module=payload["module"],
            rel_path=payload["rel_path"],
            line=payload["line"],
            name=payload["name"],
            params=tuple(payload["params"]),
            nested=payload["nested"],
            decorators=tuple(payload["decorators"]),
            return_deps=_depset_from_json(payload["return_deps"]),
            calls=[CallFact.from_dict(c) for c in payload["calls"]],
            sinks=[SinkFact.from_dict(s) for s in payload["sinks"]],
            env_reads=[tuple(item) for item in payload["env_reads"]],
            global_mutations=[tuple(item) for item in payload["global_mutations"]],
            global_reads=[tuple(item) for item in payload["global_reads"]],
        )


@dataclass
class FileFacts:
    """The per-file bundle: function records + module-scope facts."""

    module: str
    rel_path: str
    is_scaffolding: bool
    functions: Dict[str, FunctionRecord] = field(default_factory=dict)
    import_edges: List[Tuple[str, int]] = field(default_factory=list)
    mutable_globals: FrozenSet[str] = frozenset()
    unpicklable_globals: FrozenSet[str] = frozenset()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "is_scaffolding": self.is_scaffolding,
            "functions": {k: rec.as_dict() for k, rec in sorted(self.functions.items())},
            "import_edges": [list(edge) for edge in self.import_edges],
            "mutable_globals": sorted(self.mutable_globals),
            "unpicklable_globals": sorted(self.unpicklable_globals),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FileFacts":
        return cls(
            module=payload["module"],
            rel_path=payload["rel_path"],
            is_scaffolding=payload["is_scaffolding"],
            functions={
                k: FunctionRecord.from_dict(rec)
                for k, rec in payload["functions"].items()
            },
            import_edges=[(edge[0], edge[1]) for edge in payload["import_edges"]],
            mutable_globals=frozenset(payload["mutable_globals"]),
            unpicklable_globals=frozenset(payload["unpicklable_globals"]),
        )


def _depset_from_json(items: Sequence[Sequence[Any]]) -> DepSet:
    return frozenset(tuple(item) for item in items)


# --------------------------------------------------------------------------
# Extraction.
# --------------------------------------------------------------------------


def build_file_facts(ctx: FileContext) -> FileFacts:
    """Extract the local dataflow facts for one parsed file."""
    from repro.analysis.imports import extract_import_edges

    module_functions: Dict[str, str] = {}  # simple name -> key (module level)
    records: Dict[str, FunctionRecord] = {}

    mutable_globals, unpicklable_globals = _module_globals(ctx.tree, ctx)

    # First pass: discover every function (so bare-name calls resolve to
    # same-module functions even when defined later in the file).
    defs: List[Tuple[ast.AST, str, Optional[str], bool]] = []

    def collect(body: Sequence[ast.stmt], prefix: str, class_name: Optional[str], nested: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{prefix}.{node.name}"
                defs.append((node, key, class_name, nested))
                if prefix == ctx.module and class_name is None:
                    module_functions[node.name] = key
                collect(node.body, key, None, True)
            elif isinstance(node, ast.ClassDef):
                collect(node.body, f"{prefix}.{node.name}", node.name, nested)

    collect(ctx.tree.body, ctx.module, None, False)

    for node, key, class_name, nested in defs:
        analyzer = _FunctionAnalyzer(
            ctx, node, key, class_name, module_functions, mutable_globals, unpicklable_globals
        )
        records[key] = analyzer.run(nested)

    return FileFacts(
        module=ctx.module,
        rel_path=ctx.rel_path,
        is_scaffolding=ctx.is_scaffolding,
        functions=records,
        import_edges=[(edge.imported, edge.line) for edge in extract_import_edges(ctx)],
        mutable_globals=mutable_globals,
        unpicklable_globals=unpicklable_globals,
    )


def _module_globals(tree: ast.Module, ctx: FileContext) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Names bound at module scope to mutable containers / unpicklable
    objects (fork-safety raw material)."""
    mutable: Set[str] = set()
    unpicklable: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            mutable.update(names)
        elif isinstance(value, ast.Call):
            qualname = ctx.resolve_qualname(value.func) or ""
            simple = qualname.rsplit(".", 1)[-1]
            if simple in _MUTABLE_CONSTRUCTORS:
                mutable.update(names)
            elif qualname in contracts.UNPICKLABLE_GLOBAL_CALLS:
                unpicklable.update(names)
    return frozenset(mutable), frozenset(unpicklable)


def _dotted_parts(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """The dotted name parts of an attribute chain, or None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))


class _FunctionAnalyzer:
    """One forward pass over a function body, building its record."""

    def __init__(
        self,
        ctx: FileContext,
        node: ast.AST,
        key: str,
        class_name: Optional[str],
        module_functions: Dict[str, str],
        mutable_globals: FrozenSet[str],
        unpicklable_globals: FrozenSet[str],
    ):
        self.ctx = ctx
        self.node = node
        self.key = key
        self.class_name = class_name
        self.module_functions = module_functions
        self.mutable_globals = mutable_globals
        self.unpicklable_globals = unpicklable_globals
        args = node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        self.params: Tuple[str, ...] = tuple(
            names
            + [a.arg for a in args.kwonlyargs]
            + ([args.vararg.arg] if args.vararg else [])
            + ([args.kwarg.arg] if args.kwarg else [])
        )
        self.env: Dict[str, DepSet] = {}
        self.return_deps: Set[Dep] = set()
        self.calls: List[CallFact] = []
        self.sinks: List[SinkFact] = []
        self.env_reads: List[Tuple[str, int]] = []
        self.global_mutations: List[Tuple[str, int]] = []
        self.global_reads: List[Tuple[str, int]] = []
        self._seen_global_reads: Set[str] = set()

    # -- entry --------------------------------------------------------------
    def run(self, nested: bool) -> FunctionRecord:
        self._block(self.node.body)
        decorators = []
        for dec in self.node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            parts = _dotted_parts(target)
            if parts:
                decorators.append(parts[-1])
        return FunctionRecord(
            key=self.key,
            module=self.ctx.module,
            rel_path=self.ctx.rel_path,
            line=self.node.lineno,
            name=self.node.name,
            params=self.params,
            nested=nested,
            decorators=tuple(decorators),
            return_deps=frozenset(self.return_deps),
            calls=self.calls,
            sinks=self.sinks,
            env_reads=self.env_reads,
            global_mutations=self.global_mutations,
            global_reads=self.global_reads,
        )

    # -- statements ---------------------------------------------------------
    def _block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are analyzed as their own records
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_deps |= self._deps(stmt.value)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            deps = self._deps(value) if value is not None else _EMPTY
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                self._assign(target, deps, augmented=isinstance(stmt, ast.AugAssign))
            return
        if isinstance(stmt, ast.For):
            iter_deps = self._deps(stmt.iter)
            target_deps = set(_mark_materialized(iter_deps))
            unordered = _first_unordered(iter_deps)
            if unordered is not None:
                target_deps.add(
                    (
                        "taint",
                        contracts.TAINT_ORDER,
                        stmt.iter.lineno,
                        "iterating an unordered value",
                    )
                )
            self._assign(stmt.target, frozenset(target_deps), augmented=False)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._deps(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._deps(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                deps = self._deps(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, deps, augmented=False)
            self._block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Expr):
            self._deps(stmt.value)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._deps(child)
            return
        # Everything else (pass, import, global, delete, ...) carries no flow.

    def _assign(self, target: ast.expr, deps: DepSet, augmented: bool) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.mutable_globals and (augmented or name not in self.env):
                # Rebinding / augmenting a module-level mutable global
                # from inside a function is a mutation for fork purposes.
                if augmented:
                    self.global_mutations.append((name, target.lineno))
            if augmented:
                self.env[name] = self.env.get(name, _EMPTY) | deps
            else:
                self.env[name] = deps
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, deps, augmented)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                if base.id in self.mutable_globals and base.id not in self.env:
                    self.global_mutations.append((base.id, target.lineno))
                elif base.id in self.env:
                    self.env[base.id] = self.env[base.id] | deps
            if isinstance(target, ast.Subscript):
                self._deps(target.slice)

    # -- expressions --------------------------------------------------------
    def _deps(self, node: ast.expr) -> DepSet:
        if isinstance(node, ast.Name):
            return self._name_deps(node)
        if isinstance(node, ast.Call):
            return self._call_deps(node)
        if isinstance(node, ast.Attribute):
            return self._deps(node.value)
        if isinstance(node, ast.Set):
            inner = self._union(node.elts)
            return inner | {("unordered", node.lineno, "a set literal")}
        if isinstance(node, ast.SetComp):
            inner = self._comprehension_deps(node, [node.elt])
            return _drop_order(inner) | {("unordered", node.lineno, "a set comprehension")}
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension_deps(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._comprehension_deps(node, [node.key, node.value])
        if isinstance(node, ast.Lambda):
            return _EMPTY
        if isinstance(node, ast.Constant):
            return _EMPTY
        # Generic fallback: union over child expressions (BinOp, BoolOp,
        # Compare, Subscript, JoinedStr, IfExp, Starred, Tuple, List, ...).
        deps: Set[Dep] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                deps |= self._deps(child)
        return frozenset(deps)

    def _union(self, nodes: Sequence[ast.expr]) -> DepSet:
        deps: Set[Dep] = set()
        for child in nodes:
            deps |= self._deps(child)
        return frozenset(deps)

    def _name_deps(self, node: ast.Name) -> DepSet:
        name = node.id
        if name in self.env:
            return self.env[name]
        if name in self.params:
            return frozenset({("param", name)})
        if name in self.mutable_globals or name in self.unpicklable_globals:
            if name not in self._seen_global_reads:
                self._seen_global_reads.add(name)
                self.global_reads.append((name, node.lineno))
            return _EMPTY
        candidates = self._reference_candidates(name)
        if candidates:
            return frozenset({("fref", candidates[0], node.lineno)})
        return _EMPTY

    def _reference_candidates(self, name: str) -> List[str]:
        """Project-function qualname candidates for a bare name."""
        candidates = []
        alias = self.ctx.aliases.get(name)
        if alias and alias != name:
            candidates.append(alias)
        if name in self.module_functions:
            candidates.append(self.module_functions[name])
        return candidates

    def _comprehension_deps(self, node: ast.expr, elements: Sequence[ast.expr]) -> DepSet:
        deps: Set[Dep] = set()
        for gen in node.generators:
            iter_deps = self._deps(gen.iter)
            target_deps = set(_mark_materialized(iter_deps))
            unordered = _first_unordered(iter_deps)
            if unordered is not None:
                taint = (
                    "taint",
                    contracts.TAINT_ORDER,
                    gen.iter.lineno,
                    "iterating an unordered value",
                )
                target_deps.add(taint)
                deps.add(taint)
            self._assign(gen.target, frozenset(target_deps), augmented=False)
            deps |= iter_deps
            for cond in gen.ifs:
                deps |= self._deps(cond)
        for element in elements:
            deps |= self._deps(element)
        return frozenset(deps)

    # -- calls --------------------------------------------------------------
    def _call_deps(self, node: ast.Call) -> DepSet:
        func = node.func
        line = node.lineno
        arg_deps = tuple(self._deps(a) for a in node.args)
        kwarg_deps = {kw.arg: self._deps(kw.value) for kw in node.keywords if kw.arg}
        all_args: Set[Dep] = set()
        for deps in arg_deps:
            all_args |= deps
        for deps in kwarg_deps.values():
            all_args |= deps

        # --- order-insensitive builtins launder order taint.
        if isinstance(func, ast.Name) and func.id in contracts.ORDER_INSENSITIVE_SINKS:
            laundered = _drop_order(frozenset(all_args))
            if func.id in ("set", "frozenset"):
                return laundered | {("unordered", line, f"a {func.id}()")}
            return laundered

        # --- materializing constructors surface order taint.
        if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
            unordered = _first_unordered(frozenset(all_args))
            result = set(_mark_materialized(frozenset(all_args)))
            if unordered is not None:
                result.discard(unordered)
                result.add(
                    ("taint", contracts.TAINT_ORDER, line, "materializing an unordered iterable")
                )
            return frozenset(result)

        qualname = self.ctx.resolve_qualname(func)

        # --- dict views.
        if isinstance(func, ast.Attribute) and func.attr in contracts.UNORDERED_VIEW_METHODS:
            receiver = self._deps(func.value)
            return receiver | {("unordered", line, f"a .{func.attr}() dict view")}

        # --- ''.join(...) materializes iteration order into a string.
        if isinstance(func, ast.Attribute) and func.attr == "join":
            unordered = _first_unordered(frozenset(all_args))
            result = set(_mark_materialized(frozenset(all_args))) | self._deps(func.value)
            if unordered is not None:
                result.discard(unordered)
                result.add(
                    ("taint", contracts.TAINT_ORDER, line, "joining an unordered iterable")
                )
            return frozenset(result)

        # --- nondeterminism sources.
        source = self._source_taint(node, qualname)
        if source is not None:
            return frozenset(all_args) | {source}

        # --- env accessor reads (REP011 raw material, not REP010 taint:
        # declared knobs are audited configuration, not ambient state).
        if qualname in _ENV_ACCESSORS or (
            isinstance(func, ast.Attribute)
            and func.attr in {"get_bool", "get_int", "get_float", "get_str", "get_raw"}
            and (self.ctx.resolve_qualname(func.value) or "").endswith("env")
        ):
            knob = ""
            if node.args and isinstance(node.args[0], ast.Constant):
                if isinstance(node.args[0].value, str):
                    knob = node.args[0].value
            if knob:
                self.env_reads.append((knob, line))
            return _EMPTY

        # --- receiver-mutation on module-level globals.
        receiver_parts = _dotted_parts(func) or ()
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and len(receiver_parts) >= 2
            and receiver_parts[0] in self.mutable_globals
            and receiver_parts[0] not in self.env
        ):
            self.global_mutations.append((receiver_parts[0], line))

        # --- resolution to project functions.
        candidates, offset = self._callee_candidates(func, qualname)
        if candidates:
            self.calls.append(
                CallFact(
                    candidates=tuple(candidates),
                    line=line,
                    offset=offset,
                    args=arg_deps,
                    kwargs=kwarg_deps,
                )
            )

        # --- sink classification.
        sink = self._sink_display(func, qualname, candidates, receiver_parts)
        if sink is not None and (arg_deps or kwarg_deps):
            self.sinks.append(SinkFact(sink=sink, line=line, deps=frozenset(all_args)))

        result: Set[Dep] = set(all_args)
        if isinstance(func, ast.Attribute):
            result |= self._deps(func.value)
        if candidates:
            result.add(("call", candidates[0], line))
        return frozenset(result)

    def _source_taint(self, node: ast.Call, qualname: Optional[str]) -> Optional[Dep]:
        line = node.lineno
        if qualname is None:
            return None
        parts = qualname.split(".")
        if parts[0] == "random" and len(parts) == 2:
            attr = parts[1]
            if attr == "Random" and not node.args and not node.keywords:
                return ("taint", contracts.TAINT_RNG, line, "random.Random() without a seed")
            if attr == "SystemRandom":
                return ("taint", contracts.TAINT_RNG, line, "random.SystemRandom()")
            if attr in contracts.GLOBAL_RANDOM_FUNCTIONS:
                return ("taint", contracts.TAINT_RNG, line, f"random.{attr}()")
        if parts[:2] == ["numpy", "random"] and len(parts) >= 3:
            if not (parts[2] == "default_rng" and (node.args or node.keywords)):
                return ("taint", contracts.TAINT_RNG, line, f"{qualname}()")
        if qualname in contracts.WALL_CLOCK_CALLS:
            return ("taint", contracts.TAINT_CLOCK, line, f"{qualname}()")
        if qualname in contracts.ENVIRON_CALLS:
            return ("taint", contracts.TAINT_ENV, line, f"{qualname}()")
        return None

    def _callee_candidates(
        self, func: ast.expr, qualname: Optional[str]
    ) -> Tuple[List[str], int]:
        if isinstance(func, ast.Name):
            return self._reference_candidates(func.id), 0
        if isinstance(func, ast.Attribute):
            parts = _dotted_parts(func)
            if parts is None:
                return [], 0
            if parts[0] in ("self", "cls") and len(parts) == 2 and self.class_name:
                return [f"{self.ctx.module}.{self.class_name}.{parts[1]}"], 1
            if qualname is not None and "." in qualname:
                return [qualname], 0
        return [], 0

    def _sink_display(
        self,
        func: ast.expr,
        qualname: Optional[str],
        candidates: Sequence[str],
        receiver_parts: Sequence[str],
    ) -> Optional[str]:
        for candidate in list(candidates) + ([qualname] if qualname else []):
            if contracts.is_sink_function(candidate):
                return candidate
        if isinstance(func, ast.Attribute) and len(receiver_parts) >= 2:
            return contracts.sink_method_receiver(receiver_parts[:-1], func.attr)
        return None


def _first_unordered(deps: DepSet) -> Optional[Dep]:
    for dep in sorted(deps, key=repr):
        if dep[0] == "unordered":
            return dep
    return None


def _drop_order(deps: DepSet) -> DepSet:
    """Launder order nondeterminism: strip direct order facts and mark
    call deps laundered (``lcall``) so the propagation engine also
    discards the *callee's* order taint — ``sorted(f(x))`` is clean even
    when ``f`` returns a set."""
    kept: Set[Dep] = set()
    for dep in deps:
        if dep[0] == "unordered":
            continue
        if dep[0] == "taint" and dep[1] == contracts.TAINT_ORDER:
            continue
        if dep[0] == "call":
            kept.add(("lcall",) + dep[1:])
        else:
            kept.add(dep)
    return frozenset(kept)


def _mark_materialized(deps: DepSet) -> DepSet:
    """Mark call deps materialized (``mcall``): if the callee turns out
    to return an unordered container, iterating/listing/joining it here
    becomes order taint at *this* line (resolved by the engine, since the
    callee's summary is unknown during local extraction)."""
    return frozenset(
        (("mcall",) + dep[1:]) if dep[0] == "call" else dep for dep in deps
    )
