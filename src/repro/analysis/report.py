"""Text, JSON, and SARIF reporters for lint results.

None of the reporters include cache statistics or timings: a warm-cache
run and a cold run over the same tree must render **byte-identical**
reports (CI asserts this), so everything emitted here is a pure function
of the findings.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.core import LintResult, all_rules

#: SARIF spec pin; GitHub code scanning consumes 2.1.0.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/lcl-landscape/lcl-landscape"


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_rule()
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_scanned} file(s)"
        f" [{result.suppressed} suppressed, {result.baselined} baselined]"
    )
    if counts:
        summary += "  " + " ".join(f"{code}:{n}" for code, n in counts.items())
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    body = {
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "total": len(result.findings),
            "files_scanned": result.files_scanned,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "by_rule": result.counts_by_rule(),
        },
    }
    return json.dumps(body, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 for GitHub code-scanning annotations.

    Rule metadata comes from the registry (every registered rule is
    listed, found or not, so the code-scanning UI can show rule help for
    newly clean rules too); each result carries the finding fingerprint
    as a ``partialFingerprints`` entry so GitHub tracks findings across
    pushes the same way the baseline does.
    """
    rules_meta: List[Dict[str, Any]] = []
    rule_index: Dict[str, int] = {}
    for position, cls in enumerate(all_rules()):
        rule_index[cls.code] = position
        rules_meta.append(
            {
                "id": cls.code,
                "name": cls.name,
                "shortDescription": {"text": cls.name},
                "fullDescription": {"text": cls.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, Any]] = []
    for finding in result.findings:
        entry: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproLintFingerprint/v2": finding.fingerprint},
        }
        if finding.rule in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule]
        results.append(entry)
    body = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": rules_meta,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(body, indent=2, sort_keys=True)


def render_rule_list() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"       {cls.rationale}")
    return "\n".join(lines)


def render_unused_suppressions(result: LintResult) -> str:
    lines = [item.render() for item in result.unused_suppressions]
    lines.append(f"{len(result.unused_suppressions)} unused suppression(s)")
    return "\n".join(lines)
