"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from repro.analysis.core import LintResult, all_rules


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_rule()
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_scanned} file(s)"
        f" [{result.suppressed} suppressed, {result.baselined} baselined]"
    )
    if counts:
        summary += "  " + " ".join(f"{code}:{n}" for code, n in counts.items())
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    body = {
        "findings": [finding.as_dict() for finding in result.findings],
        "summary": {
            "total": len(result.findings),
            "files_scanned": result.files_scanned,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "by_rule": result.counts_by_rule(),
        },
    }
    return json.dumps(body, indent=2, sort_keys=True)


def render_rule_list() -> str:
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"       {cls.rationale}")
    return "\n".join(lines)
