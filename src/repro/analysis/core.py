"""Lint engine core: findings, the rule registry, the whole-program driver.

Design
------
Every rule is a class decorated with :func:`register`, declaring

* ``code`` / ``name`` / ``rationale`` — identity and the determinism or
  purity guarantee the rule protects (surfaced by ``--list-rules`` and
  ``docs/STATIC_ANALYSIS.md``);
* ``node_types`` — the AST node classes it wants to see.  The driver
  parses each file **once**, annotates parent links, and walks the tree
  **once**, dispatching each node to every interested rule — adding a
  rule never adds a traversal;
* optional per-file hooks (``start_file`` / ``end_file``) and a
  project-wide ``finalize`` hook for whole-program rules: the import
  graph (REP003), the interprocedural dataflow family (REP010–REP012)
  which consumes the per-function summaries the driver collects.

Incrementality: per-file work (parse, per-file rule findings, dataflow
facts, import candidates, suppressions) is cached keyed on the file's
content sha256 (:mod:`repro.analysis.cache`); whole-program judgments
are *never* cached — they are recomputed each run from the per-file
facts, which is what makes invalidation transitively sound by
construction: change one file and every cross-file conclusion downstream
of it is rebuilt.  Cold and warm runs produce byte-identical reports.

Findings carry a *fingerprint* — a hash of ``(rule, path, stripped
source line, occurrence)`` where ``occurrence`` disambiguates repeated
identical lines in one file (without it, grandfathering one violation
silently grandfathered its twin) — which is what the baseline
(:mod:`repro.analysis.baseline`) matches on.  Suppression comments
(``# repro-lint: disable=REP001``) are honored on the finding's line or
the line directly above it; every directive's usage is tracked so stale
suppressions can be reported.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.analysis.suppressions import Suppressions

if TYPE_CHECKING:
    from repro.analysis.dataflow import WholeProgram
    from repro.analysis.summaries import FileFacts

#: Pseudo-rule code attached to files that fail to parse.
PARSE_ERROR_CODE = "REP000"

#: Modules whose first segment marks test/bench/example scaffolding —
#: library-contract rules (REP001, REP009) do not apply there.
_SCAFFOLD_SEGMENTS = frozenset({"tests", "benchmarks", "examples"})
_SCAFFOLD_PREFIXES = ("test_", "bench_", "conftest")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""
    #: Index among findings sharing (rule, path, stripped line) — keeps
    #: fingerprints of twin violations on identical lines distinct.
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        body = f"{self.rule}\x00{self.path}\x00{self.source_line.strip()}"
        if self.occurrence:
            # Occurrence 0 omits the suffix so fingerprints written by
            # format-1 baselines keep matching the first occurrence.
            body += f"\x00{self.occurrence}"
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        return f"{self.rule}:{digest[:16]}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def cache_dict(self) -> Dict[str, Any]:
        """Lossless serialization for the incremental cache (unlike
        :meth:`as_dict`, keeps the raw source line; occurrence is
        reassigned globally on every run and deliberately excluded)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
        }

    @classmethod
    def from_cache_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
            source_line=payload["source_line"],
        )


class ModuleView:
    """The context-free face of one linted file: what whole-program
    rules may rely on whether the file was parsed this run or replayed
    from the incremental cache."""

    def __init__(self, rel_path: str, module: str, source: str):
        self.rel_path = rel_path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.segments: Tuple[str, ...] = tuple(module.split("."))
        self.suppressions = Suppressions.scan(source)

    @property
    def is_scaffolding(self) -> bool:
        """Test / benchmark / example code (vs. library code)."""
        stem = self.rel_path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        first_dir = self.rel_path.split("/", 1)[0]
        return (
            self.segments[0] in _SCAFFOLD_SEGMENTS
            or first_dir in _SCAFFOLD_SEGMENTS
            or any(stem.startswith(prefix) for prefix in _SCAFFOLD_PREFIXES)
        )

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class FileContext(ModuleView):
    """Everything the rules may need about one *parsed* file."""

    def __init__(self, path: Path, rel_path: str, source: str, tree: ast.Module):
        super().__init__(rel_path, _module_name(path), source)
        self.path = path
        self.tree = tree
        #: local name -> fully qualified imported module/object name.
        self.aliases = _collect_aliases(tree)
        self._nested_functions: Optional[frozenset] = None

    # -- classification -----------------------------------------------------
    @property
    def is_scaffolding(self) -> bool:
        stem = self.path.stem
        first_dir = self.rel_path.split("/", 1)[0]
        return (
            self.segments[0] in _SCAFFOLD_SEGMENTS
            or first_dir in _SCAFFOLD_SEGMENTS
            or any(stem.startswith(prefix) for prefix in _SCAFFOLD_PREFIXES)
        )

    @property
    def nested_function_names(self) -> frozenset:
        """Names of functions defined inside other functions (computed on
        first use; needed by the multiprocessing-safety rule)."""
        if self._nested_functions is None:
            names = set()
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for child in ast.walk(node):
                        if child is node:
                            continue
                        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            names.add(child.name)
            self._nested_functions = frozenset(names)
        return self._nested_functions

    # -- helpers ------------------------------------------------------------
    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=line,
            col=col + 1,
            message=message,
            source_line=self.source_line(line),
        )

    def resolve_qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute/name chain with import aliases
        resolved, e.g. ``np.random.rand`` -> ``numpy.random.rand``;
        ``None`` for non-name expressions (calls, subscripts, ...)."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Project:
    """The full set of linted files — parsed contexts and cache-replayed
    views side by side — plus the per-file dataflow facts the
    whole-program (finalize) rules consume."""

    def __init__(
        self,
        views: Sequence[ModuleView],
        facts: Optional[Dict[str, "FileFacts"]] = None,
    ):
        self.views = list(views)
        self.files = [view for view in self.views if isinstance(view, FileContext)]
        self.by_module: Dict[str, ModuleView] = {view.module: view for view in self.views}
        #: module -> FileFacts (cached or freshly extracted).
        self.facts: Dict[str, "FileFacts"] = facts or {}
        self._whole_program: Optional["WholeProgram"] = None

    def __iter__(self) -> Iterator[ModuleView]:
        return iter(self.views)

    @property
    def whole_program(self) -> "WholeProgram":
        """The interprocedural engine (call graph + propagated
        summaries), built lazily once per run and shared by every
        summary-consuming rule."""
        if self._whole_program is None:
            from repro.analysis.dataflow import WholeProgram

            self._whole_program = WholeProgram(self.facts)
        return self._whole_program


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: AST node classes routed to :meth:`visit` by the single-pass driver.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def start_file(self, ctx: FileContext) -> None:
        """Reset any per-file state."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def end_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


#: code -> rule class.  Instantiated fresh for every run so per-file /
#: per-project rule state can never leak between runs.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (plugin style)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} declares no code")
    existing = RULE_REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    _load_builtin_rules()
    return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.analysis import rules as _rules  # noqa: F401


# ------------------------------------------------------------------- helpers
def _module_name(path: Path) -> str:
    """Dotted module path, found by walking up through package dirs
    (directories containing ``__init__.py``); a file outside any package
    is just its stem."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        next_parent = parent.parent
        if next_parent == parent:
            break
        parent = next_parent
    return ".".join(reversed(parts)) or path.stem


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def annotate_parents(tree: ast.Module) -> None:
    """Attach ``.parent`` to every node (root's parent is ``None``)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def parent_chain(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


# -------------------------------------------------------------------- driver
@dataclass
class UnusedSuppression:
    """A suppression directive that silenced nothing this run."""

    path: str
    line: int  # 0 for whole-file directives
    code: str

    def as_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line, "code": self.code}

    def render(self) -> str:
        where = "disable-file" if self.line == 0 else f"line {self.line}"
        return f"{self.path}:{max(self.line, 1)}: unused suppression of {self.code} ({where})"


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    unused_suppressions: List[UnusedSuppression] = field(default_factory=list)
    #: Incremental-cache accounting (never part of rendered reports, so
    #: cold and warm runs stay byte-identical).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Index findings sharing (rule, path, stripped line) so identical
    twin violations get distinct fingerprints.  Input must be sorted."""
    counters: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.source_line.strip())
        seen = counters.get(key, 0)
        counters[key] = seen + 1
        out.append(replace(finding, occurrence=seen) if seen else finding)
    return out


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    disable: Sequence[str] = (),
    baseline: Optional[Dict[str, int]] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return the findings.

    ``select`` restricts to the given rule codes; ``disable`` removes
    codes; ``baseline`` (fingerprint -> count) grandfathers old findings.
    ``root`` anchors the relative paths used in reports, fingerprints,
    and suppression bookkeeping (default: the current directory).
    ``use_cache`` / ``cache_dir`` control the incremental per-file cache
    (default: the ``REPRO_LINT_CACHE`` / ``REPRO_LINT_CACHE_DIR`` knobs);
    cached and uncached runs produce identical results.
    """
    from repro.analysis.cache import LintCache
    from repro.analysis.summaries import FileFacts, build_file_facts

    root = (root or Path.cwd()).resolve()
    rule_classes = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rule_classes = [cls for cls in rule_classes if cls.code in wanted]
    rule_classes = [cls for cls in rule_classes if cls.code not in set(disable)]
    rules = [cls() for cls in rule_classes]
    active_codes = tuple(cls.code for cls in rule_classes)

    cache = LintCache.open(active_codes, enabled=use_cache, directory=cache_dir, root=root)

    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    result = LintResult()
    raw_findings: List[Finding] = []
    views: List[ModuleView] = []
    facts: Dict[str, FileFacts] = {}
    for file_path in iter_python_files([Path(p) for p in paths]):
        resolved = file_path.resolve()
        try:
            rel = str(resolved.relative_to(root).as_posix())
        except ValueError:
            rel = str(resolved.as_posix())
        try:
            raw_bytes = file_path.read_bytes()
        except OSError as error:
            raw_findings.append(
                Finding(
                    rule=PARSE_ERROR_CODE,
                    path=rel,
                    line=1,
                    col=1,
                    message=f"file cannot be parsed: {error}",
                )
            )
            result.files_scanned += 1
            continue
        result.files_scanned += 1

        cached = cache.lookup(rel, raw_bytes) if cache is not None else None
        if cached is not None:
            result.cache_hits += 1
            raw_findings.extend(cached.findings)
            view = ModuleView(rel, cached.facts.module, cached.source)
            views.append(view)
            facts[cached.facts.module] = cached.facts
            continue
        if cache is not None:
            result.cache_misses += 1

        try:
            source = raw_bytes.decode("utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (SyntaxError, ValueError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            finding = Finding(
                rule=PARSE_ERROR_CODE,
                path=rel,
                line=line,
                col=1,
                message=f"file cannot be parsed: {error}",
            )
            raw_findings.append(finding)
            if cache is not None:
                cache.store(
                    rel,
                    raw_bytes,
                    [finding],
                    FileFacts(module=Path(rel).stem, rel_path=rel, is_scaffolding=False),
                    source="",
                )
            continue
        annotate_parents(tree)
        ctx = FileContext(resolved, rel, source, tree)
        views.append(ctx)

        file_findings: List[Finding] = []
        active = [rule for rule in rules if rule.applies_to(ctx)]
        if active:
            for rule in active:
                rule.start_file(ctx)
            active_types = tuple(
                {t for rule in active for t in rule.node_types}
            )
            for node in ast.walk(tree):
                if not isinstance(node, active_types or (ast.Module,)):
                    continue
                for rule in dispatch.get(type(node), ()):  # exact-type dispatch
                    if rule in active:
                        file_findings.extend(rule.visit(node, ctx))
            for rule in active:
                file_findings.extend(rule.end_file(ctx))
        raw_findings.extend(file_findings)

        file_facts = build_file_facts(ctx)
        facts[ctx.module] = file_facts
        if cache is not None:
            cache.store(rel, raw_bytes, file_findings, file_facts, source=source)

    project = Project(views, facts)
    for rule in rules:
        raw_findings.extend(rule.finalize(project))

    # Suppression comments (with per-directive usage tracking), then the
    # occurrence indexes, then the baseline.
    suppression_index = {view.rel_path: view.suppressions for view in views}
    used_directives: Dict[str, set] = {}
    kept: List[Finding] = []
    for finding in raw_findings:
        suppressions = suppression_index.get(finding.path)
        if suppressions is not None:
            directive_line = suppressions.match(finding.rule, finding.line)
            if directive_line is not None:
                used_directives.setdefault(finding.path, set()).add(
                    (directive_line, finding.rule)
                )
                result.suppressed += 1
                continue
        kept.append(finding)

    active_code_set = set(active_codes)
    for view in sorted(views, key=lambda v: v.rel_path):
        used = used_directives.get(view.rel_path, set())
        for line, code in view.suppressions.directive_keys():
            if code in active_code_set and (line, code) not in used:
                result.unused_suppressions.append(
                    UnusedSuppression(path=view.rel_path, line=line, code=code)
                )

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    kept = _assign_occurrences(kept)
    if baseline:
        remaining = dict(baseline)
        unbaselined = []
        for finding in kept:
            if remaining.get(finding.fingerprint, 0) > 0:
                remaining[finding.fingerprint] -= 1
                result.baselined += 1
            else:
                unbaselined.append(finding)
        kept = unbaselined
    result.findings = kept
    return result
