"""Single-pass AST lint engine: findings, the rule registry, the driver.

Design
------
Every rule is a class decorated with :func:`register`, declaring

* ``code`` / ``name`` / ``rationale`` — identity and the determinism or
  purity guarantee the rule protects (surfaced by ``--list-rules`` and
  ``docs/STATIC_ANALYSIS.md``);
* ``node_types`` — the AST node classes it wants to see.  The driver
  parses each file **once**, annotates parent links, and walks the tree
  **once**, dispatching each node to every interested rule — adding a
  rule never adds a traversal;
* optional per-file hooks (``start_file`` / ``end_file``) and a
  project-wide ``finalize`` hook for whole-program rules such as the
  import-graph purity check (REP003).

Findings carry a *fingerprint* — a hash of ``(rule, path, stripped
source line)`` that survives unrelated edits moving the line — which is
what the grandfathering baseline (:mod:`repro.analysis.baseline`)
matches on.  Suppression comments (``# repro-lint: disable=REP001``) are
honored on the finding's line or on a comment line directly above it;
``# repro-lint: disable-file=REP001`` silences a rule for a whole file.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.suppressions import Suppressions

#: Pseudo-rule code attached to files that fail to parse.
PARSE_ERROR_CODE = "REP000"

#: Modules whose first segment marks test/bench/example scaffolding —
#: library-contract rules (REP001, REP009) do not apply there.
_SCAFFOLD_SEGMENTS = frozenset({"tests", "benchmarks", "examples"})
_SCAFFOLD_PREFIXES = ("test_", "bench_", "conftest")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            f"{self.rule}\x00{self.path}\x00{self.source_line.strip()}".encode("utf-8")
        ).hexdigest()
        return f"{self.rule}:{digest[:16]}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class FileContext:
    """Everything the rules may need about one parsed file."""

    def __init__(self, path: Path, rel_path: str, source: str, tree: ast.Module):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module = _module_name(path)
        self.segments: Tuple[str, ...] = tuple(self.module.split("."))
        self.suppressions = Suppressions.scan(source)
        #: local name -> fully qualified imported module/object name.
        self.aliases = _collect_aliases(tree)
        self._nested_functions: Optional[frozenset] = None

    # -- classification -----------------------------------------------------
    @property
    def is_scaffolding(self) -> bool:
        """Test / benchmark / example code (vs. library code)."""
        stem = self.path.stem
        first_dir = self.rel_path.split("/", 1)[0]
        return (
            self.segments[0] in _SCAFFOLD_SEGMENTS
            or first_dir in _SCAFFOLD_SEGMENTS
            or any(stem.startswith(prefix) for prefix in _SCAFFOLD_PREFIXES)
        )

    @property
    def nested_function_names(self) -> frozenset:
        """Names of functions defined inside other functions (computed on
        first use; needed by the multiprocessing-safety rule)."""
        if self._nested_functions is None:
            names = set()
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for child in ast.walk(node):
                        if child is node:
                            continue
                        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            names.add(child.name)
            self._nested_functions = frozenset(names)
        return self._nested_functions

    # -- helpers ------------------------------------------------------------
    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=line,
            col=col + 1,
            message=message,
            source_line=self.source_line(line),
        )

    def resolve_qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute/name chain with import aliases
        resolved, e.g. ``np.random.rand`` -> ``numpy.random.rand``;
        ``None`` for non-name expressions (calls, subscripts, ...)."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Project:
    """The full set of parsed files, for whole-program (finalize) rules."""

    def __init__(self, files: Sequence[FileContext]):
        self.files = list(files)
        self.by_module: Dict[str, FileContext] = {ctx.module: ctx for ctx in self.files}

    def __iter__(self) -> Iterator[FileContext]:
        return iter(self.files)


class Rule:
    """Base class for lint rules; subclasses register via :func:`register`."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: AST node classes routed to :meth:`visit` by the single-pass driver.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def start_file(self, ctx: FileContext) -> None:
        """Reset any per-file state."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def end_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


#: code -> rule class.  Instantiated fresh for every run so per-file /
#: per-project rule state can never leak between runs.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (plugin style)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} declares no code")
    existing = RULE_REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    _load_builtin_rules()
    return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.analysis import rules as _rules  # noqa: F401


# ------------------------------------------------------------------- helpers
def _module_name(path: Path) -> str:
    """Dotted module path, found by walking up through package dirs
    (directories containing ``__init__.py``); a file outside any package
    is just its stem."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        next_parent = parent.parent
        if next_parent == parent:
            break
        parent = next_parent
    return ".".join(reversed(parts)) or path.stem


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def annotate_parents(tree: ast.Module) -> None:
    """Attach ``.parent`` to every node (root's parent is ``None``)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def parent_chain(node: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, "parent", None)
    while current is not None:
        yield current
        current = getattr(current, "parent", None)


# -------------------------------------------------------------------- driver
@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def run_lint(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    disable: Sequence[str] = (),
    baseline: Optional[Dict[str, int]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return the findings.

    ``select`` restricts to the given rule codes; ``disable`` removes
    codes; ``baseline`` (fingerprint -> count) grandfathers old findings.
    ``root`` anchors the relative paths used in reports, fingerprints,
    and suppression bookkeeping (default: the current directory).
    """
    root = (root or Path.cwd()).resolve()
    rule_classes = all_rules()
    if select:
        wanted = set(select)
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rule_classes = [cls for cls in rule_classes if cls.code in wanted]
    rule_classes = [cls for cls in rule_classes if cls.code not in set(disable)]
    rules = [cls() for cls in rule_classes]

    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    result = LintResult()
    raw_findings: List[Finding] = []
    contexts: List[FileContext] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        resolved = file_path.resolve()
        try:
            rel = str(resolved.relative_to(root).as_posix())
        except ValueError:
            rel = str(resolved.as_posix())
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError, ValueError) as error:
            line = getattr(error, "lineno", 1) or 1
            raw_findings.append(
                Finding(
                    rule=PARSE_ERROR_CODE,
                    path=rel,
                    line=line,
                    col=1,
                    message=f"file cannot be parsed: {error}",
                )
            )
            result.files_scanned += 1
            continue
        annotate_parents(tree)
        ctx = FileContext(resolved, rel, source, tree)
        contexts.append(ctx)
        result.files_scanned += 1

        active = [rule for rule in rules if rule.applies_to(ctx)]
        if active:
            for rule in active:
                rule.start_file(ctx)
            active_types = tuple(
                {t for rule in active for t in rule.node_types}
            )
            for node in ast.walk(tree):
                if not isinstance(node, active_types or (ast.Module,)):
                    continue
                for rule in dispatch.get(type(node), ()):  # exact-type dispatch
                    if rule in active:
                        raw_findings.extend(rule.visit(node, ctx))
            for rule in active:
                raw_findings.extend(rule.end_file(ctx))

    project = Project(contexts)
    for rule in rules:
        raw_findings.extend(rule.finalize(project))

    # Suppression comments, then the baseline.
    suppression_index = {ctx.rel_path: ctx.suppressions for ctx in contexts}
    kept: List[Finding] = []
    for finding in raw_findings:
        suppressions = suppression_index.get(finding.path)
        if suppressions is not None and suppressions.is_suppressed(
            finding.rule, finding.line
        ):
            result.suppressed += 1
            continue
        kept.append(finding)
    if baseline:
        remaining = dict(baseline)
        unbaselined = []
        for finding in kept:
            if remaining.get(finding.fingerprint, 0) > 0:
                remaining[finding.fingerprint] -= 1
                result.baselined += 1
            else:
                unbaselined.append(finding)
        kept = unbaselined
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.findings = kept
    return result
