"""Grandfathering baseline: adopt the linter without fixing the world first.

A baseline file is a JSON map from finding *fingerprints* (rule + path +
stripped source line + occurrence index, see
:class:`repro.analysis.core.Finding`) to occurrence counts.
``repro-lint --write-baseline FILE`` records the current findings; later
runs with ``--baseline FILE`` report only *new* findings, so the tree
ratchets toward clean instead of failing wholesale.

Format history:

* **v1** hashed ``(rule, path, stripped line)`` only — two identical
  violations on byte-identical lines in one file collapsed into one
  fingerprint, so baselining the first silently grandfathered its twin.
* **v2** (current) appends the per-(rule, path, line-text) occurrence
  index to the hash *for the second occurrence onward*.  First
  occurrences keep their v1 fingerprint, so v1 files load unchanged and
  still match everything they matched before; only the previously
  invisible twins now surface as new findings — which is the fix.

This repository's own CI runs with an **empty** baseline — the tree is
lint-clean and stays that way — but downstream forks adopting the rules
mid-flight need the ratchet.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable

from repro.analysis.core import Finding

FORMAT_VERSION = 2

#: Older formats that load without migration (v1 fingerprints are a
#: subset of v2: occurrence 0 hashes identically).
_ACCEPTED_VERSIONS = (1, FORMAT_VERSION)


def write_baseline(findings: Iterable[Finding], path: Path) -> Dict[str, int]:
    """Persist the findings' fingerprints (sorted, stable) and return them."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    body = {
        "version": FORMAT_VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(body, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return counts


def load_baseline(path: Path) -> Dict[str, int]:
    """Load fingerprint counts; raises ``ValueError`` on malformed files
    (a silently ignored baseline would un-grandfather everything)."""
    try:
        body = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(body, dict) or body.get("version") not in _ACCEPTED_VERSIONS:
        raise ValueError(f"baseline {path} has an unsupported format")
    findings = body.get("findings")
    if not isinstance(findings, dict):
        raise ValueError(f"baseline {path} carries no findings map")
    counts: Dict[str, int] = {}
    for key, value in findings.items():
        if not isinstance(key, str) or not isinstance(value, int) or value < 0:
            raise ValueError(f"baseline {path} has a malformed entry: {key!r}")
        counts[key] = value
    return counts
