"""Built-in lint rules.  Importing this package registers every rule
with :data:`repro.analysis.core.RULE_REGISTRY` (the decorator pattern —
a new rule module only needs to be imported here to ship)."""

from repro.analysis.rules import (  # noqa: F401
    enginefree_calls,
    envknobs,
    forksafety,
    hygiene,
    interproc,
    multiprocessing_safety,
    ordering,
    purity,
    randomness,
    wallclock,
)
