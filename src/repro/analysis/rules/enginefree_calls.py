"""REP012 — summary-based engine freedom for the certificate checker.

REP003 proves ``import repro.verify`` cannot *load* the engine: it walks
module-level import statements only, because function-level imports are
the sanctioned lazy-loading idiom.  But that sanctioning leaves a gap
REP003 cannot close by construction: a checker function that does

.. code-block:: python

    def check_certificate(cert):
        from repro.roundelim.ops import apply_round  # lazily, so REP003 is blind
        return apply_round(...) == cert.claimed

keeps the import graph clean while still *executing* the engine during
verification — precisely what certificate independence forbids.  The
dynamic fresh-interpreter test only catches this if the offending branch
happens to run.

This rule closes the gap with the call graph instead of the import
graph: function-level imports register as alias-resolved *call edges* in
the per-function summaries, so walking calls from every checker-module
function reaches the lazy case REP003 must ignore.  The producer half
(``certify``) remains the single sanctioned boundary — traversal stops
there, matching REP003's exemption.  Each checker function reports its
shallowest engine crossing, anchored at the first outgoing call edge of
the chain.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.core import Finding, Project, Rule, register


@register
class EngineFreeCallRule(Rule):
    code = "REP012"
    name = "engine call reachable from the certificate checker"
    rationale = (
        "A certificate is independent evidence only if *checking* it never "
        "executes the engine that produced it — including through lazy "
        "function-level imports that the module-level import rule (REP003) "
        "deliberately exempts."
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        if not project.facts:
            return
        engine = project.whole_program
        for reach in engine.engine_reach():
            view = next(
                (v for v in project.views if v.rel_path == reach.path), None
            )
            chain = " -> ".join(reach.chain)
            yield Finding(
                rule=self.code,
                path=reach.path,
                line=reach.line,
                col=1,
                message=(
                    f"checker function {reach.caller} reaches engine function "
                    f"{reach.target} through calls ({chain}); checking a "
                    "certificate must not execute the engine"
                ),
                source_line=view.source_line(reach.line) if view is not None else "",
            )
