"""REP005 — no wall-clock reads in replay/transcript/certificate paths.

A certificate's transcript must replay bit-identically on any machine in
any year.  ``time.time()`` or ``datetime.now()`` anywhere in the
:mod:`repro.verify` package means some recorded or checked byte can
depend on *when* the code ran — timestamps smuggled into envelopes,
time-based tie-breaking, "helpful" expiry logic.  Durations for
budgeting belong to ``time.monotonic`` / ``time.perf_counter`` in the
engine half, never here.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.contracts import WALL_CLOCK_CALLS
from repro.analysis.core import FileContext, Finding, Rule, register

#: Module segments marking replay-sensitive packages.
REPLAY_PACKAGES = frozenset({"verify"})

# The wall-clock source list is shared with the interprocedural taint
# rule (REP010) through repro.analysis.contracts.
_WALL_CLOCK_CALLS = WALL_CLOCK_CALLS


@register
class WallClockRule(Rule):
    code = "REP005"
    name = "wall-clock read in a replay-sensitive path"
    rationale = (
        "Certificate transcripts and checks must be pure functions of "
        "(problem, seed); a wall-clock read lets bytes depend on when the "
        "code ran, breaking bit-identical replay."
    )
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(REPLAY_PACKAGES & set(ctx.segments[:-1]))

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        qualname = ctx.resolve_qualname(node.func)
        if qualname in _WALL_CLOCK_CALLS:
            yield ctx.finding(
                self.code,
                node,
                f"{qualname}() in a replay-sensitive module makes output "
                "depend on when the code ran; derive values from the recorded "
                "seed instead",
            )
