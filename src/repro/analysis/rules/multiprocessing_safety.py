"""REP004 — pool-bound callables must be module-level and picklable.

The hardened worker pools in :mod:`repro.roundelim.ops` ship callables
to child processes by pickle.  A lambda or a function defined inside
another function pickles by *qualified name*, which fails at runtime —
but only on the parallel path, above ``REPRO_PARALLEL_THRESHOLD``, which
is exactly the path unit tests exercise least.  Worse, under the
``fork`` start method a closure can *appear* to work while silently
capturing parent state that diverges on retry.

Flags lambda arguments and nested-function-name arguments in calls to
pool submission APIs: ``<pool>.submit``, ``apply_async``, ``map_async``,
``imap`` / ``imap_unordered``, the ``initializer=`` keyword, and this
repo's own chunk runner ``_run_chunks``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.analysis.contracts import FORK_SUBMIT_KEYWORDS, FORK_SUBMIT_NAMES
from repro.analysis.core import FileContext, Finding, Rule, register

_SUBMIT_ATTRS = frozenset(
    {"submit", "apply_async", "map_async", "imap", "imap_unordered"}
)
#: name -> 0-based positional indexes that are shipped to workers (shared
#: with REP011's fork-root discovery via repro.analysis.contracts).  For
#: ``_run_chunks`` that is ``worker_fn`` and ``initializer`` — its
#: ``serial_fn`` (index 2) is the *in-process* rescue fallback and is
#: explicitly allowed to close over local state.
_SUBMIT_NAMES = FORK_SUBMIT_NAMES
_CALLABLE_KEYWORDS = frozenset({"func"}) | FORK_SUBMIT_KEYWORDS


def _callable_args(node: ast.Call) -> Iterator[Tuple[str, ast.expr]]:
    """The (description, expression) pairs of pool-bound callables in a
    submission call, or nothing when the call is not a submission."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _SUBMIT_ATTRS:
        indexes: Tuple[int, ...] = (0,)
    elif isinstance(func, ast.Name) and func.id in _SUBMIT_NAMES:
        indexes = _SUBMIT_NAMES[func.id]
    else:
        return
    for index in indexes:
        if index < len(node.args):
            yield f"argument {index + 1}", node.args[index]
    for keyword in node.keywords:
        if keyword.arg in _CALLABLE_KEYWORDS:
            yield f"keyword {keyword.arg!r}", keyword.value


@register
class PoolCallableRule(Rule):
    code = "REP004"
    name = "unpicklable callable handed to a worker pool"
    rationale = (
        "Pool workers receive callables by pickle; lambdas and nested "
        "functions fail (or silently capture divergent closure state under "
        "fork) only on the parallel path, where tests look least."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        for where, value in _callable_args(node):
            if isinstance(value, ast.Lambda):
                yield ctx.finding(
                    self.code,
                    value,
                    f"lambda passed as {where} of a pool submission cannot be "
                    "pickled into a worker; use a module-level function",
                )
            elif (
                isinstance(value, ast.Name)
                and value.id in ctx.nested_function_names
            ):
                yield ctx.finding(
                    self.code,
                    value,
                    f"nested function {value.id!r} passed as {where} of a pool "
                    "submission; closures do not pickle — hoist it to module "
                    "level",
                )
