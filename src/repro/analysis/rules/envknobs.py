"""REP006 — every ``REPRO_*`` environment knob is declared and routed.

Two obligations, both anchored on :mod:`repro.utils.env`:

1. **Declaration** — any string literal matching ``REPRO_[A-Z0-9_]+``
   anywhere in the tree must name a knob registered in
   ``repro.utils.env.REGISTRY`` (with type, default, and docstring).  A
   knob only one module knows about is invisible to reproducibility
   audits and to ``lcl-landscape lint --env``.
2. **Routing** — reading a ``REPRO_*`` variable through raw
   ``os.environ`` / ``os.getenv`` outside the registry module bypasses
   the typed accessors (and their malformed-value handling); call sites
   must use :func:`repro.utils.env.get_bool` & friends, or
   :func:`~repro.utils.env.get_raw` for bespoke parsing.

Writes (``monkeypatch.setenv``, subprocess ``env=`` dicts) are fine —
the contract governs *reads* and *names*.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, register

_KNOB_RE = re.compile(r"\AREPRO_[A-Z0-9_]+\Z")

#: Final module segments allowed to touch os.environ for REPRO_* knobs.
_REGISTRY_STEMS = frozenset({"env"})


def _registered_knobs() -> frozenset:
    from repro.utils import env

    return frozenset(env.REGISTRY)


def _environ_read_knob(node: ast.Call, ctx: FileContext) -> str:
    """The REPRO_* literal read via os.environ/os.getenv, or ``''``."""
    qualname = ctx.resolve_qualname(node.func)
    if qualname in ("os.getenv",):
        candidates = node.args[:1]
    elif qualname in ("os.environ.get", "os.environ.setdefault", "os.environ.pop"):
        candidates = node.args[:1]
    else:
        return ""
    for arg in candidates:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if _KNOB_RE.match(arg.value):
                return arg.value
    return ""


@register
class EnvKnobRule(Rule):
    code = "REP006"
    name = "undeclared or unrouted REPRO_* environment knob"
    rationale = (
        "repro.utils.env is the single source of truth for environment "
        "knobs; an undeclared knob or a raw os.environ read escapes the "
        "typed accessors and every reproducibility audit."
    )
    node_types = (ast.Call, ast.Subscript, ast.Constant)

    def start_file(self, ctx: FileContext) -> None:
        self._knobs = _registered_knobs()

    def _in_registry_module(self, ctx: FileContext) -> bool:
        return ctx.path.stem in _REGISTRY_STEMS

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.Constant):
            if (
                isinstance(node.value, str)
                and _KNOB_RE.match(node.value)
                and node.value not in self._knobs
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"environment knob {node.value!r} is not declared in "
                    "repro.utils.env; add a declare(...) entry with type, "
                    "default, and docstring",
                )
            return
        if self._in_registry_module(ctx):
            return
        if isinstance(node, ast.Subscript):
            qualname = ctx.resolve_qualname(node.value)
            if qualname == "os.environ" and isinstance(node.slice, ast.Constant):
                value = node.slice.value
                if isinstance(value, str) and _KNOB_RE.match(value):
                    yield ctx.finding(
                        self.code,
                        node,
                        f"raw os.environ[{value!r}] read; route through the "
                        "typed accessors in repro.utils.env",
                    )
            return
        assert isinstance(node, ast.Call)
        knob = _environ_read_knob(node, ctx)
        if knob:
            yield ctx.finding(
                self.code,
                node,
                f"raw os.environ read of {knob!r}; route through the typed "
                "accessors in repro.utils.env",
            )
