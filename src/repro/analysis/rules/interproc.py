"""REP010 — interprocedural determinism taint into serialization sinks.

The single-pass rules catch nondeterminism *at the statement that
commits it*: REP002 sees a set iterated inside a codec module, REP001
sees ``random.random()`` in library code.  What they provably cannot see
is the cross-call shape — a helper three modules away returns an
unseeded sample, the value rides through two plumbing functions, and
only then lands in ``encode_problem`` / ``journal.append`` /
``checkpoint.save``.  Every hop is individually innocent; the *flow* is
the bug, and it is exactly the class the fresh-interpreter replay suites
keep re-discovering dynamically, one incident at a time.

This rule consumes the whole-program engine
(:mod:`repro.analysis.dataflow`): per-function summaries propagated to a
fixed point over the project call graph, covering both directions —

* **return flows**: a taint born in a callee travels back through
  return values into a sink argument, and
* **argument flows**: a tainted value is passed down through call
  arguments into a function whose parameter (transitively) feeds a sink.

Findings are anchored at the **sink call line** with the full witness
chain in the message, so a single suppression on the sink line silences
the whole chain (the sink is where a human must decide the flow is
acceptable).  Set-order taint that both originates and sinks inside one
ordered-output module is left to REP002, which already flags the
iteration line itself.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.core import Finding, Project, Rule, register


@register
class InterproceduralTaintRule(Rule):
    code = "REP010"
    name = "nondeterministic value reaches a serialization sink across calls"
    rationale = (
        "Canonical bytes, journals, and checkpoints must be pure functions of "
        "their logical inputs; a value born from unseeded RNG, set/dict-view "
        "order, the wall clock, or os.environ that flows into them — through "
        "any number of intermediate calls — makes recorded artifacts "
        "unreproducible."
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        if not project.facts:
            return
        engine = project.whole_program
        for hit in engine.taint_hits():
            view = next(
                (v for v in project.views if v.rel_path == hit.path), None
            )
            chain = " -> ".join(hit.chain)
            yield Finding(
                rule=self.code,
                path=hit.path,
                line=hit.line,
                col=1,
                message=(
                    f"nondeterministic value ({hit.kind}) reaches serialization "
                    f"sink {hit.sink}; flow: {chain}"
                ),
                source_line=view.source_line(hit.line) if view is not None else "",
            )
