"""REP011 — deep fork/pool safety for worker-reachable code.

REP004 checks the *surface* of a pool submission: the callable handed to
``_run_chunks`` must be a module-level function (picklable under the
spawn start method).  This rule checks everything *behind* that surface.
Starting from the fork roots —

* callables submitted at a ``_run_chunks`` call site (positional worker
  slots and the ``worker_fn=`` / ``initializer=`` keywords),
* ``@register_runner`` cell runners (executed inside the isolated
  supervisor cell subprocess), and
* the supervisor's child entrypoints themselves
  (``supervisor.isolation._child_entry`` / ``_execute``) —

it walks the project call graph and flags, anywhere in the reachable
set:

* **mutation of a module-level mutable global** — the write lands in the
  child's copy-on-write page and silently vanishes when the worker
  exits; under spawn it never happens at all.  State must travel through
  arguments and return values;
* **touching an unpicklable module-level object** (locks, open file
  handles) — works by accident under fork, breaks under spawn, and is a
  shared-state smell either way;
* **re-reading a parent-scoped ``REPRO_*`` knob in the child** — knobs
  declared ``scope="parent"`` in :mod:`repro.utils.env` configure the
  *supervising* process (timeouts, retry budgets, journal locations);
  reading one child-side picks up whatever environment the child
  happened to inherit, so a knob change between fork and read splits the
  campaign's configuration in two.  Resolve parent-side and pass the
  value down.

Findings anchor at the hazardous line; the message carries the
reachability chain from the fork root so the reviewer can see *why* the
function counts as worker-side.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.core import Finding, Project, Rule, register


@register
class ForkSafetyRule(Rule):
    code = "REP011"
    name = "fork-unsafe state in pool/cell-reachable code"
    rationale = (
        "Code reachable from pool workers or isolated supervisor cells runs "
        "in a forked child: mutated module globals vanish with the child, "
        "unpicklable module state breaks spawn, and re-read parent-scoped "
        "knobs can disagree with the supervising process."
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        if not project.facts:
            return
        try:
            from repro.utils.env import parent_scoped_knobs

            parent_knobs = parent_scoped_knobs()
        except Exception:  # pragma: no cover - env module always importable
            parent_knobs = frozenset()
        engine = project.whole_program
        for hazard in engine.fork_hazards(parent_scoped_knobs=parent_knobs):
            view = next(
                (v for v in project.views if v.rel_path == hazard.path), None
            )
            chain = " -> ".join(hazard.chain)
            yield Finding(
                rule=self.code,
                path=hazard.path,
                line=hazard.line,
                col=1,
                message=f"{hazard.hazard}; reachable: {chain}",
                source_line=view.source_line(hazard.line) if view is not None else "",
            )
