"""REP001 — no unseeded or global-state randomness in library code.

Every guarantee in this pipeline — relabeling-invariant canonical
hashes, bit-identical checkpoint resume, seed-replayable certificate
transcripts — dies the moment any code path consumes OS entropy or the
shared module-level generator.  Randomized algorithms must draw from an
injected, explicitly seeded generator (``random.Random(seed)`` or
:class:`repro.utils.rng.SplittableRNG`).

Flags:

* calls to module-level ``random.*`` functions (``random.random``,
  ``random.randint``, ``random.shuffle``, ``random.seed``, ...) — these
  all touch the hidden global generator;
* ``random.Random()`` / ``random.SystemRandom(...)`` — the former seeds
  from the OS, the latter *is* the OS;
* ``numpy.random.*`` except ``numpy.random.default_rng(seed)`` with an
  explicit seed argument;
* ``from random import randint, ...`` — importing the global-generator
  functions directly (harder to spot at the call site).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, register

#: random-module callables backed by the hidden global generator.
_GLOBAL_STATE_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "randbytes",
        "seed",
        "setstate",
        "getstate",
    }
)


@register
class UnseededRandomnessRule(Rule):
    code = "REP001"
    name = "unseeded or global randomness"
    rationale = (
        "Reproducibility requires every random draw to come from an "
        "injected, explicitly seeded generator; global/OS randomness makes "
        "canonical hashes, checkpoints, and certificate replays unstable."
    )
    node_types = (ast.Call, ast.ImportFrom)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_scaffolding

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    if alias.name in _GLOBAL_STATE_FUNCTIONS:
                        yield ctx.finding(
                            self.code,
                            node,
                            f"'from random import {alias.name}' binds the hidden "
                            "global generator; inject a seeded random.Random "
                            "instead",
                        )
            return
        assert isinstance(node, ast.Call)
        qualname = ctx.resolve_qualname(node.func)
        if qualname is None:
            return
        parts = qualname.split(".")
        if parts[0] == "random" and len(parts) == 2:
            attr = parts[1]
            if attr == "Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self.code,
                        node,
                        "random.Random() without a seed draws OS entropy; pass "
                        "an explicit seed",
                    )
            elif attr == "SystemRandom":
                yield ctx.finding(
                    self.code,
                    node,
                    "random.SystemRandom is OS entropy by construction and can "
                    "never replay",
                )
            elif attr in _GLOBAL_STATE_FUNCTIONS:
                yield ctx.finding(
                    self.code,
                    node,
                    f"random.{attr}() uses the hidden module-level generator; "
                    "draw from an injected seeded random.Random",
                )
        elif parts[:2] == ["numpy", "random"] and len(parts) >= 3:
            if parts[2] == "default_rng" and (node.args or node.keywords):
                return
            yield ctx.finding(
                self.code,
                node,
                f"{qualname}() uses numpy's global (or unseeded) generator; use "
                "numpy.random.default_rng(seed)",
            )
