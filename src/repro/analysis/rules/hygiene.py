"""Hygiene rules: REP007 bare except, REP008 mutable defaults, REP009
exception taxonomy at the public API.

These are classics, but each maps onto a specific contract of this
codebase:

* **REP007** — a bare ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``, which breaks the cooperative budget/checkpoint story:
  an operator interrupting a long walk must get a clean checkpoint, not
  a loop that eats the signal.
* **REP008** — a mutable default argument is cross-call shared state;
  in a codebase whose operators are cached by *value* and replayed from
  transcripts, hidden accumulation between calls is a determinism bug
  waiting for a cache hit.
* **REP009** — ``repro.exceptions`` documents that every deliberate
  library error derives from :class:`~repro.exceptions.ReproError` so
  callers can catch one type; raising bare ``Exception`` /
  ``RuntimeError`` / ``AssertionError`` across the public API breaks
  that contract (``assert`` statements and private helpers are exempt).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import FileContext, Finding, Rule, parent_chain, register

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
_GENERIC_EXCEPTIONS = frozenset({"Exception", "BaseException", "RuntimeError", "AssertionError"})


@register
class BareExceptRule(Rule):
    code = "REP007"
    name = "bare except clause"
    rationale = (
        "except: swallows KeyboardInterrupt/SystemExit, breaking clean "
        "budget exhaustion and checkpoint-on-interrupt; catch Exception or "
        "something narrower."
    )
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield ctx.finding(
                self.code,
                node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                "name the exceptions (at most 'except Exception:')",
            )


@register
class MutableDefaultRule(Rule):
    code = "REP008"
    name = "mutable default argument"
    rationale = (
        "Default values are evaluated once and shared across calls; mutable "
        "ones are hidden cross-call state, a determinism hazard next to "
        "value-keyed caches and replayable transcripts."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                yield ctx.finding(
                    self.code,
                    default,
                    f"mutable default ({kind} literal) is shared across calls; "
                    "default to None and build inside the function",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
                and not default.args
                and not default.keywords
            ):
                yield ctx.finding(
                    self.code,
                    default,
                    f"mutable default ({default.func.id}()) is shared across "
                    "calls; default to None and build inside the function",
                )


@register
class ExceptionTaxonomyRule(Rule):
    code = "REP009"
    name = "non-taxonomy exception crossing the public API"
    rationale = (
        "repro.exceptions promises every deliberate library error derives "
        "from ReproError; raising generic builtins from public functions "
        "breaks the single-catch contract documented there."
    )
    node_types = (ast.Raise,)

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_scaffolding

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        assert isinstance(node, ast.Raise)
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if not isinstance(exc, ast.Name) or exc.id not in _GENERIC_EXCEPTIONS:
            return
        # Private helpers (any enclosing _name) may raise what they like;
        # the contract binds the public surface.
        for ancestor in parent_chain(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and ancestor.name.startswith("_"):
                return
        yield ctx.finding(
            self.code,
            node,
            f"raising {exc.id} across the public API; use a ReproError "
            "subclass from repro.exceptions so callers can catch the "
            "documented taxonomy",
        )
