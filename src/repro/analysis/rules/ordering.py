"""REP002 — no unordered iteration feeding canonical/serialized output.

Canonical hashing (:mod:`repro.roundelim.canonical`), the label codec
(:mod:`repro.lcl.codec`), checkpoint snapshots
(:mod:`repro.roundelim.checkpoint`), and certificate envelopes
(:mod:`repro.verify`) all promise byte-identical output for equal
inputs, across processes and label spellings.  Iterating a ``set`` /
``frozenset`` or a dict view in those modules threads *insertion or hash
order* — a process artifact — straight into the bytes, which is exactly
the class of bug the fresh-interpreter and replay suites keep catching
dynamically.  This rule catches it at lint time.

Within the ordered-output modules the rule flags ``for`` statements and
comprehensions whose iterable is

* a call to ``set(...)`` / ``frozenset(...)``, or
* a ``.keys()`` / ``.values()`` / ``.items()`` dict view,

unless the iteration result flows directly into an order-insensitive
sink (``sorted``, ``min``, ``max``, ``sum``, ``len``, ``any``, ``all``,
``set``, ``frozenset``).  Wrap the iterable in ``sorted(...)`` (with a
key for mixed-type labels), or suppress with a justification when the
loop is genuinely order-free (e.g. populating a membership set).

The check is syntactic: iteration over a *variable* that happens to hold
a set is invisible to it.  That is deliberate — the rule is the cheap,
always-on tripwire; the hypothesis replay suites remain the semantic
backstop.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.contracts import (
    ORDER_INSENSITIVE_SINKS,
    ORDERED_OUTPUT_PACKAGES,
    ORDERED_OUTPUT_STEMS,
    UNORDERED_VIEW_METHODS,
    is_ordered_output_module,
)
from repro.analysis.core import FileContext, Finding, Rule, register

# Backwards-compatible aliases (the scope tables now live in
# repro.analysis.contracts, shared with REP010/REP011/REP012).
_ORDER_INSENSITIVE_SINKS = ORDER_INSENSITIVE_SINKS
_VIEW_METHODS = UNORDERED_VIEW_METHODS


def _unordered_reason(iterable: ast.expr) -> Optional[str]:
    """Why ``iterable`` is unordered, or ``None`` when it is not."""
    if isinstance(iterable, ast.Call):
        func = iterable.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"a {func.id}()"
        if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
            return f"a .{func.attr}() dict view"
    if isinstance(iterable, (ast.SetComp, ast.Set)):
        return "a set literal/comprehension"
    return None


def _sink_call_name(node: ast.AST) -> Optional[str]:
    parent = getattr(node, "parent", None)
    if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
        if node in parent.args:
            return parent.func.id
    return None


@register
class UnorderedIterationRule(Rule):
    code = "REP002"
    name = "unordered iteration in an ordered-output module"
    rationale = (
        "Canonical forms, codecs, checkpoints, and certificates must be "
        "byte-identical across processes; set/dict-view iteration order is "
        "a process artifact and must pass through sorted() first."
    )
    node_types = (ast.For, ast.comprehension)

    def applies_to(self, ctx: FileContext) -> bool:
        return is_ordered_output_module(ctx.path.stem, ctx.segments)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        iterable = node.iter
        reason = _unordered_reason(iterable)
        if reason is None:
            return
        if isinstance(node, ast.comprehension):
            # The comprehension's owner (GeneratorExp/ListComp/...) may be
            # the direct argument of an order-insensitive sink.
            owner = getattr(node, "parent", None)
            if owner is not None and _sink_call_name(owner) in _ORDER_INSENSITIVE_SINKS:
                return
            anchor: ast.AST = iterable
        else:
            anchor = node
        yield ctx.finding(
            self.code,
            anchor,
            f"iterating {reason} in an ordered-output module threads hash/"
            "insertion order into canonical bytes; wrap the iterable in "
            "sorted(...)",
        )
