"""REP003 — the certificate checker must be statically engine-free.

``import repro.verify`` must never execute the round-elimination engine
(:mod:`repro.roundelim`) or the decidability stack
(:mod:`repro.decidability`): a certificate is only trustworthy evidence
if the machinery that produced the verdict plays no part in checking it.
The producer half (``repro.verify.certify``) is the single declared
exception, reachable only through lazy PEP 562 attribute access.

This rule builds the static, module-level import graph
(:mod:`repro.analysis.imports`) and asserts that no checker-half module
under a ``verify`` package can reach a forbidden module.  Function-level
imports do not count — they *are* the sanctioned lazy-loading idiom.

The dynamic complement is the fresh-interpreter test
(``tests/test_certificates.py::test_check_certificate_is_engine_free``),
which catches what static analysis cannot (``importlib`` tricks,
``__getattr__`` that eagerly imports); this rule catches what the
dynamic test cannot — a violating import on a code path the test run
never touches.  ``tests/test_lint_selfcheck.py`` asserts the two agree.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.contracts import (
    CHECKER_PACKAGES,
    FORBIDDEN_ENGINE_SEGMENTS,
    PRODUCER_STEMS,
    is_checker_module,
    is_engine_module,
)
from repro.analysis.core import Finding, Project, Rule, register
from repro.analysis.imports import ImportGraph

# The frontier definition is shared with REP012 (call-level) through
# repro.analysis.contracts.
FORBIDDEN_SEGMENTS = FORBIDDEN_ENGINE_SEGMENTS


@register
class EngineFreeImportRule(Rule):
    code = "REP003"
    name = "engine import reachable from the certificate checker"
    rationale = (
        "Certificates are independent evidence only while 'import "
        "repro.verify' cannot execute the engine that produced them; the "
        "checker half must stay statically unreachable from repro.roundelim "
        "and repro.decidability."
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        graph = ImportGraph.from_project(project)
        roots: List[str] = [
            module
            for module, facts in sorted(project.facts.items())
            if is_checker_module(module) and not facts.is_scaffolding
        ]
        reported = set()
        for root in roots:
            chains = graph.reachable_from(root)
            for reached in sorted(chains):
                if not is_engine_module(reached):
                    continue
                chain = chains[reached]
                if not chain:  # the root itself is misplaced; skip
                    continue
                # Report at the first edge that crosses into forbidden
                # territory, once per (site, target) pair.
                offending = next(
                    edge
                    for edge in chain
                    if FORBIDDEN_SEGMENTS & set(edge.imported.split("."))
                )
                key = (offending.path, offending.line)
                if key in reported:
                    continue
                reported.add(key)
                pretty_chain = " -> ".join([root] + [e.imported for e in chain])
                ctx = project.by_module.get(offending.importer)
                finding = Finding(
                    rule=self.code,
                    path=offending.path,
                    line=offending.line,
                    col=1,
                    message=(
                        f"checker module {root!r} reaches engine module "
                        f"{reached!r} via module-level imports ({pretty_chain}); "
                        "move the import into the function that needs it"
                    ),
                    source_line=(
                        ctx.source_line(offending.line) if ctx is not None else ""
                    ),
                )
                yield finding
