"""The ``repro-lint`` command line (also ``python -m repro.analysis`` and
the ``lcl-landscape lint`` verb).

All three entrypoints share one flag set (:func:`add_lint_arguments`)
and one backend (:func:`run_from_args`) — ``tests/test_lint_cli.py``
asserts the parsers cannot drift apart.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage or I/O error.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.core import run_lint
from repro.analysis.report import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
    render_unused_suppressions,
)

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flag set (used by both ``repro-lint`` and ``lcl-landscape
    lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text); sarif targets GitHub code scanning",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="grandfathering baseline: matching findings are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="anchor for relative paths in reports/fingerprints (default: cwd)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only findings in files changed vs. git HEAD (the whole "
            "tree is still analyzed — cheaply, via the cache — so "
            "whole-program rules stay sound)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental per-file cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="incremental-cache directory (default: REPRO_LINT_CACHE_DIR)",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete every incremental-cache record before analyzing",
    )
    parser.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help=(
            "list suppression directives that silenced nothing this run "
            "(stale escapes); exits 1 when any exist"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--env",
        action="store_true",
        help="print the registered REPRO_* environment-knob table and exit",
    )


def _split_codes(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [part.strip() for part in raw.split(",") if part.strip()]


def _changed_paths(root: Path) -> Optional[Set[str]]:
    """Repo-relative paths changed vs. HEAD (staged, unstaged, and
    untracked); ``None`` when git is unavailable (caller falls back to a
    full report rather than silently reporting nothing)."""
    changed: Set[str] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args,
                cwd=str(root),
                capture_output=True,
                text=True,
                timeout=30,
                check=False,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.update(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return changed


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint invocation from parsed arguments (shared backend)."""
    if args.env:
        from repro.utils.env import render_table

        print(render_table())
        return 0
    if args.list_rules:
        print(render_rule_list())
        return 0
    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    root = Path(args.root).resolve() if args.root else Path.cwd()
    use_cache = False if args.no_cache else None
    if args.clear_cache:
        from repro.analysis.cache import LintCache

        cache = LintCache.open((), enabled=use_cache, directory=args.cache_dir, root=root)
        if cache is not None:
            removed = cache.clear()
            print(f"cleared {removed} cache record(s)", file=sys.stderr)
    try:
        result = run_lint(
            paths,
            root=root,
            select=_split_codes(args.select) or None,
            disable=_split_codes(args.disable),
            baseline=baseline,
            use_cache=use_cache,
            cache_dir=args.cache_dir,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.changed_only:
        changed = _changed_paths(root)
        if changed is not None:
            result.findings = [f for f in result.findings if f.path in changed]
            result.unused_suppressions = [
                u for u in result.unused_suppressions if u.path in changed
            ]
        else:
            print(
                "warning: --changed-only needs a git checkout; reporting all findings",
                file=sys.stderr,
            )
    if args.write_baseline:
        counts = write_baseline(result.findings, Path(args.write_baseline))
        print(
            f"wrote baseline {args.write_baseline} "
            f"({sum(counts.values())} finding(s) grandfathered)"
        )
        return 0
    if args.report_unused_suppressions:
        print(render_unused_suppressions(result))
        return 0 if not result.unused_suppressions else 1
    renderers = {"text": render_text, "json": render_json, "sarif": render_sarif}
    print(renderers[args.format](result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism- and purity-aware static analysis for the repro "
            "pipeline (rule catalog: docs/STATIC_ANALYSIS.md)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_from_args(args)


if __name__ == "__main__":
    raise SystemExit(main())
