"""The ``repro-lint`` command line (also ``python -m repro.analysis`` and
the ``lcl-landscape lint`` verb).

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.core import run_lint
from repro.analysis.report import render_json, render_rule_list, render_text

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flag set (used by both ``repro-lint`` and ``lcl-landscape
    lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="grandfathering baseline: matching findings are not reported",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="anchor for relative paths in reports/fingerprints (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--env",
        action="store_true",
        help="print the registered REPRO_* environment-knob table and exit",
    )


def _split_codes(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [part.strip() for part in raw.split(",") if part.strip()]


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint invocation from parsed arguments (shared backend)."""
    if args.env:
        from repro.utils.env import render_table

        print(render_table())
        return 0
    if args.list_rules:
        print(render_rule_list())
        return 0
    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        result = run_lint(
            paths,
            root=Path(args.root) if args.root else None,
            select=_split_codes(args.select) or None,
            disable=_split_codes(args.disable),
            baseline=baseline,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        counts = write_baseline(result.findings, Path(args.write_baseline))
        print(
            f"wrote baseline {args.write_baseline} "
            f"({sum(counts.values())} finding(s) grandfathered)"
        )
        return 0
    print(render_text(result) if args.format == "text" else render_json(result))
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism- and purity-aware static analysis for the repro "
            "pipeline (rule catalog: docs/STATIC_ANALYSIS.md)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_from_args(args)


if __name__ == "__main__":
    raise SystemExit(main())
