"""``python -m repro.analysis`` — the ``repro-lint`` entry point for
environments running from a source checkout (PYTHONPATH=src) where the
console script is not installed."""

from repro.analysis.cli import main

raise SystemExit(main())
