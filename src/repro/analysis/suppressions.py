"""Per-line and per-file lint suppression comments.

Two forms, mirroring the usual linter idiom:

* ``# repro-lint: disable=REP001`` (or ``disable=REP001,REP005``) on the
  offending line, or alone on the line directly above it, silences those
  codes for that statement;
* ``# repro-lint: disable-file=REP002`` anywhere in a file silences the
  code for the whole file.

Suppressions are the *reviewed* escape hatch: unlike the baseline they
live next to the code, show up in diffs, and should carry a short
justification in the same comment, e.g.::

    for outputs in table.values():  # repro-lint: disable=REP002 -- membership only

Every directive is tracked: :meth:`Suppressions.match` reports which
directive silenced a finding, so ``repro-lint
--report-unused-suppressions`` can list stale directives that no longer
silence anything (the code they guarded got fixed or moved).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")


def _comment_lines(source: str) -> Optional[Dict[int, str]]:
    """Map line number -> comment text, via the tokenizer.

    Only genuine ``COMMENT`` tokens count: a directive-shaped string
    *literal* (a lint-test fixture, a docstring quoting the syntax) must
    neither silence findings nor show up as a stale directive.  Returns
    ``None`` when the source does not tokenize (caller falls back to
    line-based scanning so directives keep working in files that REP000
    is about to flag anyway).
    """
    comments: Dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return None
    return comments

#: Sentinel line number identifying a whole-file directive.
FILE_DIRECTIVE_LINE = 0


def _codes(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


class Suppressions:
    """Parsed suppression directives for one source file."""

    def __init__(
        self,
        by_line: Dict[int, FrozenSet[str]],
        whole_file: FrozenSet[str],
        file_directive_lines: Tuple[int, ...] = (),
    ):
        self.by_line = by_line
        self.whole_file = whole_file
        #: Lines carrying ``disable-file`` directives (for staleness reports).
        self.file_directive_lines = file_directive_lines

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        by_line: Dict[int, FrozenSet[str]] = {}
        whole_file: Set[str] = set()
        file_lines: List[int] = []
        comments = _comment_lines(source)
        if comments is not None:
            candidates = sorted(comments.items())
        else:
            candidates = list(enumerate(source.splitlines(), start=1))
        for lineno, text in candidates:
            match = _FILE_RE.search(text)
            if match:
                whole_file |= _codes(match.group(1))
                file_lines.append(lineno)
                continue
            match = _LINE_RE.search(text)
            if match:
                by_line[lineno] = frozenset(_codes(match.group(1)))
        return cls(by_line, frozenset(whole_file), tuple(file_lines))

    def match(self, code: str, line: int) -> Optional[int]:
        """The directive line that silences ``code`` at ``line``, or
        ``None``.  Whole-file directives report
        :data:`FILE_DIRECTIVE_LINE`; a same-line directive wins over a
        line-above one."""
        if code in self.by_line.get(line, ()):  # on the flagged line
            return line
        # A directive alone on the immediately preceding line also counts
        # (for statements too long to carry a trailing comment).
        if code in self.by_line.get(line - 1, ()):
            return line - 1
        if code in self.whole_file:
            return FILE_DIRECTIVE_LINE
        return None

    def is_suppressed(self, code: str, line: int) -> bool:
        return self.match(code, line) is not None

    def directive_keys(self) -> List[Tuple[int, str]]:
        """Every ``(line, code)`` pair a directive declares, whole-file
        directives under :data:`FILE_DIRECTIVE_LINE`."""
        keys = [
            (line, code)
            for line, codes in self.by_line.items()
            for code in codes
        ]
        keys.extend((FILE_DIRECTIVE_LINE, code) for code in self.whole_file)
        return sorted(keys)

    @property
    def total_directives(self) -> int:
        return len(self.by_line) + (1 if self.whole_file else 0)

    # -- cache serialization ------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "by_line": {str(line): sorted(codes) for line, codes in self.by_line.items()},
            "whole_file": sorted(self.whole_file),
            "file_directive_lines": list(self.file_directive_lines),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Suppressions":
        return cls(
            {int(line): frozenset(codes) for line, codes in payload["by_line"].items()},
            frozenset(payload["whole_file"]),
            tuple(payload.get("file_directive_lines", ())),
        )
