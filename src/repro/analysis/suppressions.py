"""Per-line and per-file lint suppression comments.

Two forms, mirroring the usual linter idiom:

* ``# repro-lint: disable=REP001`` (or ``disable=REP001,REP005``) on the
  offending line, or alone on the line directly above it, silences those
  codes for that statement;
* ``# repro-lint: disable-file=REP002`` anywhere in a file silences the
  code for the whole file.

Suppressions are the *reviewed* escape hatch: unlike the baseline they
live next to the code, show up in diffs, and should carry a short
justification in the same comment, e.g.::

    for outputs in table.values():  # repro-lint: disable=REP002 -- membership only
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Set

_LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")


def _codes(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


class Suppressions:
    """Parsed suppression directives for one source file."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]], whole_file: FrozenSet[str]):
        self.by_line = by_line
        self.whole_file = whole_file

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        by_line: Dict[int, FrozenSet[str]] = {}
        whole_file: Set[str] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _FILE_RE.search(text)
            if match:
                whole_file |= _codes(match.group(1))
                continue
            match = _LINE_RE.search(text)
            if match:
                by_line[lineno] = frozenset(_codes(match.group(1)))
        return cls(by_line, frozenset(whole_file))

    def is_suppressed(self, code: str, line: int) -> bool:
        if code in self.whole_file:
            return True
        if code in self.by_line.get(line, ()):  # on the flagged line
            return True
        # A directive alone on the immediately preceding line also counts
        # (for statements too long to carry a trailing comment).
        return code in self.by_line.get(line - 1, ())

    @property
    def total_directives(self) -> int:
        return len(self.by_line) + (1 if self.whole_file else 0)
