"""Whole-program propagation over the per-function summaries.

This is the *uncached* half of the interprocedural analyzer: it takes
the per-file :class:`~repro.analysis.summaries.FileFacts` (freshly
extracted or replayed from the incremental cache — indistinguishable by
construction) and computes every cross-file judgment from scratch on
each run:

* a **function index** with re-export-tolerant call resolution
  (``repro.lcl.encode_problem`` resolves to the unique
  ``repro.lcl.codec.encode_problem`` when the package ``__init__``
  re-exports it);
* **fixed-point summaries** per function — which nondeterminism kinds
  its return value carries (with the full witness chain), whether it
  returns an unordered container, and which of its parameters flow into
  serialization sinks (transitively, through further calls);
* the three whole-program queries the rules consume:
  :meth:`WholeProgram.taint_hits` (REP010),
  :meth:`WholeProgram.fork_hazards` (REP011), and
  :meth:`WholeProgram.engine_reach` (REP012).

Termination: the summary lattice is finite and the transfer function is
monotone — taint kinds and param-sink records are only ever *added*, and
the witness chain attached to a kind is frozen the first time the kind
appears (a later, different chain for an already-known kind never
re-triggers propagation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis import contracts
from repro.analysis.summaries import (
    Dep,
    DepSet,
    FileFacts,
    FunctionRecord,
    MAX_EVAL_DEPTH,
)

#: One step of a human-readable witness chain: ``path:line: what``.
Chain = Tuple[str, ...]


def _step(rel_path: str, line: int, text: str) -> str:
    return f"{rel_path}:{line}: {text}"


@dataclass
class ParamSink:
    """A (transitive) flow from one function parameter into a sink."""

    sink: str
    sink_path: str
    sink_line: int
    #: Hops from the parameter to the sink (call sites, then the sink).
    hops: Chain

    def key(self) -> Tuple[str, str, int]:
        return (self.sink, self.sink_path, self.sink_line)


@dataclass
class Summary:
    """Propagated facts about one function's return value and params."""

    ret_taints: Dict[str, Chain] = field(default_factory=dict)
    ret_unordered: bool = False
    param_sinks: Dict[str, List[ParamSink]] = field(default_factory=dict)


@dataclass(frozen=True)
class TaintHit:
    """REP010: a nondeterministic value reaching a serialization sink."""

    kind: str
    sink: str
    path: str  # file containing the sink call (finding anchor)
    line: int  # sink call line (so sink-line suppressions work)
    chain: Chain


@dataclass(frozen=True)
class ForkHazard:
    """REP011: fork-reachable code carrying unsafe state."""

    hazard: str
    path: str
    line: int
    root: str  # the fork entrypoint this is reachable from
    chain: Chain


@dataclass(frozen=True)
class EngineReach:
    """REP012: a checker function whose call chain enters the engine."""

    caller: str
    target: str
    path: str
    line: int
    chain: Chain


class WholeProgram:
    """Call graph + fixed-point summaries over a project's FileFacts."""

    def __init__(self, facts: Dict[str, FileFacts]):
        self.facts = facts
        #: qualname -> record, across every file.
        self.functions: Dict[str, FunctionRecord] = {}
        #: simple function name -> sorted keys (for suffix resolution).
        self._by_name: Dict[str, List[str]] = {}
        for module in sorted(facts):
            for key, record in facts[module].functions.items():
                self.functions[key] = record
                self._by_name.setdefault(record.name, []).append(key)
        for keys in self._by_name.values():
            keys.sort()
        self._resolve_cache: Dict[str, Tuple[str, ...]] = {}
        self.summaries: Dict[str, Summary] = {
            key: Summary() for key in self.functions
        }
        self._callers: Dict[str, Set[str]] = {}
        self._build_reverse_edges()
        self._propagate()

    # -- resolution ---------------------------------------------------------
    def resolve(self, candidate: str) -> Tuple[str, ...]:
        """Project function keys a callee candidate may denote.

        Exact qualname match first; otherwise the re-export fallback: a
        candidate ``pkg.name`` (where ``pkg`` is a project package whose
        ``__init__`` re-exports ``name``) resolves to the *unique* key
        ``pkg.<submodule...>.name``.  Ambiguous fallbacks resolve to
        nothing — a lint must not guess."""
        cached = self._resolve_cache.get(candidate)
        if cached is not None:
            return cached
        result: Tuple[str, ...]
        if candidate in self.functions:
            result = (candidate,)
        elif "." in candidate:
            prefix, name = candidate.rsplit(".", 1)
            matches = [
                key
                for key in self._by_name.get(name, ())
                if key.startswith(prefix + ".") and key != candidate
            ]
            result = (matches[0],) if len(matches) == 1 else ()
        else:
            result = ()
        self._resolve_cache[candidate] = result
        return result

    def _resolve_all(self, candidates: Sequence[str]) -> Tuple[str, ...]:
        seen: List[str] = []
        for candidate in candidates:
            for key in self.resolve(candidate):
                if key not in seen:
                    seen.append(key)
        return tuple(seen)

    def _build_reverse_edges(self) -> None:
        for key, record in self.functions.items():
            for call in record.calls:
                for target in self._resolve_all(call.candidates):
                    self._callers.setdefault(target, set()).add(key)

    # -- dep evaluation -----------------------------------------------------
    def evaluate(self, deps: DepSet, rel_path: str) -> Tuple[Dict[str, Chain], bool]:
        """Resolve a dep set against the current summaries: the taint
        kinds it carries (with witness chains) and whether it holds an
        unordered container."""
        taints: Dict[str, Chain] = {}
        unordered = False
        for dep in sorted(deps, key=repr):
            tag = dep[0]
            if tag == "taint":
                _, kind, line, desc = dep
                taints.setdefault(kind, (_step(rel_path, line, desc),))
            elif tag == "unordered":
                unordered = True
            elif tag in ("call", "lcall", "mcall"):
                _, candidate, line = dep
                for target in self.resolve(candidate):
                    summary = self.summaries[target]
                    for kind, chain in summary.ret_taints.items():
                        if tag == "lcall" and kind == contracts.TAINT_ORDER:
                            continue  # sorted()/min()/... launders order
                        taints.setdefault(
                            kind,
                            chain + (_step(rel_path, line, f"returned by {target}"),),
                        )
                    if summary.ret_unordered:
                        if tag == "call":
                            unordered = True
                        elif tag == "mcall":
                            origin = (
                                _step(
                                    self.functions[target].rel_path,
                                    self.functions[target].line,
                                    f"{target} returns an unordered container",
                                ),
                            )
                            taints.setdefault(
                                contracts.TAINT_ORDER,
                                origin
                                + (
                                    _step(
                                        rel_path,
                                        line,
                                        "iterating/materializing its unordered return",
                                    ),
                                ),
                            )
            # ("param", name) and ("fref", ...) carry no taint here.
        return taints, unordered

    # -- fixed point --------------------------------------------------------
    def _transfer(self, key: str) -> bool:
        """Recompute one function's summary; True if it grew."""
        record = self.functions[key]
        summary = self.summaries[key]
        changed = False
        self._linked_changed = False

        taints, unordered = self.evaluate(record.return_deps, record.rel_path)
        for kind, chain in taints.items():
            if kind not in summary.ret_taints:
                summary.ret_taints[kind] = chain
                changed = True
        if unordered and not summary.ret_unordered:
            summary.ret_unordered = True
            changed = True
        # A function returning a raw unordered dep also propagates the
        # container-ness through plain `call` deps (handled in evaluate).

        # Direct param -> local sink flows.
        for sink in record.sinks:
            params = {dep[1] for dep in sink.deps if dep[0] == "param"}
            for param in params:
                ps = ParamSink(
                    sink=sink.sink,
                    sink_path=record.rel_path,
                    sink_line=sink.line,
                    hops=(_step(record.rel_path, sink.line, f"into sink {sink.sink}"),),
                )
                if self._add_param_sink(summary, param, ps):
                    changed = True

        # Transitive param -> callee-param -> ... -> sink flows.
        for call in record.calls:
            for target in self._resolve_all(call.candidates):
                target_record = self.functions[target]
                target_summary = self.summaries[target]
                if not target_summary.param_sinks:
                    continue
                for position, deps in enumerate(call.args):
                    index = position + call.offset
                    if index >= len(target_record.params):
                        continue
                    self._link_param_sinks(
                        summary, record, call.line, target,
                        target_record.params[index], target_summary, deps,
                    )
                for kwname, deps in call.kwargs.items():
                    if kwname in target_record.params:
                        self._link_param_sinks(
                            summary, record, call.line, target,
                            kwname, target_summary, deps,
                        )
                changed |= self._linked_changed
        return changed

    _linked_changed = False

    def _link_param_sinks(
        self,
        summary: Summary,
        record: FunctionRecord,
        line: int,
        target: str,
        target_param: str,
        target_summary: Summary,
        deps: DepSet,
    ) -> None:
        for ps in target_summary.param_sinks.get(target_param, ()):  # noqa: B020
            hop = _step(record.rel_path, line, f"passed to {target}({target_param}=...)")
            extended = ParamSink(
                sink=ps.sink,
                sink_path=ps.sink_path,
                sink_line=ps.sink_line,
                hops=(hop,) + ps.hops,
            )
            for dep in deps:
                if dep[0] == "param":
                    if self._add_param_sink(summary, dep[1], extended):
                        self._linked_changed = True

    def _add_param_sink(self, summary: Summary, param: str, ps: ParamSink) -> bool:
        existing = summary.param_sinks.setdefault(param, [])
        if any(other.key() == ps.key() for other in existing):
            return False
        if len(existing) >= MAX_EVAL_DEPTH:
            return False  # pathological fan-in guard
        existing.append(ps)
        return True

    def _propagate(self) -> None:
        pending: List[str] = sorted(self.functions)
        queued: Set[str] = set(pending)
        rounds = 0
        limit = max(64, len(self.functions) * 16)
        while pending and rounds < limit:
            key = pending.pop(0)
            queued.discard(key)
            self._linked_changed = False
            if self._transfer(key):
                for caller in sorted(self._callers.get(key, ())):
                    if caller not in queued:
                        queued.add(caller)
                        pending.append(caller)
            rounds += 1

    # -- queries ------------------------------------------------------------
    def _is_scaffold(self, module: str) -> bool:
        facts = self.facts.get(module)
        return bool(facts and facts.is_scaffolding)

    def taint_hits(self) -> List[TaintHit]:
        """REP010 raw material: every nondeterministic-value-to-sink
        flow, anchored at the sink call line, with the full witness
        chain.  Set-order hits whose *origin* lies in an ordered-output
        module are left to REP002 (which flags the iteration itself)."""
        hits: List[TaintHit] = []
        seen: Set[Tuple[str, str, str, int]] = set()

        def emit(kind: str, sink: str, path: str, line: int, chain: Chain) -> None:
            dedup = (kind, sink, path, line)
            if dedup in seen:
                return
            seen.add(dedup)
            hits.append(TaintHit(kind=kind, sink=sink, path=path, line=line, chain=chain))

        for key in sorted(self.functions):
            record = self.functions[key]
            if self._is_scaffold(record.module):
                continue
            # Direct + return-propagated flows into sinks called here.
            for sink in record.sinks:
                taints, _ = self.evaluate(sink.deps, record.rel_path)
                for kind, chain in sorted(taints.items()):
                    emit(
                        kind,
                        sink.sink,
                        record.rel_path,
                        sink.line,
                        chain + (_step(record.rel_path, sink.line, f"into sink {sink.sink}"),),
                    )
            # Argument flows: a tainted value passed into a callee whose
            # parameter (transitively) reaches a sink.
            for call in record.calls:
                for target in self._resolve_all(call.candidates):
                    target_record = self.functions[target]
                    target_summary = self.summaries[target]
                    # A call that *resolves* to a sink function is a sink
                    # even when the spelled name hid the defining module
                    # (package re-exports) from local extraction.
                    if contracts.is_sink_function(target):
                        union: Set[Dep] = set()
                        for deps in call.args:
                            union |= deps
                        for deps in call.kwargs.values():
                            union |= deps
                        taints, _ = self.evaluate(frozenset(union), record.rel_path)
                        for kind, chain in sorted(taints.items()):
                            emit(
                                kind,
                                target,
                                record.rel_path,
                                call.line,
                                chain
                                + (_step(record.rel_path, call.line, f"into sink {target}"),),
                            )
                    if not target_summary.param_sinks:
                        continue
                    pairs: List[Tuple[str, DepSet]] = []
                    for position, deps in enumerate(call.args):
                        index = position + call.offset
                        if index < len(target_record.params):
                            pairs.append((target_record.params[index], deps))
                    for kwname, deps in call.kwargs.items():
                        if kwname in target_record.params:
                            pairs.append((kwname, deps))
                    for param, deps in pairs:
                        sinks = target_summary.param_sinks.get(param)
                        if not sinks:
                            continue
                        taints, _ = self.evaluate(deps, record.rel_path)
                        for kind, chain in sorted(taints.items()):
                            hop = _step(
                                record.rel_path,
                                call.line,
                                f"passed to {target}({param}=...)",
                            )
                            for ps in sinks:
                                emit(
                                    kind,
                                    ps.sink,
                                    ps.sink_path,
                                    ps.sink_line,
                                    chain + (hop,) + ps.hops,
                                )
        # Drop set-order hits born inside ordered-output modules: REP002
        # already flags unordered iteration there, line-precisely.
        filtered: List[TaintHit] = []
        for hit in hits:
            if hit.kind == contracts.TAINT_ORDER:
                origin_path = hit.chain[0].split(":", 1)[0] if hit.chain else ""
                if self._path_is_ordered_output(origin_path) and origin_path == hit.path:
                    continue
            filtered.append(hit)
        return filtered

    def _path_is_ordered_output(self, rel_path: str) -> bool:
        for facts in self.facts.values():
            if facts.rel_path == rel_path:
                segments = facts.module.split(".")
                return contracts.is_ordered_output_module(segments[-1], segments)
        return False

    # -- fork safety (REP011) ------------------------------------------------
    def fork_roots(self) -> Dict[str, str]:
        """Function key -> how it became a fork root."""
        roots: Dict[str, str] = {}

        def add(key: str, why: str) -> None:
            roots.setdefault(key, why)

        for key in sorted(self.functions):
            record = self.functions[key]
            if key.endswith(contracts.FORK_ENTRYPOINT_SUFFIXES):
                add(key, "fork-child entrypoint")
            for decorator in record.decorators:
                if decorator in contracts.FORK_RUNNER_DECORATORS:
                    add(key, f"@{decorator} cell runner")
            for call in record.calls:
                slots: Tuple[int, ...] = ()
                for candidate in call.candidates:
                    simple = candidate.rsplit(".", 1)[-1]
                    if simple in contracts.FORK_SUBMIT_NAMES:
                        slots = contracts.FORK_SUBMIT_NAMES[simple]
                        break
                if not slots:
                    continue
                carried: List[DepSet] = [
                    call.args[slot] for slot in slots if slot < len(call.args)
                ]
                carried.extend(
                    deps
                    for kwname, deps in call.kwargs.items()
                    if kwname in contracts.FORK_SUBMIT_KEYWORDS
                )
                for deps in carried:
                    for dep in deps:
                        if dep[0] == "fref":
                            for target in self.resolve(dep[1]):
                                add(target, f"submitted to pool at {record.rel_path}:{call.line}")
        return roots

    def _call_reach(
        self, root: str, stop: Optional[Set[str]] = None
    ) -> Dict[str, Chain]:
        """BFS over call (and function-reference) edges from ``root``:
        reached key -> chain of call-site steps."""
        chains: Dict[str, Chain] = {root: ()}
        queue: List[str] = [root]
        while queue:
            key = queue.pop(0)
            record = self.functions[key]
            targets: List[Tuple[str, int]] = []
            for call in record.calls:
                for target in self._resolve_all(call.candidates):
                    targets.append((target, call.line))
            for dep in sorted(record.return_deps, key=repr):
                if dep[0] == "fref":
                    for target in self.resolve(dep[1]):
                        targets.append((target, dep[2]))
            for target, line in targets:
                if target in chains:
                    continue
                if stop is not None and target in stop:
                    continue
                chains[target] = chains[key] + (
                    _step(record.rel_path, line, f"calls {target}"),
                )
                queue.append(target)
        return chains

    def fork_hazards(self, parent_scoped_knobs: FrozenSet[str] = frozenset()) -> List[ForkHazard]:
        """REP011 raw material: hazards in functions reachable from fork
        roots — mutating module-level mutable globals, touching
        unpicklable module-level state, or re-reading parent-scoped
        REPRO_* knobs in the child."""
        hazards: List[ForkHazard] = []
        seen: Set[Tuple[str, int, str]] = set()
        roots = self.fork_roots()
        for root in sorted(roots):
            why = roots[root]
            for key, chain in sorted(self._call_reach(root).items()):
                record = self.functions[key]
                if self._is_scaffold(record.module):
                    continue
                facts = self.facts.get(record.module)
                prefix = (
                    _step(record.rel_path, record.line, f"{key} (root: {why})"),
                ) if key == root else (
                    _step(
                        self.functions[root].rel_path,
                        self.functions[root].line,
                        f"{root} (root: {why})",
                    ),
                ) + chain

                def emit(line: int, text: str) -> None:
                    dedup = (record.rel_path, line, text)
                    if dedup in seen:
                        return
                    seen.add(dedup)
                    hazards.append(
                        ForkHazard(
                            hazard=text,
                            path=record.rel_path,
                            line=line,
                            root=root,
                            chain=prefix,
                        )
                    )

                for name, line in record.global_mutations:
                    emit(
                        line,
                        f"mutates module-level mutable global '{name}' in fork-reachable code",
                    )
                if facts is not None:
                    for name, line in record.global_reads:
                        if name in facts.unpicklable_globals:
                            emit(
                                line,
                                f"touches unpicklable module-level object '{name}' in fork-reachable code",
                            )
                for knob, line in record.env_reads:
                    if knob in parent_scoped_knobs:
                        emit(
                            line,
                            f"re-reads parent-scoped knob {knob} in fork-reachable code",
                        )
        return hazards

    # -- engine freedom (REP012) ---------------------------------------------
    def engine_reach(self) -> List[EngineReach]:
        """REP012 raw material: call edges from checker-module functions
        that (transitively) enter an engine module.  Producer modules
        (``certify``) are the sanctioned boundary — traversal does not
        continue through them."""
        produced: Set[str] = {
            key
            for key, record in self.functions.items()
            if contracts.is_producer_module(record.module)
        }
        out: List[EngineReach] = []
        seen: Set[Tuple[str, str]] = set()
        for key in sorted(self.functions):
            record = self.functions[key]
            if not contracts.is_checker_module(record.module):
                continue
            if self._is_scaffold(record.module):
                continue
            chains = self._call_reach(key, stop=produced)
            # Report the *shallowest* engine crossing per checker function.
            best: Optional[Tuple[int, str, Chain]] = None
            for target, chain in chains.items():
                target_module = self.functions[target].module
                if not contracts.is_engine_module(target_module):
                    continue
                if best is None or len(chain) < best[0]:
                    best = (len(chain), target, chain)
            if best is None:
                continue
            _, target, chain = best
            dedup = (key, target)
            if dedup in seen:
                continue
            seen.add(dedup)
            # Anchor at the first call edge leaving this function.
            first_line = record.line
            if chain:
                first = chain[0]
                try:
                    first_line = int(first.split(":", 2)[1])
                except (IndexError, ValueError):
                    pass
            out.append(
                EngineReach(
                    caller=key,
                    target=target,
                    path=record.rel_path,
                    line=first_line,
                    chain=(_step(record.rel_path, record.line, key),) + chain,
                )
            )
        return out
