"""Static module-level import graph over a linted project.

Only imports executed *at module import time* create edges: statements in
the module body, including inside top-level ``try``/``if`` blocks (import
fallbacks run), but **excluding** ``if TYPE_CHECKING:`` guards (never
executed at runtime) and imports nested in function or class-method
bodies (the lazy-loading idiom this repo uses to keep
:mod:`repro.verify` engine-free is precisely a function-level import).

Importing a dotted module also executes every ancestor package's
``__init__``, so ``import a.b.c`` contributes edges to ``a``, ``a.b``,
and ``a.b.c``; ``from a.b import c`` additionally targets ``a.b.c`` when
that resolves to a project module (attribute vs. submodule imports are
indistinguishable statically, and the conservative reading is the sound
one for a purity check).

Split for the incremental cache: :func:`extract_import_edges` derives a
file's raw import targets from its AST alone (cacheable per content
hash), while :class:`ImportGraph` filters those candidates against the
*global* module set at graph-build time — so a cached file never needs
to know which other files exist.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import FileContext, Project


@dataclass(frozen=True)
class ImportEdge:
    """``importer`` imports ``imported`` at ``path:line``."""

    importer: str
    imported: str
    path: str
    line: int


def _is_type_checking_guard(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test_names = {
        child.id for child in ast.walk(node.test) if isinstance(child, ast.Name)
    }
    test_attrs = {
        child.attr for child in ast.walk(node.test) if isinstance(child, ast.Attribute)
    }
    return "TYPE_CHECKING" in test_names | test_attrs


def _module_level_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, ast.Try):
            for block in (node.body, node.handlers, node.orelse, node.finalbody):
                for child in block:
                    stack.extend(
                        child.body if isinstance(child, ast.ExceptHandler) else [child]
                    )
        elif isinstance(node, ast.If) and not _is_type_checking_guard(node):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            stack.extend(node.body)


def _with_ancestors(module: str) -> Iterator[str]:
    parts = module.split(".")
    for end in range(1, len(parts) + 1):
        yield ".".join(parts[:end])


def _resolve_from(node: ast.ImportFrom, importer: str) -> Optional[str]:
    """The base module a ``from ... import`` statement targets."""
    if node.level == 0:
        return node.module
    # Relative import: strip `level` trailing segments from the importer's
    # package (the importer module itself counts as one for level >= 1).
    base_parts = importer.split(".")
    if len(base_parts) < node.level:
        return node.module  # broken relative import; best effort
    base_parts = base_parts[: len(base_parts) - node.level]
    if node.module:
        base_parts.append(node.module)
    return ".".join(base_parts) or None


def extract_import_edges(ctx: FileContext) -> List[ImportEdge]:
    """Raw import-target candidates for one file, *unfiltered* — every
    dotted name (with ancestors) the module-level imports could execute.
    :class:`ImportGraph` later keeps only candidates that name project
    modules.  Context-free by design so the result caches per file."""
    importer = ctx.module
    edges: List[ImportEdge] = []
    seen: Set[Tuple[str, int]] = set()

    def add(target: str, line: int) -> None:
        key = (target, line)
        if key not in seen:
            seen.add(key)
            edges.append(ImportEdge(importer, target, ctx.rel_path, line))

    for node in _module_level_imports(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                for candidate in _with_ancestors(alias.name):
                    add(candidate, node.lineno)
        else:
            base = _resolve_from(node, importer)
            if base is None:
                continue
            for candidate in _with_ancestors(base):
                add(candidate, node.lineno)
            for alias in node.names:
                if alias.name != "*":
                    add(f"{base}.{alias.name}", node.lineno)
    return edges


class ImportGraph:
    """Module -> module edges restricted to modules inside the project."""

    def __init__(
        self,
        modules: Set[str],
        candidate_edges: Dict[str, Sequence[Tuple[str, int]]],
        rel_paths: Dict[str, str],
    ):
        self.modules = set(modules)
        #: importer module -> list of edges (project-internal only).
        self.edges: Dict[str, List[ImportEdge]] = {}
        for importer in sorted(candidate_edges):
            rel_path = rel_paths.get(importer, "")
            kept: List[ImportEdge] = []
            # A submodule's import executes its package __init__ first.
            if "." in importer:
                package = importer.rsplit(".", 1)[0]
                if package in self.modules:
                    kept.append(ImportEdge(importer, package, rel_path, 1))
            for imported, line in candidate_edges[importer]:
                if imported in self.modules and imported != importer:
                    kept.append(ImportEdge(importer, imported, rel_path, line))
            self.edges[importer] = kept

    @classmethod
    def from_project(cls, project: Project) -> "ImportGraph":
        candidate_edges = {
            module: facts.import_edges for module, facts in project.facts.items()
        }
        rel_paths = {module: facts.rel_path for module, facts in project.facts.items()}
        return cls(set(project.facts), candidate_edges, rel_paths)

    def reachable_from(self, root: str) -> Dict[str, Tuple[ImportEdge, ...]]:
        """BFS closure: reached module -> the edge chain that got there."""
        chains: Dict[str, Tuple[ImportEdge, ...]] = {root: ()}
        queue = [root]
        while queue:
            module = queue.pop(0)
            for edge in self.edges.get(module, ()):
                if edge.imported == module or edge.imported in chains:
                    continue
                chains[edge.imported] = chains[module] + (edge,)
                queue.append(edge.imported)
        return chains
