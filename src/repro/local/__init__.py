"""The LOCAL model: simulator, algorithm protocol, order invariance."""

from repro.local.model import (
    LocalAlgorithm,
    NodeContext,
    SimulationResult,
    run_local_algorithm,
)
from repro.local.iterative import IterativeAlgorithm
from repro.local.order_invariant import (
    check_order_invariance,
    fooled_constant_algorithm,
    smallest_valid_n0,
)
from repro.local.forests import ForestAlgorithm
from repro.local.randomized import (
    LubyMIS,
    RandomizedTrialColoring,
    estimate_local_failure,
)

__all__ = [
    "LocalAlgorithm",
    "NodeContext",
    "SimulationResult",
    "run_local_algorithm",
    "IterativeAlgorithm",
    "check_order_invariance",
    "fooled_constant_algorithm",
    "smallest_valid_n0",
    "ForestAlgorithm",
    "LubyMIS",
    "RandomizedTrialColoring",
    "estimate_local_failure",
]
