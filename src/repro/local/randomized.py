"""Randomized LOCAL algorithms and local-failure estimation (Def. 2.4).

The paper's Theorem 3.4 trades rounds against *local* failure
probability: the chance that a fixed node or edge is incorrectly labeled.
This module makes the notion executable:

* :class:`RandomizedTrialColoring` — the canonical randomized strawman:
  ``k`` rounds of "pick a random color, keep it if no conflicting
  neighbor" — its local failure probability decays geometrically with
  ``k``, while its global failure probability on large graphs stays
  large for small ``k`` (a clean demonstration of why Definition 2.4
  distinguishes the two);
* :func:`estimate_local_failure` — Monte-Carlo estimate of the Def. 2.4
  quantity: the max over nodes/edges of the per-trial failure frequency.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Optional, Sequence

from repro.exceptions import NodeExecutionError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.lcl.checker import check_solution
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.algorithms.mis import IN_SET, OUT, UNDECIDED
from repro.local.iterative import IterativeAlgorithm
from repro.local.model import LocalAlgorithm, run_local_algorithm


class RandomizedTrialColoring(IterativeAlgorithm):
    """k rounds of random-trial (Δ+1)-coloring.

    Each undecided node draws a uniform color from ``{0, …, Δ}`` out of
    its private bits; a node keeps its draw if no neighbor drew or holds
    the same color (ties broken toward the larger identifier, so a
    conflicting pair never both keep).  Undecided nodes after round ``k``
    output the sentinel color ``cX`` — a *local* failure.
    """

    finalize_lookahead = 1

    def __init__(self, max_degree: int, trial_rounds: int, label_prefix: str = "c"):
        self.max_degree = max_degree
        self.trial_rounds = trial_rounds
        self.label_prefix = label_prefix
        self.name = f"random-trial-coloring(k={trial_rounds})"
        # One draw of ceil(log2(Δ+1)) + 2 bits per round, rejection-free
        # via modulo (slight bias is irrelevant for the demonstration).
        self.bits_per_round = max(4, (max_degree + 1).bit_length() + 2)
        self.bits_per_node = self.bits_per_round * trial_rounds

    def rounds(self, n: int) -> int:
        return self.trial_rounds

    def _draw(self, bits: str, round_index: int) -> int:
        chunk = bits[
            round_index * self.bits_per_round : (round_index + 1) * self.bits_per_round
        ]
        return int(chunk, 2) % (self.max_degree + 1)

    def initial_state(self, node_id, degree, inputs, bits, n):
        # (identifier, bits, decided color or None, current draw)
        return (node_id, bits, None, self._draw(bits, 0))

    def step(self, round_index, state, neighbor_states, n):
        node_id, bits, decided, draw = state
        if decided is None:
            conflict = False
            for neighbor in neighbor_states:
                if neighbor is None:
                    continue
                _, _, neighbor_decided, neighbor_draw = neighbor
                if neighbor_decided == draw:
                    conflict = True
                elif (
                    neighbor_decided is None
                    and neighbor_draw == draw
                    and neighbor[0] > node_id
                ):
                    conflict = True
            if not conflict:
                decided = draw
        next_round = round_index + 1
        next_draw = (
            self._draw(bits, next_round) if next_round < self.trial_rounds else draw
        )
        return (node_id, bits, decided, next_draw)

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        decided = state[2]
        label = f"{self.label_prefix}{decided}" if decided is not None else "cX"
        return {port: label for port in range(degree)}


class LubyMIS(IterativeAlgorithm):
    """Luby's randomized MIS, truncated to ``k`` phases.

    Each phase, every undecided node draws a random priority from its
    private bits; strict local maxima join the set and their neighbors
    drop out.  On bounded-degree graphs a constant fraction of undecided
    nodes resolves per phase in expectation, so the *local* failure
    probability (an undecided node remaining after ``k`` phases — it then
    outputs the sentinel ``U``) decays geometrically in ``k``: the
    randomized side of class (B), and a second workload for the
    Definition 2.4 estimators.
    """

    finalize_lookahead = 1
    PRIORITY_BITS = 24

    def __init__(self, phases: int):
        self.phases = phases
        self.name = f"luby-mis(k={phases})"
        self.bits_per_node = self.PRIORITY_BITS * phases

    def rounds(self, n: int) -> int:
        # Each phase: one round to compare priorities + one to observe
        # joins, folded into a single state transition on (join, observe).
        return 2 * self.phases

    def _priority(self, bits: str, phase: int) -> int:
        chunk = bits[phase * self.PRIORITY_BITS : (phase + 1) * self.PRIORITY_BITS]
        return int(chunk, 2)

    def initial_state(self, node_id, degree, inputs, bits, n):
        # (bits, decision, current priority, fresh-joiner flag)
        return (bits, UNDECIDED, self._priority(bits, 0), False)

    def step(self, round_index, state, neighbor_states, n):
        bits, decision, priority, _ = state
        phase, subround = divmod(round_index, 2)
        if decision != UNDECIDED:
            return (bits, decision, priority, False)
        if subround == 0:
            # Join if strictly the largest priority among undecided
            # neighbors (ties keep everyone out this phase — they are
            # broken by fresh bits next phase).
            competitors = [
                s[2]
                for s in neighbor_states
                if s is not None and s[1] == UNDECIDED
            ]
            blocked = any(s is not None and s[1] == IN_SET for s in neighbor_states)
            if not blocked and all(priority > p for p in competitors):
                return (bits, IN_SET, priority, True)
            return (bits, decision, priority, False)
        # Observe: drop out next to a joiner; otherwise redraw priority.
        if any(s is not None and s[1] == IN_SET for s in neighbor_states):
            return (bits, OUT, priority, False)
        next_phase = phase + 1
        next_priority = (
            self._priority(bits, next_phase) if next_phase < self.phases else priority
        )
        return (bits, decision, next_priority, False)

    def finalize(self, state, neighbor_states, degree, inputs, n):
        decision = state[1]
        if degree == 0:
            return {}
        if decision == IN_SET:
            return {port: "M" for port in range(degree)}
        if decision == UNDECIDED:
            return {port: "U" for port in range(degree)}
        outputs = {port: "O" for port in range(degree)}
        for port, neighbor in enumerate(neighbor_states):
            if neighbor is not None and neighbor[1] == IN_SET:
                outputs[port] = "P"
                return outputs
        # All neighbors undecided or out: cannot certify maximality.
        return {port: "U" for port in range(degree)}


def estimate_local_failure(
    problem: NodeEdgeCheckableLCL,
    graph: Graph,
    algorithm: LocalAlgorithm,
    seeds: Sequence[Any],
    inputs: Optional[HalfEdgeLabeling] = None,
    ids: Optional[Sequence[int]] = None,
    strict: bool = True,
) -> Dict[str, float]:
    """Monte-Carlo estimate of the Definition 2.4 failure quantities.

    Returns ``{"local": max per-node/edge failure frequency,
    "global": frequency of any failure at all,
    "crashed": frequency of trials whose simulation crashed}`` over the
    given seeds.

    A trial whose simulation *crashes* (the algorithm raises — surfaced
    by the simulator as a structured
    :class:`~repro.exceptions.NodeExecutionError` naming the node) is
    handled per ``strict``: ``True`` re-raises with the offending seed
    appended (the campaign supervisor quarantines the cell), ``False``
    counts the trial as a failure at the crashing node and keeps
    estimating — a crash is at least as bad as an incorrect label.
    """
    if inputs is None:
        single = next(iter(problem.sigma_in))
        inputs = HalfEdgeLabeling.constant(graph, single)
    node_failures: Counter = Counter()
    edge_failures: Counter = Counter()
    global_failures = 0
    crashed_trials = 0
    for seed in seeds:
        try:
            result = run_local_algorithm(
                graph, algorithm, inputs=inputs, ids=ids, seed=seed
            )
        except NodeExecutionError as error:
            if strict:
                raise NodeExecutionError(
                    f"{error} [trial seed {seed!r}]",
                    node=error.node,
                    algorithm=error.algorithm,
                ) from error
            crashed_trials += 1
            global_failures += 1
            node_failures[error.node] += 1
            continue
        report = check_solution(problem, graph, inputs, result.outputs)
        for v in report.failed_nodes:
            node_failures[v] += 1
        for e in report.failed_edges:
            edge_failures[e] += 1
        if not report.is_valid:
            global_failures += 1
    trials = len(seeds)
    worst = 0
    if node_failures:
        worst = max(worst, max(node_failures.values()))
    if edge_failures:
        worst = max(worst, max(edge_failures.values()))
    return {
        "local": worst / trials,
        "global": global_failures / trials,
        "crashed": crashed_trials / trials,
    }
