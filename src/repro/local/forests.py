"""Lemma 3.3, executable: trees-to-forests algorithm transfer.

An ``o(log* n)``-round algorithm that is only guaranteed on *trees* can
fail on forests because small components are not neighborhoods of any
``n``-node tree.  Lemma 3.3 fixes this: on a forest, each node ``u``
collects its ``(2T(n²)+2)``-hop ball and checks whether some node ``v``
of its component sees the whole component within ``T(n²)+1`` hops;

* if yes, the whole component fits inside ``u``'s ball, so every node of
  the component sees the identical component picture and deterministically
  maps it to a fixed canonical solution (all members agree);
* if no, every node's ``(T(n²)+1)``-ball looks like a ball of some
  ``n²``-node tree, so running the tree algorithm *fooled with parameter
  n²* is correct.

:class:`ForestAlgorithm` implements the wrapper for deterministic inner
algorithms; the canonical small-component solution comes from the
deterministic backtracking solver over the ID-ordered component (which is
exactly "some arbitrary, but fixed, deterministic fashion" in the proof).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import AlgorithmError, UnsolvableError
from repro.graphs.balls import Ball
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.lcl.checker import brute_force_solution
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import LocalAlgorithm, NodeContext


def _component_in_ball(ball: Ball) -> Optional[List[int]]:
    """The center's whole component, if it lies strictly inside the ball.

    Returns local indices, or ``None`` when some member still has
    invisible edges (the component may extend past the horizon).
    """
    seen = {0}
    stack = [0]
    while stack:
        local = stack.pop()
        if len(ball.adj[local]) < ball.degrees[local]:
            return None
        for neighbor, _ in ball.adj[local].values():
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return sorted(seen)


def _canonical_component_solution(
    ball: Ball,
    members: List[int],
    problem: NodeEdgeCheckableLCL,
) -> Dict[Tuple[int, int], Any]:
    """A canonical solution on the component, keyed by (local, port).

    The component is renamed by ID rank (all members compute the same
    renaming), rebuilt with its original port structure, and solved by
    the deterministic backtracking solver; determinism of the solver plus
    canonicity of the renaming make every member's copy identical.
    """
    ranked = sorted(members, key=lambda local: ball.ids[local])
    rank_of = {local: rank for rank, local in enumerate(ranked)}
    ports = [
        [
            (rank_of[ball.adj[local][p][0]], ball.adj[local][p][1])
            for p in range(ball.degrees[local])
        ]
        for local in ranked
    ]
    component = Graph.from_port_map(ports)
    inputs = HalfEdgeLabeling(component)
    # A run without an input labeling means "the LCL without inputs": use
    # the problem's unique input label in place of the missing values.
    default_input = None
    if len(problem.sigma_in) == 1:
        default_input = next(iter(problem.sigma_in))
    for rank, local in enumerate(ranked):
        for port in range(ball.degrees[local]):
            value = ball.inputs[local][port]
            if value is None:
                if default_input is None:
                    raise AlgorithmError(
                        f"{problem.name} has inputs; an input labeling is required"
                    )
                value = default_input
            inputs[(rank, port)] = value
    # The Lemma 3.3 wrapper decides for itself which components are small
    # enough to solve exhaustively, so the generic size guard is waived.
    solution = brute_force_solution(problem, component, inputs, max_nodes=None)
    if solution is None:
        raise UnsolvableError(
            f"{problem.name} has no solution on a {len(members)}-node component"
        )
    return {
        (local, port): solution[(rank_of[local], port)]
        for local in members
        for port in range(ball.degrees[local])
    }


class ForestAlgorithm(LocalAlgorithm):
    """The Lemma 3.3 wrapper: run a trees-only algorithm on forests."""

    def __init__(self, inner: LocalAlgorithm, problem: NodeEdgeCheckableLCL):
        self.inner = inner
        self.problem = problem
        self.name = f"forest[{inner.name}]"
        if inner.bits_per_node:
            raise AlgorithmError(
                "ForestAlgorithm wraps deterministic algorithms; the"
                " randomized variant of Lemma 3.3 is not implemented"
            )

    def _inner_radius(self, n: int) -> int:
        return self.inner.radius(max(1, n * n))

    def radius(self, n: int) -> int:
        return 2 * self._inner_radius(n) + 2

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        if ctx.degree == 0:
            return {}
        t_squared = self._inner_radius(ctx.declared_n)
        ball = ctx.ball(2 * t_squared + 2)
        members = _component_in_ball(ball)
        if members is not None:
            eccentricities = _component_eccentricities(ball, members)
            if min(eccentricities.values()) <= t_squared + 1:
                solution = _canonical_component_solution(ball, members, self.problem)
                return {
                    port: solution[(0, port)] for port in range(ball.center_degree())
                }
        # Large-component case: every (T(n²)+1)-ball here embeds into an
        # n²-node tree, so the fooled tree algorithm is correct.
        fooled = NodeContext(
            ctx.graph,
            ctx.node,
            max(1, ctx.declared_n**2),
            ctx._inputs,
            ctx._ids,
            ctx._bits,
            meter=ctx._meter,
            depth=ctx._depth,
        )
        return self.inner.run(fooled)


def _component_eccentricities(ball: Ball, members: List[int]) -> Dict[int, int]:
    """Hop eccentricity of every member within the (closed) component."""
    from collections import deque

    eccentricities: Dict[int, int] = {}
    member_set = set(members)
    for source in members:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            local = queue.popleft()
            for neighbor, _ in ball.adj[local].values():
                if neighbor in member_set and neighbor not in dist:
                    dist[neighbor] = dist[local] + 1
                    queue.append(neighbor)
        eccentricities[source] = max(dist.values())
    return eccentricities
