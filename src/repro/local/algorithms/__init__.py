"""Classic LOCAL algorithms populating the Figure-1 landscape panels."""

from repro.local.algorithms.linial import LinialColoring
from repro.local.algorithms.cole_vishkin import ColeVishkinColoring
from repro.local.algorithms.mis import ColorClassMIS, GreedyMatchingFromColoring
from repro.local.algorithms.aggregate import ConstantRadiusAggregate, TwoHopMaxDegree
from repro.local.algorithms.peeling import AdaptivePeeling
from repro.local.algorithms.three_coloring import RakeCompressColoring
from repro.local.algorithms.shortcut import ShortcutColeVishkin, skip_list_inputs

__all__ = [
    "LinialColoring",
    "ColeVishkinColoring",
    "ColorClassMIS",
    "GreedyMatchingFromColoring",
    "ConstantRadiusAggregate",
    "TwoHopMaxDegree",
    "AdaptivePeeling",
    "RakeCompressColoring",
    "ShortcutColeVishkin",
    "skip_list_inputs",
]
