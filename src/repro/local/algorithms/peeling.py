"""Adaptive rake-and-compress peeling: the Θ(log n) class on trees.

Class (C)/(D)-style problems on trees are solved via tree decompositions
of logarithmic depth (Miller–Reif rake-and-compress; used by Chang–Pettie
[21] for the Θ(log n) classes).  This module computes each node's *peeling
level*:

* **rake** — remove nodes with at most one remaining neighbor;
* **compress** — remove degree-2 nodes that are local ID minima among
  their degree-2 neighbors (breaking chains by a constant expected factor
  under random identifiers).

The algorithm is *adaptive*: a node requests balls of growing radius until
its own removal time is determined (removal at step ``t`` depends only on
the radius-``t`` ball, simulated pessimistically — boundary nodes are
treated as never removable, so a simulated removal at ``t <= r`` is
definitive).  The measured locality is therefore the node's true peeling
level — Θ(log n) on bounded-degree trees with random IDs, which is the
series the trees panel of Figure 1 plots for class Θ(log n).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.exceptions import AlgorithmError
from repro.graphs.balls import Ball
from repro.local.model import LocalAlgorithm, NodeContext


def _peel_levels(ball: Ball, rounds: int) -> List[Optional[int]]:
    """Simulate peeling inside the ball; boundary nodes never peel."""
    levels: List[Optional[int]] = [None] * ball.num_nodes

    def active_neighbors(v: int) -> List[int]:
        return [
            entry[0]
            for entry in ball.adj[v].values()
            if levels[entry[0]] is None
        ]

    def is_boundary(v: int) -> bool:
        # Nodes whose edges are not all visible cannot be judged.
        return len(ball.adj[v]) < ball.degrees[v]

    for step in range(1, rounds + 1):
        to_remove = []
        for v in range(ball.num_nodes):
            if levels[v] is not None or is_boundary(v):
                continue
            remaining = active_neighbors(v)
            if len(remaining) <= 1:
                to_remove.append(v)  # rake
                continue
            if len(remaining) == 2:
                # compress: local ID minimum among degree-2 chain neighbors
                chain = [
                    u
                    for u in remaining
                    if not is_boundary(u) and len(active_neighbors(u)) == 2
                ]
                my_id = ball.ids[v]
                if my_id is not None and all(
                    ball.ids[u] is None or my_id < ball.ids[u] for u in chain
                ):
                    to_remove.append(v)
        for v in to_remove:
            levels[v] = step
    return levels


class AdaptivePeeling(LocalAlgorithm):
    """Output each node's rake-and-compress level on all its half-edges."""

    name = "adaptive-peeling"

    def __init__(self, radius_cap: Optional[int] = None):
        self.radius_cap = radius_cap

    def radius(self, n: int) -> int:
        # Worst-case declared bound; the adaptive loop typically stops at
        # O(log n), which is what the charge meter records.
        return self.radius_cap if self.radius_cap is not None else max(2, 2 * n)

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        limit = self.radius(ctx.declared_n)
        for radius in range(2, limit + 1, 2):
            ball = ctx.ball(radius)
            levels = _peel_levels(ball, rounds=radius)
            mine = levels[0]
            # One peeling step looks two hops out (a neighbor's remaining
            # degree), so a simulated level t is definitive once 2t <= r.
            if mine is not None and 2 * mine <= radius:
                return {port: mine for port in range(ball.center_degree())}
        raise AlgorithmError(
            f"{self.name}: node {ctx.node} not peeled within radius {limit}; "
            "is the graph a forest?"
        )
