"""Constant-radius aggregate algorithms: the O(1) class.

The paper's running example of a constant-time problem is "find the
maximum degree of a node in your 2-hop neighborhood" (§1).  These
algorithms compute such radius-``r`` aggregates; they populate the O(1)
band of every landscape panel, and their measured locality is constant by
construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.graphs.balls import Ball
from repro.local.model import LocalAlgorithm, NodeContext


class ConstantRadiusAggregate(LocalAlgorithm):
    """Label every half-edge with ``aggregate(ball)`` for a fixed radius."""

    def __init__(
        self,
        radius: int,
        aggregate: Callable[[Ball], Any],
        name: str = "constant-aggregate",
    ):
        self._radius = radius
        self.aggregate = aggregate
        self.name = name

    def radius(self, n: int) -> int:
        return self._radius

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        ball = ctx.ball(self._radius, ids="none")
        value = self.aggregate(ball)
        return {port: value for port in range(ball.center_degree())}


def TwoHopMaxDegree() -> ConstantRadiusAggregate:
    """§1's example O(1) problem: max degree within 2 hops."""
    return ConstantRadiusAggregate(
        radius=2,
        aggregate=lambda ball: max(ball.degrees),
        name="two-hop-max-degree",
    )
