"""Linial's O(log* n) color reduction [36], for arbitrary Δ.

The algorithm repeatedly recolors a properly colored graph with a smaller
palette.  Each round, a node encodes its current color as a low-degree
polynomial over a prime field GF(q) and picks an evaluation point ``x`` on
which its polynomial differs from all neighbors' polynomials (such a point
exists whenever ``q > Δ·d``, because two distinct degree-``d`` polynomials
agree on at most ``d`` points); the pair ``(x, p(x))`` — encoded as the
integer ``x·q + p(x)`` — is the new color.  The palette shrinks roughly as
``k → O(Δ² log²_Δ k)``, hence ``O(log* n)`` rounds from the ID palette to
a constant; a final phase retires one color per round down to ``Δ + 1``.

This is the canonical member of complexity class Θ(log* n) on trees —
the class whose lower boundary Theorem 1.1 pins down.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.local.iterative import IterativeAlgorithm
from repro.utils.numbers import GFPolynomial, next_prime


def reduction_schedule(
    initial_palette: int, max_degree: int
) -> List[Tuple[int, int, int]]:
    """The per-round field parameters: a list of ``(q, d, new_palette)``.

    Each entry uses the smallest polynomial degree ``d`` such that the
    prime ``q = next_prime(Δ·d + 1)`` satisfies ``q^{d+1} >= palette``.
    The schedule ends when a round no longer shrinks the palette.
    """
    degree = max(2, max_degree)
    schedule: List[Tuple[int, int, int]] = []
    palette = initial_palette
    while True:
        d = 1
        while True:
            q = next_prime(degree * d + 1)
            if q ** (d + 1) >= palette:
                break
            d += 1
        new_palette = q * q
        if new_palette >= palette:
            return schedule
        schedule.append((q, d, new_palette))
        palette = new_palette


class LinialColoring(IterativeAlgorithm):
    """(Δ+1)-coloring in O(log* n) + O(Δ² log² Δ) rounds.

    Parameters
    ----------
    max_degree:
        The Δ of the target graph class.
    id_exponent:
        Identifiers are assumed to lie in ``[1, n**id_exponent]`` (the
        polynomial range of Definition 2.1).
    label_prefix:
        Output labels are ``f"{label_prefix}{color}"`` so that results
        check directly against :func:`repro.lcl.catalog.coloring`.
    """

    finalize_lookahead = 0

    def __init__(self, max_degree: int, id_exponent: int = 3, label_prefix: str = "c"):
        self.max_degree = max_degree
        self.id_exponent = id_exponent
        self.label_prefix = label_prefix
        self.name = f"linial-coloring(delta={max_degree})"

    # ------------------------------------------------------------- schedule
    def initial_palette(self, n: int) -> int:
        return max(2, n**self.id_exponent + 1)

    def schedule(self, n: int) -> List[Tuple[int, int, int]]:
        return reduction_schedule(self.initial_palette(n), self.max_degree)

    def final_palette(self, n: int) -> int:
        return self.max_degree + 1

    def _intermediate_palette(self, n: int) -> int:
        schedule = self.schedule(n)
        return schedule[-1][2] if schedule else self.initial_palette(n)

    def color_rounds(self, n: int) -> int:
        reduction = len(self.schedule(n))
        sweep = max(0, self._intermediate_palette(n) - (self.max_degree + 1))
        return reduction + sweep

    def rounds(self, n: int) -> int:
        return self.color_rounds(n)

    # ----------------------------------------------------------- transitions
    def initial_state(self, node_id, degree, inputs, bits, n):
        if node_id is None:
            raise AlgorithmError(f"{self.name} requires unique identifiers")
        if node_id < 1 or node_id > self.initial_palette(n) - 1:
            raise AlgorithmError(
                f"identifier {node_id} outside the assumed range [1, n^{self.id_exponent}]"
            )
        return node_id  # states are plain colors

    def step(self, round_index, state, neighbor_states, n):
        schedule = self.schedule(n)
        if round_index < len(schedule):
            return self._polynomial_step(
                schedule[round_index], state, neighbor_states
            )
        # Color-retirement sweep: rounds beyond the schedule retire the
        # currently highest color, one per round.
        palette = self._intermediate_palette(n)
        retiring = palette - 1 - (round_index - len(schedule))
        if state != retiring:
            return state
        taken = {c for c in neighbor_states if c is not None}
        for candidate in range(self.max_degree + 1):
            if candidate not in taken:
                return candidate
        raise AlgorithmError("no free color in a (Δ+1)-palette; coloring was improper")

    def _polynomial_step(self, parameters, state, neighbor_states):
        q, d, _ = parameters
        mine = GFPolynomial.from_integer(q, state, d)
        others = [
            GFPolynomial.from_integer(q, c, d)
            for c in neighbor_states
            if c is not None
        ]
        for x in range(q):
            value = mine(x)
            if all(value != other(x) for other in others):
                return x * q + value
        raise AlgorithmError(
            "no distinguishing evaluation point; neighbors shared a color"
        )

    def color_of(self, state: Any) -> int:
        return state

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        label = f"{self.label_prefix}{state}"
        return {port: label for port in range(degree)}
