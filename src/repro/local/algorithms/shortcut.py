"""Cole–Vishkin through skip-list shortcuts: the dense region of Fig. 1.

On general constant-degree graphs, [11] constructs LCLs with complexities
strictly between Θ(log log* n) and Θ(log* n): a path problem is embedded
in a graph whose radius-``t`` balls contain radius-``f(t)`` path balls for
an expanding ``f``, so the Θ(log* n) path locality deflates to
``Θ(f⁻¹(log* n))``.

This module instantiates the mechanism on the deterministic skip list of
:func:`repro.graphs.generators.skip_list_graph` (built with its default,
full level set; see DESIGN.md for the degree caveat versus [11]'s
constant-degree gadget): level-``j`` shortcut edges jump ``2^j`` path
positions, so a radius-``r`` ball covers a path window of length
``2^Ω(r)``, and a 3-coloring of the *underlying path* (level-0 edges) —
the Θ(log* n) problem — is computed with measured locality
``Θ(log log* n)``.

Inputs: each half-edge carries ``(level, direction)`` with direction
``+1`` toward higher path positions (see :func:`skip_list_inputs`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.graphs.balls import Ball
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.local.algorithms.cole_vishkin import palette_schedule
from repro.local.model import LocalAlgorithm, NodeContext


def skip_list_inputs(graph: Graph) -> HalfEdgeLabeling:
    """Level/direction input labels for a ``skip_list_graph``.

    Assumes node indices are path positions (as the generator guarantees):
    an edge between ``i`` and ``i + 2^j`` gets level ``j``; the half-edge
    at ``i`` points ``+1``, the one at ``i + 2^j`` points ``-1``.
    """
    labeling = HalfEdgeLabeling(graph)
    for u, pu, v, pv in graph.edges():
        gap = abs(v - u)
        level = gap.bit_length() - 1
        if 1 << level != gap:
            raise AlgorithmError("edge gap is not a power of two; not a skip list")
        forward = +1 if v > u else -1
        labeling[(u, pu)] = (level, forward)
        labeling[(v, pv)] = (level, -forward)
    return labeling


def _path_window(ball: Ball) -> Dict[int, int]:
    """Map path-offset -> local index for all ball nodes.

    Offsets are relative to the center (offset 0), reconstructed by
    following the level/direction labels; consistency of the labels makes
    the offsets well-defined.
    """
    offsets: Dict[int, int] = {0: 0}
    offset_of_local = {0: 0}
    stack = [0]
    while stack:
        local = stack.pop()
        base = offset_of_local[local]
        for port, entry in ball.adj[local].items():
            neighbor_local = entry[0]
            label = ball.inputs[local][port]
            if label is None:
                raise AlgorithmError("shortcut CV requires level/direction inputs")
            level, direction = label
            offset = base + direction * (1 << level)
            if neighbor_local not in offset_of_local:
                offset_of_local[neighbor_local] = offset
                offsets[offset] = neighbor_local
                stack.append(neighbor_local)
    return offsets


class ShortcutColeVishkin(LocalAlgorithm):
    """3-color the level-0 path of a skip-list graph, exponentially faster.

    The node simulates plain Cole–Vishkin on the path window around it
    (length ``t + O(1)`` where ``t`` is the CV round count for the ID
    palette), gathered through shortcut edges with a ball of radius
    ``O(log t) = O(log log* n)``.
    """

    name = "shortcut-cole-vishkin"

    def __init__(
        self,
        id_exponent: int = 3,
        label_prefix: str = "c",
        cv_rounds_override: Optional[int] = None,
    ):
        """``cv_rounds_override`` simulates a larger log* regime.

        Real log* values never exceed ~7 at physical scales, which makes
        the Θ(log log* n)-vs-Θ(log* n) separation invisible in absolute
        numbers; overriding the CV round count (the benchmark does this)
        exposes the ``t → O(log t)`` locality deflation directly, which is
        the paper's ``f⁻¹`` mechanism.  Extra CV rounds beyond the palette
        fixpoint are harmless (6-color CV is a fixpoint of the update).
        """
        self.id_exponent = id_exponent
        self.label_prefix = label_prefix
        self.cv_rounds_override = cv_rounds_override

    def _cv_rounds(self, n: int) -> int:
        needed = len(palette_schedule(max(2, n**self.id_exponent + 1)))
        if self.cv_rounds_override is not None:
            # Never run fewer rounds than the palette requires; extra
            # rounds keep the 6-color fixpoint and only affect locality.
            return max(self.cv_rounds_override, needed)
        return needed

    def _window_length(self, n: int) -> int:
        return self._cv_rounds(n) + 4

    def radius(self, n: int) -> int:
        # Reaching path offset k through the skip list takes at most
        # ~2·log2(k) + 3 hops (climb to alignment, jump, descend).
        window = self._window_length(n)
        return 2 * max(1, math.ceil(math.log2(window + 4))) + 3

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        n = ctx.declared_n
        rounds = self._cv_rounds(n)
        ball = ctx.ball(self.radius(n))
        offsets = _path_window(ball)

        memo: Dict[Tuple[int, int], Optional[int]] = {}

        def color_at(offset: int, t: int) -> Optional[int]:
            """CV color after t iterations at the given path offset.

            ``None`` encodes "no such path position" — missing offsets
            inside the ball's guaranteed coverage window can only be path
            ends, for which CV's no-successor rule applies.
            """
            key = (offset, t)
            if key in memo:
                return memo[key]
            local = offsets.get(offset)
            if local is None:
                memo[key] = None
            elif t == 0:
                memo[key] = ball.ids[local]
            else:
                mine = color_at(offset, t - 1)
                if mine is None:
                    memo[key] = None
                else:
                    memo[key] = self._cv_step(mine, color_at(offset + 1, t - 1))
            return memo[key]

        # Final 6-coloring on offsets -3 .. +3, then three greedy
        # retirement rounds (5, 4, 3) simulated on the window interior.
        current = {k: color_at(k, rounds) for k in range(-3, 4)}
        for retiring in (5, 4, 3):
            updated = dict(current)
            for k in range(-2, 3):
                color = current.get(k)
                if color != retiring:
                    continue
                taken = {current.get(k - 1), current.get(k + 1)}
                for candidate in range(3):
                    if candidate not in taken:
                        updated[k] = candidate
                        break
            current = updated
        mine = current[0]
        if mine is None or mine > 5:
            raise AlgorithmError("shortcut CV failed to color the center")
        return {
            port: f"{self.label_prefix}{mine}" for port in range(ball.center_degree())
        }

    @staticmethod
    def _cv_step(color: int, successor_color: Optional[int]) -> int:
        if successor_color is None:
            return color & 1
        differing = color ^ successor_color
        if differing == 0:
            raise AlgorithmError("equal colors across a path edge")
        index = (differing & -differing).bit_length() - 1
        return 2 * index + ((color >> index) & 1)
