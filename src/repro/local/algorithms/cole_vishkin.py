"""Cole–Vishkin 3-coloring of consistently oriented paths and cycles [23].

The classic "deterministic coin tossing" bit trick: given a proper
coloring (initially the identifiers), every node compares its color with
its *successor*'s color, finds the lowest bit index ``i`` on which they
differ, and recolors itself ``2·i + bit_i(color)``.  One round shrinks a
``K``-color palette to ``2·⌈log₂ K⌉`` colors, so ``O(log* n)`` rounds
reach the 6-color fixed point; three final rounds retire colors 5, 4, 3
greedily (both neighbors' colors are visible and only two can clash).

The orientation is consumed from *input labels*: each half-edge is marked
``"s"`` (this edge leads to my successor) or ``"p"``; every node has at
most one ``"s"`` port.  On oriented grids this structure is free (§5); on
plain paths/cycles it must be provided as input, which is exactly how the
paper's grid argument sidesteps the impossibility of constant-time
orientation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.local.iterative import IterativeAlgorithm

#: Input label marking the successor port.
SUCCESSOR = "s"
#: Input label marking a predecessor (or unoriented) port.
PREDECESSOR = "p"


def orient_path_inputs(graph: Graph) -> HalfEdgeLabeling:
    """Orientation inputs for a path/cycle given in index order.

    Node ``i``'s successor is node ``i + 1`` (wrapping on cycles); raises
    if the graph is not a disjoint union of paths and cycles.
    """
    labeling = HalfEdgeLabeling(graph)
    for v in range(graph.num_nodes):
        if graph.degree(v) > 2:
            raise AlgorithmError("orient_path_inputs expects max degree 2")
        for port in range(graph.degree(v)):
            u = graph.neighbor(v, port)
            successor = u == v + 1 or (u == 0 and v == graph.num_nodes - 1 and graph.degree(v) == 2)
            labeling[(v, port)] = SUCCESSOR if successor else PREDECESSOR
    return labeling


def palette_schedule(initial_palette: int) -> List[int]:
    """Palette sizes after each Cole–Vishkin round, down to the 6 fixpoint."""
    palettes: List[int] = []
    palette = initial_palette
    while palette > 6:
        palette = 2 * max(1, (palette - 1).bit_length())
        palettes.append(palette)
    return palettes


class ColeVishkinColoring(IterativeAlgorithm):
    """3-coloring of oriented paths/cycles in O(log* n) rounds."""

    finalize_lookahead = 0

    def __init__(self, id_exponent: int = 3, label_prefix: str = "c"):
        self.id_exponent = id_exponent
        self.label_prefix = label_prefix
        self.name = "cole-vishkin-3-coloring"

    def initial_palette(self, n: int) -> int:
        return max(2, n**self.id_exponent + 1)

    def color_rounds(self, n: int) -> int:
        return len(palette_schedule(self.initial_palette(n))) + 3

    def rounds(self, n: int) -> int:
        return self.color_rounds(n)

    def final_palette(self, n: int) -> int:
        return 3

    # ----------------------------------------------------------- transitions
    def initial_state(self, node_id, degree, inputs, bits, n):
        if node_id is None:
            raise AlgorithmError(f"{self.name} requires unique identifiers")
        if degree > 2:
            raise AlgorithmError(f"{self.name} runs on paths/cycles only")
        successor_port: Optional[int] = None
        for port, label in enumerate(inputs):
            if label == SUCCESSOR:
                if successor_port is not None:
                    raise AlgorithmError("two successor ports at one node")
                successor_port = port
        return (node_id, successor_port)

    def step(self, round_index, state, neighbor_states, n):
        color, successor_port = state
        cv_rounds = len(palette_schedule(self.initial_palette(n)))
        if round_index < cv_rounds:
            successor_color = None
            if successor_port is not None and neighbor_states[successor_port] is not None:
                successor_color = neighbor_states[successor_port][0]
            return (self._cv_step(color, successor_color), successor_port)
        # Three retirement rounds: colors 5, then 4, then 3.
        retiring = 5 - (round_index - cv_rounds)
        if color != retiring:
            return state
        taken = {s[0] for s in neighbor_states if s is not None}
        for candidate in range(3):
            if candidate not in taken:
                return (candidate, successor_port)
        raise AlgorithmError("both of {0,1,2} taken by <= 2 neighbors?")

    @staticmethod
    def _cv_step(color: int, successor_color: Optional[int]) -> int:
        if successor_color is None:
            # No successor (path end): pretend the successor differs at bit 0.
            return 2 * 0 + (color & 1)
        differing = color ^ successor_color
        if differing == 0:
            raise AlgorithmError("equal colors across an edge; coloring was improper")
        index = (differing & -differing).bit_length() - 1
        return 2 * index + ((color >> index) & 1)

    def color_of(self, state: Any) -> int:
        return state[0]

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        label = f"{self.label_prefix}{state[0]}"
        return {port: label for port in range(degree)}
