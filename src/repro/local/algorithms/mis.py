"""Symmetry breaking from coloring: MIS and maximal matching sweeps.

Both are classic O(log* n)-class problems on trees (class (B) of §1.1):
run an O(log* n) coloring, then sweep the color classes — each class is an
independent set, so all its undecided members can act simultaneously.
The sweeps add only O(palette · Δ) = O(1) rounds.

The algorithms embed any coloring that follows the
``color_rounds / final_palette / color_of / initial_state / step``
protocol of :class:`~repro.local.algorithms.linial.LinialColoring` and
:class:`~repro.local.algorithms.cole_vishkin.ColeVishkinColoring`, and
emit outputs in the pointer encodings of :func:`repro.lcl.catalog.mis` and
:func:`repro.lcl.catalog.maximal_matching`, so solutions check directly
against the catalog problems.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.local.iterative import IterativeAlgorithm

UNDECIDED = "undecided"
IN_SET = "in"
OUT = "out"


class ColorClassMIS(IterativeAlgorithm):
    """Maximal independent set by color-class sweep.

    State: ``(coloring state, decision)``.  During the coloring rounds the
    inner algorithm runs unchanged; then, in sweep round ``c``, undecided
    nodes of color ``c`` join the set unless a neighbor already joined,
    and nodes adjacent to a joiner drop out.
    """

    finalize_lookahead = 1

    def __init__(self, coloring):
        self.coloring = coloring
        self.name = f"mis-from[{coloring.name}]"

    def rounds(self, n: int) -> int:
        return self.coloring.color_rounds(n) + self.coloring.final_palette(n)

    def initial_state(self, node_id, degree, inputs, bits, n):
        return (self.coloring.initial_state(node_id, degree, inputs, bits, n), UNDECIDED)

    def step(self, round_index, state, neighbor_states, n):
        color_state, decision = state
        color_rounds = self.coloring.color_rounds(n)
        if round_index < color_rounds:
            inner_neighbors = tuple(
                None if s is None else s[0] for s in neighbor_states
            )
            return (
                self.coloring.step(round_index, color_state, inner_neighbors, n),
                decision,
            )
        sweeping_color = round_index - color_rounds
        if decision != UNDECIDED:
            return state
        neighbor_decisions = {s[1] for s in neighbor_states if s is not None}
        if IN_SET in neighbor_decisions:
            return (color_state, OUT)
        if self.coloring.color_of(color_state) == sweeping_color:
            return (color_state, IN_SET)
        return state

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        decision = state[1]
        if degree == 0:
            return {}
        if decision == IN_SET:
            return {port: "M" for port in range(degree)}
        if decision != OUT:
            raise AlgorithmError("sweep ended with an undecided node")
        outputs = {port: "O" for port in range(degree)}
        for port, neighbor in enumerate(neighbor_states):
            if neighbor is not None and neighbor[1] == IN_SET:
                outputs[port] = "P"
                return outputs
        raise AlgorithmError("out-node with no in-neighbor; MIS not maximal")


@dataclass(frozen=True)
class _MatchState:
    color_state: Any
    my_id: int
    matched_port: Optional[int] = None
    #: (my port, target id) while a proposal is pending.
    proposal: Optional[Tuple[int, int]] = None
    #: (my port, proposer id) after accepting a proposal.
    accepted: Optional[Tuple[int, int]] = None


class GreedyMatchingFromColoring(IterativeAlgorithm):
    """Maximal matching by repeated color-class sweeps.

    Each color round runs a three-step handshake:

    1. *propose* — every unmatched node of the sweeping color proposes to
       its lowest-numbered port whose neighbor is unmatched, recording the
       target's ID (so a proposal is unambiguous to everyone who sees it);
    2. *accept* — every unmatched node that received proposals accepts the
       one with the smallest proposer ID;
    3. *resolve* — proposer and target mark the edge matched iff the
       acceptance names the proposer; pending fields are cleared.

    A rejected proposer's target got matched, so a node is rejected at
    most ``Δ`` times before it is matched or has no unmatched neighbor
    left; the whole palette sweep is therefore repeated ``Δ`` times, which
    guarantees maximality (``P`` nodes have only matched neighbors).
    """

    finalize_lookahead = 1

    def __init__(self, coloring, max_degree: int):
        self.coloring = coloring
        self.max_degree = max_degree
        self.name = f"matching-from[{coloring.name}]"

    def rounds(self, n: int) -> int:
        sweep = 3 * self.coloring.final_palette(n) * self.max_degree
        return self.coloring.color_rounds(n) + sweep

    def initial_state(self, node_id, degree, inputs, bits, n):
        if node_id is None:
            raise AlgorithmError(f"{self.name} requires unique identifiers")
        return _MatchState(
            color_state=self.coloring.initial_state(node_id, degree, inputs, bits, n),
            my_id=node_id,
        )

    def step(self, round_index, state, neighbor_states, n):
        color_rounds = self.coloring.color_rounds(n)
        if round_index < color_rounds:
            inner_neighbors = tuple(
                None if s is None else s.color_state for s in neighbor_states
            )
            return replace(
                state,
                color_state=self.coloring.step(
                    round_index, state.color_state, inner_neighbors, n
                ),
            )
        phase = round_index - color_rounds
        color_and_sub, subphase = divmod(phase, 3)
        sweeping_color = color_and_sub % self.coloring.final_palette(n)
        if subphase == 0:
            return self._propose(state, neighbor_states, sweeping_color)
        if subphase == 1:
            return self._accept(state, neighbor_states)
        return self._resolve(state, neighbor_states)

    def _propose(self, state, neighbor_states, sweeping_color):
        if state.matched_port is not None:
            return state
        if self.coloring.color_of(state.color_state) != sweeping_color:
            return state
        for port, neighbor in enumerate(neighbor_states):
            if neighbor is not None and neighbor.matched_port is None:
                return replace(state, proposal=(port, neighbor.my_id))
        return state

    def _accept(self, state, neighbor_states):
        if state.matched_port is not None or state.proposal is not None:
            return state
        best: Optional[Tuple[int, int]] = None  # (proposer id, port)
        for port, neighbor in enumerate(neighbor_states):
            if neighbor is None or neighbor.proposal is None:
                continue
            if neighbor.proposal[1] != state.my_id:
                continue
            if best is None or neighbor.my_id < best[0]:
                best = (neighbor.my_id, port)
        if best is None:
            return state
        return replace(state, accepted=(best[1], best[0]))

    def _resolve(self, state, neighbor_states):
        if state.accepted is not None:
            port, _proposer = state.accepted
            return replace(state, matched_port=port, proposal=None, accepted=None)
        if state.proposal is not None:
            port, _target = state.proposal
            target = neighbor_states[port]
            if (
                target is not None
                and target.accepted is not None
                and target.accepted[1] == state.my_id
            ):
                return replace(state, matched_port=port, proposal=None, accepted=None)
            return replace(state, proposal=None, accepted=None)
        return state

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        if degree == 0:
            return {}
        if state.matched_port is not None:
            outputs = {port: "O" for port in range(degree)}
            outputs[state.matched_port] = "M"
            return outputs
        for neighbor in neighbor_states:
            if neighbor is not None and neighbor.matched_port is None:
                raise AlgorithmError(
                    "two adjacent unmatched nodes remain; matching not maximal"
                )
        return {port: "P" for port in range(degree)}
