"""3-coloring unrooted trees in Θ(log n): the class-(C) witness.

Proper 3-coloring of (unrooted, bounded-degree) trees cannot be done in
O(log* n) — it sits in the paper's class with deterministic complexity
Θ(log n) — and the classical algorithm achieving the upper bound is
rake-and-compress [Miller–Reif; used by Chang–Pettie [21] for the
Θ(log n) classes]:

1. **peel** the tree: repeatedly remove nodes with at most one remaining
   neighbor (*rake*) and degree-2 chain nodes that are local ID minima
   (*compress*); every node records its *anchors* — the at most two
   neighbors still present when it was removed;
2. **color back**: in reverse removal order, give every node the smallest
   color not used by its anchors.  Every tree edge is an anchor edge of
   its earlier-removed endpoint, so the coloring is proper, and at most
   two anchors means three colors suffice.

With random identifiers the peeling terminates in O(log n) levels, and a
node's color depends only on the anchor chain above it, so the adaptive
implementation below exhibits measured locality Θ(log n) — an *actual
LCL* of the Θ(log n) class whose output the Definition 2.4 checker
validates, not just a depth statistic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import AlgorithmError
from repro.graphs.balls import Ball
from repro.local.model import LocalAlgorithm, NodeContext


def _peel_with_anchors(
    ball: Ball, rounds: int
) -> Tuple[List[Optional[int]], List[Tuple[int, ...]]]:
    """Simulate peeling inside the ball; returns (levels, anchors).

    Boundary nodes (whose edges are not all visible) never peel, which is
    the pessimistic truncation that makes locally certified levels exact
    (see :mod:`repro.local.algorithms.peeling`).
    """
    levels: List[Optional[int]] = [None] * ball.num_nodes
    anchors: List[Tuple[int, ...]] = [()] * ball.num_nodes

    def is_boundary(v: int) -> bool:
        return len(ball.adj[v]) < ball.degrees[v]

    def active_neighbors(v: int) -> List[int]:
        return [
            entry[0] for entry in ball.adj[v].values() if levels[entry[0]] is None
        ]

    for step in range(1, rounds + 1):
        candidates: Dict[int, Tuple[int, ...]] = {}
        for v in range(ball.num_nodes):
            if levels[v] is not None or is_boundary(v):
                continue
            remaining = active_neighbors(v)
            if len(remaining) <= 1:
                candidates[v] = tuple(remaining)
                continue
            if len(remaining) == 2:
                chain = [
                    u
                    for u in remaining
                    if not is_boundary(u) and len(active_neighbors(u)) == 2
                ]
                my_id = ball.ids[v]
                if my_id is not None and all(
                    ball.ids[u] is None or my_id < ball.ids[u] for u in chain
                ):
                    candidates[v] = tuple(remaining)
        # Anchors must *survive* the step (the coloring pass needs the
        # anchor order to strictly climb levels): a candidate is removed
        # only if it is the ID-minimum among its candidate neighbors.
        for v, anchor_set in candidates.items():
            my_id = ball.ids[v]
            blocked = any(
                u in candidates
                and ball.ids[u] is not None
                and my_id is not None
                and ball.ids[u] < my_id
                for u in anchor_set
            )
            if not blocked:
                levels[v] = step
                anchors[v] = anchor_set
    return levels, anchors


class RakeCompressColoring(LocalAlgorithm):
    """Adaptive rake-and-compress 3-coloring of trees/forests.

    Requires identifiers (for compress tie-breaking and as the source of
    determinism); outputs ``c0``/``c1``/``c2`` node colors compatible with
    :func:`repro.lcl.catalog.coloring`.
    """

    name = "rake-compress-3-coloring"

    def __init__(self, label_prefix: str = "c", radius_cap: Optional[int] = None):
        self.label_prefix = label_prefix
        self.radius_cap = radius_cap

    def radius(self, n: int) -> int:
        return self.radius_cap if self.radius_cap is not None else max(2, 4 * n)

    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        limit = self.radius(ctx.declared_n)
        radius = 2
        while radius <= limit:
            ball = ctx.ball(radius)
            color = self._try_color(ball, radius)
            if color is not None:
                label = f"{self.label_prefix}{color}"
                return {port: label for port in range(ball.center_degree())}
            # Grow by ~30% rather than doubling: the charge meter records
            # the final radius, and finer growth keeps the measured
            # locality series smooth enough for growth-shape fitting.
            if radius >= limit:
                break
            radius = min(radius + max(1, radius // 3), limit)
        raise AlgorithmError(
            f"{self.name}: node {ctx.node} could not resolve its color within "
            f"radius {limit}; is the graph a forest with unique IDs?"
        )

    def _try_color(self, ball: Ball, radius: int) -> Optional[int]:
        levels, anchors = _peel_with_anchors(ball, rounds=radius)

        def certified(v: int) -> bool:
            # One peel step looks three hops out (a neighbor's compress
            # candidacy involves *its* chain neighbors' degrees), so level
            # t at distance d from the center is exact once d + 3t <= r.
            level = levels[v]
            return level is not None and ball.distance[v] + 3 * level <= radius

        memo: Dict[int, Optional[int]] = {}

        def color_of(v: int) -> Optional[int]:
            if v in memo:
                return memo[v]
            if not certified(v):
                memo[v] = None
                return None
            memo[v] = -1  # cycle guard; anchor chains strictly climb levels
            anchor_colors = []
            for anchor in anchors[v]:
                anchor_color = color_of(anchor)
                if anchor_color is None:
                    memo[v] = None
                    return None
                anchor_colors.append(anchor_color)
            for candidate in range(3):
                if candidate not in anchor_colors:
                    memo[v] = candidate
                    return candidate
            raise AlgorithmError("more than two anchor colors; peeling broken")

        return color_of(0)
