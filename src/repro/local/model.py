"""The LOCAL model of Definition 2.1, as an executable simulator.

A ``T``-round algorithm is a function from the (labeled) radius-``T`` ball
of a node to the outputs on that node's half-edges.  The simulator hands
each node a :class:`NodeContext` through which it may

* read its own degree, input labels, identifier and random bits, and
* extract :class:`~repro.graphs.balls.Ball` views around itself, and —
  via :meth:`NodeContext.delegate` — around nodes it has already seen
  (which is how the Lemma 3.9 lifting simulates an inner algorithm at the
  neighbors of a node).

Every ball request is *charged*: requesting a radius-``r`` ball around a
node at delegation depth ``d`` charges ``d + r`` rounds.  After the run
the simulator compares the maximum charge against the radius the algorithm
declared, so a buggy algorithm cannot silently read further than its
stated round complexity — the locality measurements in the benchmarks are
exactly these charges.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import (
    AlgorithmError,
    NodeExecutionError,
    ReproError,
    SimulationError,
)
from repro.graphs.balls import Ball, extract_ball
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.utils.rng import SplittableRNG


class _ChargeMeter:
    """Shared accumulator for the locality actually used at one node."""

    __slots__ = ("max_charge",)

    def __init__(self) -> None:
        self.max_charge = 0

    def charge(self, amount: int) -> None:
        if amount > self.max_charge:
            self.max_charge = amount


class NodeContext:
    """Everything a node may consult while computing its output."""

    def __init__(
        self,
        graph: Graph,
        node: int,
        declared_n: int,
        inputs: Optional[HalfEdgeLabeling],
        ids: Optional[List[int]],
        bits: Optional[List[str]],
        meter: Optional[_ChargeMeter] = None,
        depth: int = 0,
    ):
        self.graph = graph
        self.node = node
        self.declared_n = declared_n
        self._inputs = inputs
        self._ids = ids
        self._bits = bits
        self._meter = meter if meter is not None else _ChargeMeter()
        self._depth = depth

    # ----------------------------------------------------------- local info
    # Reading any local datum of a delegated context is knowledge about a
    # node `depth` hops away, so it charges `depth` (0 at the root).
    @property
    def degree(self) -> int:
        self._meter.charge(self._depth)
        return self.graph.degree(self.node)

    def input(self, port: int) -> Any:
        self._meter.charge(self._depth)
        if self._inputs is None:
            return None
        return self._inputs.get((self.node, port))

    def input_tuple(self) -> tuple:
        return tuple(self.input(p) for p in range(self.degree))

    @property
    def my_id(self) -> Optional[int]:
        self._meter.charge(self._depth)
        return None if self._ids is None else self._ids[self.node]

    @property
    def my_bits(self) -> Optional[str]:
        self._meter.charge(self._depth)
        return None if self._bits is None else self._bits[self.node]

    # ----------------------------------------------------------- wider info
    def ball(self, radius: int, ids: str = "exact") -> Ball:
        """The radius-``radius`` ball around this context's node.

        ``ids`` is forwarded to :meth:`Ball.signature`-compatible modes:
        ``"exact"`` exposes raw identifiers, ``"none"`` hides them (the
        extraction simply omits them; ``"rank"`` consumers should extract
        with ``"exact"`` and use :meth:`Ball.id_rank`).
        """
        if radius < 0:
            raise SimulationError("ball radius must be non-negative")
        self._meter.charge(self._depth + radius)
        return extract_ball(
            self.graph,
            self.node,
            radius,
            input_labeling=self._inputs,
            ids=None if ids == "none" else self._ids,
            bits=self._bits,
        )

    def delegate(self, port: int) -> "NodeContext":
        """A context centered at the neighbor across ``port``.

        Ball charges from the delegated context include the hop taken to
        reach it, so simulating an inner ``T``-round algorithm at a
        neighbor costs ``T + 1`` rounds — exactly the accounting of
        Lemma 3.9.
        """
        neighbor = self.graph.neighbor(self.node, port)
        return NodeContext(
            self.graph,
            neighbor,
            self.declared_n,
            self._inputs,
            self._ids,
            self._bits,
            meter=self._meter,
            depth=self._depth + 1,
        )

    @property
    def charged_radius(self) -> int:
        return self._meter.max_charge


class LocalAlgorithm(abc.ABC):
    """A LOCAL algorithm: declared radius plus per-node output function."""

    name: str = "local-algorithm"
    #: Number of private random bits per node (0 for deterministic).
    bits_per_node: int = 0

    @abc.abstractmethod
    def radius(self, n: int) -> int:
        """Declared round complexity on ``n``-node graphs."""

    @abc.abstractmethod
    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        """Compute the node's output labels, keyed by port."""


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    outputs: HalfEdgeLabeling
    #: Maximum ball charge over all nodes — the locality actually used.
    max_radius_used: int
    #: Radius the algorithm declared for this ``n``.
    declared_radius: int
    #: Per-node charges (index = node).
    radius_per_node: List[int]

    @property
    def within_declared_radius(self) -> bool:
        return self.max_radius_used <= self.declared_radius


def run_local_algorithm(
    graph: Graph,
    algorithm: LocalAlgorithm,
    inputs: Optional[HalfEdgeLabeling] = None,
    ids: Optional[Sequence[int]] = None,
    seed: Any = None,
    declared_n: Optional[int] = None,
    enforce_radius: bool = True,
    nodes: Optional[Sequence[int]] = None,
    bits: Optional[Sequence[str]] = None,
) -> SimulationResult:
    """Run ``algorithm`` at every node of ``graph``.

    ``declared_n`` overrides the node-count parameter handed to the
    algorithm (the "fooling" used by Theorem 2.11 / Proposition 5.5);
    by default it is the true number of nodes.  ``seed`` activates random
    bit strings (``algorithm.bits_per_node`` bits per node, derived
    independently per node as Definition 2.1 requires).  ``bits`` instead
    *replays* an explicit per-node bit-string assignment — recorded from
    an earlier run — making a randomized execution exactly reproducible;
    it is mutually exclusive with ``seed``.  ``nodes`` restricts execution
    to a sample of nodes (outputs are then partial); the locality
    benchmarks use this to measure large instances without simulating
    every node.
    """
    n = graph.num_nodes if declared_n is None else declared_n
    id_list = list(ids) if ids is not None else None
    if id_list is not None and len(set(id_list)) != graph.num_nodes:
        raise SimulationError("identifiers must be distinct, one per node")
    if bits is not None and seed is not None:
        raise SimulationError("pass either seed or bits, not both")
    bit_list: Optional[List[str]] = list(bits) if bits is not None else None
    if bit_list is not None:
        if len(bit_list) != graph.num_nodes:
            raise SimulationError("bits must provide one string per node")
        if any(len(b) < algorithm.bits_per_node for b in bit_list):
            raise SimulationError(
                f"{algorithm.name} needs {algorithm.bits_per_node} bit(s) per node"
            )
    elif algorithm.bits_per_node > 0:
        if seed is None:
            raise SimulationError(
                f"{algorithm.name} is randomized; a seed is required"
            )
        root = SplittableRNG(seed)
        bit_list = [
            root.child("node-bits", v).bits(algorithm.bits_per_node)
            for v in range(graph.num_nodes)
        ]

    declared_radius = algorithm.radius(n)
    outputs = HalfEdgeLabeling(graph)
    radius_per_node: List[int] = []
    targets = range(graph.num_nodes) if nodes is None else nodes
    for v in targets:
        ctx = NodeContext(graph, v, n, inputs, id_list, bit_list)
        try:
            port_outputs = algorithm.run(ctx)
        except ReproError:
            raise
        except Exception as error:
            # Structured failure surfacing: a campaign supervisor (or any
            # caller) sees *which node* of *which algorithm* crashed, with
            # the original exception chained, instead of an anonymous
            # low-level error escaping the simulator.
            raise NodeExecutionError(
                f"{algorithm.name} crashed at node {v} "
                f"(radius charged so far: {ctx.charged_radius}): "
                f"{type(error).__name__}: {error}",
                node=v,
                algorithm=algorithm.name,
            ) from error
        radius_per_node.append(ctx.charged_radius)
        if enforce_radius and ctx.charged_radius > declared_radius:
            raise AlgorithmError(
                f"{algorithm.name} used radius {ctx.charged_radius} at node {v} "
                f"but declared {declared_radius} for n={n}"
            )
        if set(port_outputs) != set(range(graph.degree(v))):
            raise AlgorithmError(
                f"{algorithm.name} must label exactly the ports of node {v} "
                f"(got {sorted(port_outputs)}, expected 0..{graph.degree(v) - 1})"
            )
        for port, label in sorted(port_outputs.items()):
            outputs[(v, port)] = label

    return SimulationResult(
        outputs=outputs,
        max_radius_used=max(radius_per_node, default=0),
        declared_radius=declared_radius,
        radius_per_node=radius_per_node,
    )
