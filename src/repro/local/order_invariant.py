"""Order-invariant LOCAL algorithms and the Theorem 2.11 speedup.

Definition 2.7: an algorithm is order-invariant if its output at a node is
unchanged under any identifier reassignment that preserves the relative
order of the identifiers in the ball it examined.  The paper uses Ramsey
theory to show every ``o(log* n)``-round algorithm *can be made*
order-invariant (Theorem 4.1 / Prop. 5.4); the Ramsey bounds are purely
existential, so the executable counterparts here are

* :func:`check_order_invariance` — empirically verify invariance by
  rerunning an algorithm under order-preserving (and, as a control,
  order-breaking) ID reassignments, and
* :func:`fooled_constant_algorithm` — the *constructive* half of
  Theorem 2.11: run an order-invariant algorithm with the node-count
  parameter pinned to a fixed ``n₀``, obtaining an O(1)-round algorithm;
  :func:`smallest_valid_n0` computes the paper's feasibility condition
  ``Δ^{r+1} · (T(n₀)+1) <= n₀/Δ``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from repro.exceptions import SimulationError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.local.model import LocalAlgorithm, NodeContext, run_local_algorithm


def _order_preserving_reassignment(
    ids: Sequence[int], rng: random.Random, universe_factor: int = 10
) -> List[int]:
    """New distinct IDs with exactly the same relative order."""
    n = len(ids)
    fresh = sorted(rng.sample(range(1, universe_factor * max(n, max(ids, default=1)) + 1), n))
    ranking = sorted(range(n), key=lambda v: ids[v])
    reassigned = [0] * n
    for rank, v in enumerate(ranking):
        reassigned[v] = fresh[rank]
    return reassigned


def check_order_invariance(
    algorithm: LocalAlgorithm,
    graph: Graph,
    ids: Sequence[int],
    inputs: Optional[HalfEdgeLabeling] = None,
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Do order-preserving ID reassignments leave all outputs unchanged?

    This is a sound *refuter* (a single differing output proves the
    algorithm is not order-invariant) and an empirical *confirmer*; true
    confirmation over all ID assignments is exactly what Definition 2.7
    quantifies over and is checked exhaustively in the test suite on small
    instances via ball-signature enumeration.
    """
    baseline = run_local_algorithm(graph, algorithm, inputs=inputs, ids=list(ids))
    rng = random.Random(seed)
    for _ in range(trials):
        reassigned = _order_preserving_reassignment(ids, rng)
        result = run_local_algorithm(graph, algorithm, inputs=inputs, ids=reassigned)
        for half_edge, label in baseline.outputs.items():
            if result.outputs.get(half_edge) != label:
                return False
    return True


def smallest_valid_n0(
    radius_of_n: Callable[[int], int],
    max_degree: int,
    checking_radius: int,
    upper_limit: int = 10**7,
) -> int:
    """The smallest ``n₀`` with ``Δ^{r+1} · (T(n₀)+1) <= n₀ / Δ``.

    This is the feasibility condition in the proof of Theorem 2.11 (with
    probes ``T(n₀)+1`` read as ball sizes in the LOCAL case).  Raises if no
    ``n₀ <= upper_limit`` works, which signals that ``T`` is not actually
    ``o(log n)`` at reachable scales.
    """
    degree = max(2, max_degree)
    for n0 in range(2, upper_limit + 1):
        if degree ** (checking_radius + 1) * (radius_of_n(n0) + 1) <= n0 / degree:
            return n0
    raise SimulationError("no feasible n0 found; is the algorithm really o(log n)?")


class _FooledAlgorithm(LocalAlgorithm):
    """Run the inner algorithm as if the graph had ``min(n, n0)`` nodes."""

    def __init__(self, inner: LocalAlgorithm, n0: int):
        self.inner = inner
        self.n0 = n0
        self.name = f"fooled[{inner.name}, n0={n0}]"
        self.bits_per_node = inner.bits_per_node

    def radius(self, n: int) -> int:
        return self.inner.radius(min(n, self.n0))

    def run(self, ctx: NodeContext) -> dict:
        fooled = NodeContext(
            ctx.graph,
            ctx.node,
            min(ctx.declared_n, self.n0),
            ctx._inputs,
            ctx._ids,
            ctx._bits,
            meter=ctx._meter,
            depth=ctx._depth,
        )
        return self.inner.run(fooled)


def fooled_constant_algorithm(inner: LocalAlgorithm, n0: int) -> LocalAlgorithm:
    """The Theorem 2.11 construction: pin the node-count parameter to n₀.

    For an *order-invariant* inner algorithm satisfying the
    :func:`smallest_valid_n0` condition, the result is correct on all
    ``n >= n₀`` with constant radius ``T(n₀)``; correctness is exactly what
    the theorem proves and what the integration tests verify on concrete
    problems.
    """
    return _FooledAlgorithm(inner, n0)
