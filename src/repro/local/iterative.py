"""Round-by-round algorithms on top of the ball-based LOCAL simulator.

Classic symmetry-breaking algorithms (Linial, Cole–Vishkin, color-class
sweeps) are naturally stated as synchronous message-passing: every node
holds a state and updates it each round from its neighbors' states.  A
``T``-round message-passing algorithm is exactly a function of the
radius-``T`` ball (Definition 2.1), and :class:`IterativeAlgorithm` makes
that equivalence executable: it extracts the radius-``T`` ball once and
replays the synchronous schedule *inside* the ball.

The replay is sound because of the standard information argument: after
``t`` rounds, the state of a node at distance ``d`` from the center is
determined by its radius-``t`` ball, which lies inside the center's
radius-``T`` ball whenever ``d + t <= T`` — so the replay updates exactly
the nodes whose next state is still determined, and after ``T`` rounds the
center's state is correct.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Tuple

from repro.graphs.balls import Ball
from repro.local.model import LocalAlgorithm, NodeContext


class IterativeAlgorithm(LocalAlgorithm):
    """Base class for synchronous-round algorithms.

    Subclasses implement:

    * :meth:`rounds` — number of synchronous rounds for ``n`` nodes,
    * :meth:`initial_state` — a node's state before round 0, from its
      purely local information,
    * :meth:`step` — the state transition given the neighbors' states
      (indexed by port; ``None`` for ports whose neighbor's state is no
      longer determined, which by the information argument can only happen
      when the center's output no longer depends on it),
    * :meth:`finalize` — map the center's final state (plus the final
      states of its neighbors, for output conventions like pointers) to
      per-port output labels.
    """

    @abc.abstractmethod
    def rounds(self, n: int) -> int:
        """Number of synchronous rounds on ``n``-node graphs."""

    @abc.abstractmethod
    def initial_state(
        self,
        node_id: Optional[int],
        degree: int,
        inputs: Tuple[Any, ...],
        bits: Optional[str],
        n: int,
    ) -> Any:
        """State before round 0."""

    @abc.abstractmethod
    def step(
        self,
        round_index: int,
        state: Any,
        neighbor_states: Tuple[Optional[Any], ...],
        n: int,
    ) -> Any:
        """State after round ``round_index``."""

    @abc.abstractmethod
    def finalize(
        self,
        state: Any,
        neighbor_states: Tuple[Optional[Any], ...],
        degree: int,
        inputs: Tuple[Any, ...],
        n: int,
    ) -> Dict[int, Any]:
        """Port-indexed output labels from the final states."""

    #: Extra radius needed by :meth:`finalize` to see neighbor states
    #: (1 in the common pointer-output case, hence the default).
    finalize_lookahead: int = 1

    def radius(self, n: int) -> int:
        return self.rounds(n) + self.finalize_lookahead

    # ------------------------------------------------------------ execution
    def run(self, ctx: NodeContext) -> Dict[int, Any]:
        n = ctx.declared_n
        total_rounds = self.rounds(n)
        ball = ctx.ball(total_rounds + self.finalize_lookahead)
        states = self._replay(ball, total_rounds, n)
        center_neighbors = self._neighbor_states(ball, 0, states)
        return self.finalize(
            states[0], center_neighbors, ball.center_degree(), ball.center_inputs(), n
        )

    def _replay(self, ball: Ball, total_rounds: int, n: int) -> List[Any]:
        states: List[Any] = [
            self.initial_state(ball.ids[v], ball.degrees[v], ball.inputs[v], ball.bits[v], n)
            for v in range(ball.num_nodes)
        ]
        horizon = ball.radius
        for round_index in range(total_rounds):
            # After this round, states are determined for nodes at distance
            # <= horizon - (round_index + 1) from the center.
            determined_up_to = horizon - (round_index + 1)
            next_states = list(states)
            for v in range(ball.num_nodes):
                if ball.distance[v] > determined_up_to:
                    next_states[v] = None
                    continue
                next_states[v] = self.step(
                    round_index, states[v], self._neighbor_states(ball, v, states), n
                )
            states = next_states
        return states

    @staticmethod
    def _neighbor_states(
        ball: Ball, local: int, states: List[Any]
    ) -> Tuple[Optional[Any], ...]:
        collected: List[Optional[Any]] = []
        for port in range(ball.degrees[local]):
            entry = ball.adj[local].get(port)
            collected.append(None if entry is None else states[entry[0]])
        return tuple(collected)
