"""Certificates of unbounded solvability on rooted trees.

The rooted-tree classification of [8] (discussed in §1.4) decides
complexity classes via finite *certificates*.  The base certificate —
"the problem is solvable on every tree of the class" — has a clean
greatest-fixpoint characterization implemented exactly here, in its
arity-indexed form:

    A family ``(T_a)_{a ∈ A}`` of label sets is *self-sustaining* if for
    every ``a ∈ A``, every ``s ∈ T_a`` and every tuple of children
    arities ``(b_1, …, b_a) ∈ A^a`` there is an allowed configuration
    ``(s, M)`` whose multiset ``M`` can be assigned to the children with
    the ``i``-th child's label in ``T_{b_i}``.

The greatest self-sustaining family (computed by iterated pruning of the
monotone operator) decides solvability on *all* trees with arities in
``A``: if every ``T_a`` is non-empty and meets the root whitelist, a
top-down pass labels any such tree (:func:`top_down_labeling`, choosing
configurations knowing each child's arity); if some ``T_a`` dies, an
adversary pumps arity-``a`` nodes and solvability fails at bounded depth
(:func:`unsolvability_witness` finds a concrete witness tree, and the
tests cross-validate against the exact bottom-up DP).

The simpler *oblivious* certificate — one set whose labels support every
arity, enough for top-down passes that assign a child's label before
seeing its arity — is :func:`oblivious_certificate`; it is sufficient but
not necessary for solvability (mark-the-leaves is solvable with an empty
oblivious certificate).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import UnsolvableError
from repro.rooted.problem import RootedLCL
from repro.rooted.tree import RootedTree, complete_rooted_tree
from repro.utils.multiset import Multiset, label_sort_key


def _assignable(
    problem: RootedLCL,
    label: Any,
    child_sets: Sequence[FrozenSet[Any]],
) -> Optional[Tuple[Any, ...]]:
    """A configuration assignment for ``label`` respecting per-child sets."""
    for multiset in sorted(
        problem.children_options(label, len(child_sets)),
        key=lambda m: [label_sort_key(x) for x in m.items],
    ):
        items = list(multiset.items)

        def recurse(index: int, remaining: List[Any]) -> Optional[Tuple[Any, ...]]:
            if index == len(child_sets):
                return ()
            for position, candidate in enumerate(remaining):
                if candidate in child_sets[index]:
                    rest = recurse(
                        index + 1, remaining[:position] + remaining[position + 1 :]
                    )
                    if rest is not None:
                        return (candidate,) + rest
            return None

        assignment = recurse(0, items)
        if assignment is not None:
            return assignment
    return None


def certificate_family(
    problem: RootedLCL, arities: Iterable[int]
) -> Dict[int, FrozenSet[Any]]:
    """The greatest self-sustaining family ``(T_a)_{a ∈ arities}``."""
    required = tuple(sorted(set(arities)))
    family: Dict[int, FrozenSet[Any]] = {
        a: frozenset(problem.labels) for a in required
    }
    while True:
        changed = False
        for a in required:
            surviving = set()
            for label in family[a]:
                ok = all(
                    _assignable(problem, label, [family[b] for b in children])
                    is not None
                    for children in itertools.product(required, repeat=a)
                )
                if ok:
                    surviving.add(label)
            if frozenset(surviving) != family[a]:
                family[a] = frozenset(surviving)
                changed = True
        if not changed:
            return family


def is_solvable_on_all(problem: RootedLCL, arities: Iterable[int]) -> bool:
    """Solvable on every rooted tree whose arities lie in ``arities``?

    Requires every ``T_a`` non-empty *and* meeting the root whitelist
    (the adversary also picks the root's arity).
    """
    family = certificate_family(problem, arities)
    return all(
        family[a] and (family[a] & problem.root_allowed) for a in family
    )


def certificate_of_unbounded_solvability(
    problem: RootedLCL, arities: Iterable[int]
) -> Dict[int, FrozenSet[Any]]:
    """Alias for :func:`certificate_family` (the decision-grade notion)."""
    return certificate_family(problem, arities)


def oblivious_certificate(
    problem: RootedLCL, arities: Iterable[int]
) -> FrozenSet[Any]:
    """The single-set certificate for *arity-blind* top-down labeling.

    Sufficient but not necessary for solvability: every label must
    support every arity within the set.
    """
    required = tuple(sorted(set(arities)))
    current: FrozenSet[Any] = problem.labels
    while True:
        surviving = current
        for arity in required:
            surviving = problem.labels_supporting_arity(arity, surviving)
        if surviving == current:
            return current
        current = surviving


def top_down_labeling(
    problem: RootedLCL,
    tree: RootedTree,
    family: Optional[Dict[int, FrozenSet[Any]]] = None,
) -> List[Any]:
    """Label a tree greedily from the root using a certificate family.

    Each node's configuration is chosen knowing its children's arities
    (which is local information), so a non-empty family suffices; raises
    :class:`UnsolvableError` when the family (or root whitelist) is empty
    for some arity the tree uses.
    """
    arities = {tree.arity(v) for v in range(tree.num_nodes)}
    if family is None:
        family = certificate_family(problem, arities)
    root_arity = tree.arity(tree.root)
    root_choices = sorted(
        family.get(root_arity, frozenset()) & problem.root_allowed,
        key=label_sort_key,
    )
    if not root_choices:
        raise UnsolvableError(
            f"{problem.name}: certificate family empty at the root "
            f"(arity {root_arity})"
        )
    labeling: List[Any] = [None] * tree.num_nodes
    labeling[tree.root] = root_choices[0]
    for v in sorted(range(tree.num_nodes), key=tree.depth):
        child_sets = [family.get(tree.arity(c), frozenset()) for c in tree.children[v]]
        assignment = _assignable(problem, labeling[v], child_sets)
        if assignment is None:
            raise UnsolvableError(
                f"{problem.name}: certificate family does not cover node {v}"
            )
        for child, child_label in zip(tree.children[v], assignment):
            labeling[child] = child_label
    return labeling


def unsolvability_witness(
    problem: RootedLCL,
    branching: int,
    max_height: int = 12,
) -> Optional[RootedTree]:
    """A concrete complete tree on which the problem is unsolvable.

    When :func:`is_solvable_on_all` fails for arities ``{0, branching}``,
    solvability must die out at bounded depth; this searches complete
    ``branching``-ary trees of growing height for the first unsolvable
    one, cross-validating the certificate against the exact DP.  Returns
    ``None`` when the problem is solvable everywhere (no witness exists).
    """
    from repro.rooted.problem import solvable_on_tree

    if is_solvable_on_all(problem, {0, branching}):
        return None
    for height in range(1, max_height + 1):
        tree = complete_rooted_tree(branching, height)
        if solvable_on_tree(problem, tree) is None:
            return tree
    return None
