"""3-coloring rooted bounded-degree trees in O(log* n).

With a root (equivalently, consistent parent pointers), Cole–Vishkin runs
directly on trees: every node has exactly one successor — its parent — so
the bit trick shrinks an initial ID-coloring to 6 colors in O(log* n)
rounds, proper across every tree edge (each edge is its child's parent
edge).  The final reduction to 3 colors uses the *shift-down* trick: each
node adopts its parent's color (the root picks a fresh one), making all
siblings monochromatic, so a recoloring node conflicts with at most two
colors (parent's and children's common one) and 3 colors suffice.

This is the rooted counterpart of :class:`LinialColoring`: the same
Θ(log* n) class, reached with far less machinery — a concrete instance of
how much the orientation gives away (the theme of §5 and of the
rooted-vs-unrooted contrast in §1.4).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.exceptions import AlgorithmError
from repro.local.algorithms.cole_vishkin import palette_schedule
from repro.local.iterative import IterativeAlgorithm
from repro.rooted.tree import TO_CHILD, TO_PARENT


class RootedCVColoring(IterativeAlgorithm):
    """Cole–Vishkin + shift-down on parent-pointer inputs."""

    finalize_lookahead = 0

    def __init__(self, id_exponent: int = 3, label_prefix: str = "c"):
        self.id_exponent = id_exponent
        self.label_prefix = label_prefix
        self.name = "rooted-cv-3-coloring"

    def initial_palette(self, n: int) -> int:
        return max(2, n**self.id_exponent + 1)

    def _cv_rounds(self, n: int) -> int:
        return len(palette_schedule(self.initial_palette(n)))

    def color_rounds(self, n: int) -> int:
        # CV to 6 colors, then three (shift-down + retire) double-rounds.
        return self._cv_rounds(n) + 6

    def rounds(self, n: int) -> int:
        return self.color_rounds(n)

    def final_palette(self, n: int) -> int:
        return 3

    # ----------------------------------------------------------- transitions
    def initial_state(self, node_id, degree, inputs, bits, n):
        if node_id is None:
            raise AlgorithmError(f"{self.name} requires unique identifiers")
        parent_port: Optional[int] = None
        for port, label in enumerate(inputs):
            if label == TO_PARENT:
                if parent_port is not None:
                    raise AlgorithmError("two parent ports at one node")
                parent_port = port
            elif label != TO_CHILD:
                raise AlgorithmError(
                    f"{self.name} requires up/down orientation inputs"
                )
        return (node_id, parent_port)

    def step(self, round_index, state, neighbor_states, n):
        color, parent_port = state
        cv_rounds = self._cv_rounds(n)
        if round_index < cv_rounds:
            parent_color = self._parent_color(parent_port, neighbor_states)
            return (self._cv_step(color, parent_color), parent_port)
        phase, subround = divmod(round_index - cv_rounds, 2)
        retiring = 5 - phase
        if subround == 0:
            # Shift-down: adopt the parent's color; the root moves to a
            # small color different from its own so that already-retired
            # colors are never reintroduced.
            parent_color = self._parent_color(parent_port, neighbor_states)
            if parent_color is None:
                return (0 if color >= 3 else (color + 1) % 3, parent_port)
            return (parent_color, parent_port)
        if color != retiring:
            return (color, parent_port)
        parent_color = self._parent_color(parent_port, neighbor_states)
        children_colors = {
            s[0]
            for port, s in enumerate(neighbor_states)
            if s is not None and port != parent_port
        }
        if len(children_colors) > 1:
            raise AlgorithmError("shift-down failed to align sibling colors")
        taken = children_colors | ({parent_color} if parent_color is not None else set())
        for candidate in range(3):
            if candidate not in taken:
                return (candidate, parent_port)
        raise AlgorithmError("no free color among 3 after shift-down")

    @staticmethod
    def _parent_color(parent_port, neighbor_states) -> Optional[int]:
        if parent_port is None:
            return None
        neighbor = neighbor_states[parent_port]
        return None if neighbor is None else neighbor[0]

    @staticmethod
    def _cv_step(color: int, successor_color: Optional[int]) -> int:
        if successor_color is None:
            return color & 1
        differing = color ^ successor_color
        if differing == 0:
            raise AlgorithmError("equal colors across a parent edge")
        index = (differing & -differing).bit_length() - 1
        return 2 * index + ((color >> index) & 1)

    def color_of(self, state: Any) -> int:
        return state[0]

    def finalize(self, state, neighbor_states, degree, inputs, n) -> Dict[int, Any]:
        label = f"{self.label_prefix}{state[0]}"
        return {port: label for port in range(degree)}
