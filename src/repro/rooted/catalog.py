"""A small catalog of rooted LCL problems.

Companions to :mod:`repro.lcl.catalog` for the rooted setting: one
representative per behavior class of the certificate machinery —
solvable-everywhere (coloring), depth-bounded (strictly increasing
labels), and root-constrained variants.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.rooted.problem import RootedLCL


def rooted_coloring(num_colors: int, max_arity: int) -> RootedLCL:
    """Proper rooted coloring: every child differs from its parent.

    Non-empty certificate for every arity set — solvable on all rooted
    trees, by top-down greedy.
    """
    colors = [f"c{i}" for i in range(num_colors)]
    configurations = []
    for label in colors:
        others = [c for c in colors if c != label]
        for arity in range(0, max_arity + 1):
            for combo in itertools.combinations_with_replacement(others, arity):
                configurations.append((label, combo))
    return RootedLCL(colors, configurations, name=f"rooted-{num_colors}-coloring")


def strictly_increasing(num_labels: int, max_arity: int) -> RootedLCL:
    """Children carry strictly larger labels: dies exactly at depth |Σ|.

    The canonical empty-certificate example — solvable on trees of height
    < ``num_labels`` and on no deeper complete tree, which
    :func:`repro.rooted.certificates.unsolvability_witness` exhibits.
    """
    labels = list(range(num_labels))
    configurations = [(label, ()) for label in labels]
    for label in labels:
        larger = [x for x in labels if x > label]
        for arity in range(1, max_arity + 1):
            for combo in itertools.combinations_with_replacement(larger, arity):
                configurations.append((label, combo))
    return RootedLCL(labels, configurations, name="strictly-increasing")


def leaf_marked(max_arity: int) -> RootedLCL:
    """Mark exactly the leaves: a 0-round rooted problem (arity is local)."""
    configurations = [("leaf", ())]
    for arity in range(1, max_arity + 1):
        for combo in itertools.combinations_with_replacement(
            ["leaf", "inner"], arity
        ):
            configurations.append(("inner", combo))
    return RootedLCL(["leaf", "inner"], configurations, name="leaf-marked")


def parity_of_depth(max_arity: int) -> RootedLCL:
    """Alternate labels by depth, anchored at the root.

    With the root pinned to ``even``, the labeling is forced and computable
    only by knowing the depth parity — a global rooted problem, yet its
    certificate is non-empty (solvable on every tree); a reminder that
    certificates decide *solvability*, not complexity.
    """
    configurations = []
    for label, child in (("even", "odd"), ("odd", "even")):
        configurations.append((label, ()))
        for arity in range(1, max_arity + 1):
            configurations.append((label, (child,) * arity))
    return RootedLCL(
        ["even", "odd"],
        configurations,
        root_allowed=["even"],
        name="parity-of-depth",
    )


def standard_rooted_catalog(max_arity: int = 2) -> Sequence[RootedLCL]:
    return [
        rooted_coloring(2, max_arity),
        rooted_coloring(3, max_arity),
        strictly_increasing(3, max_arity),
        leaf_marked(max_arity),
        parity_of_depth(max_arity),
    ]
