"""LCL problems on rooted trees, with checker and exact solvability DP.

A rooted LCL constrains each node's own label together with the multiset
of its children's labels — the natural rooted analogue of the node-edge-
checkable form (and the formalism of the rooted-tree classification [8]
that §1.4 contrasts the paper's unrooted result against).  Leaves are
nodes of arity 0 (their configuration is ``(label, ∅)``); an optional
whitelist constrains the root's label.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ProblemDefinitionError
from repro.rooted.tree import RootedTree
from repro.utils.multiset import Multiset, label_sort_key


class RootedLCL:
    """A rooted LCL: allowed ``(own label, children multiset)`` pairs.

    Parameters
    ----------
    labels:
        The output alphabet.
    configurations:
        Iterable of ``(label, children)`` pairs, ``children`` any iterable
        of labels (its length is the arity the configuration covers —
        include arity-0 pairs for leaves).
    root_allowed:
        Labels permitted at the root (default: all).
    name:
        Human-readable name.
    """

    def __init__(
        self,
        labels: Iterable[Any],
        configurations: Iterable[Tuple[Any, Iterable[Any]]],
        root_allowed: Optional[Iterable[Any]] = None,
        name: str = "rooted-lcl",
    ):
        self.labels = frozenset(labels)
        if not self.labels:
            raise ProblemDefinitionError("alphabet must be non-empty")
        by_label_arity: Dict[Tuple[Any, int], set] = {}
        max_arity = 0
        for label, children in configurations:
            if label not in self.labels:
                raise ProblemDefinitionError(f"unknown label {label!r}")
            multiset = Multiset(children)
            if not multiset.support() <= self.labels:
                raise ProblemDefinitionError(
                    f"configuration for {label!r} uses unknown child labels"
                )
            by_label_arity.setdefault((label, len(multiset)), set()).add(multiset)
            max_arity = max(max_arity, len(multiset))
        self._configurations = {
            key: frozenset(values) for key, values in by_label_arity.items()
        }
        self.max_arity = max_arity
        self.root_allowed = (
            frozenset(root_allowed) if root_allowed is not None else self.labels
        )
        if not self.root_allowed <= self.labels:
            raise ProblemDefinitionError("root_allowed must be a subset of labels")
        self.name = name

    # -------------------------------------------------------------- queries
    def allows(self, label: Any, children: Iterable[Any]) -> bool:
        multiset = children if isinstance(children, Multiset) else Multiset(children)
        allowed = self._configurations.get((label, len(multiset)))
        return allowed is not None and multiset in allowed

    def children_options(self, label: Any, arity: int) -> FrozenSet[Multiset]:
        """All allowed children multisets for ``label`` at this arity."""
        return self._configurations.get((label, arity), frozenset())

    def labels_supporting_arity(self, arity: int, within: FrozenSet[Any]) -> FrozenSet[Any]:
        """Labels with >= 1 configuration of this arity using only ``within``."""
        supported = set()
        for label in within:
            for multiset in self.children_options(label, arity):
                if multiset.support() <= within:
                    supported.add(label)
                    break
        return frozenset(supported)

    def summary(self) -> str:
        lines = [f"rooted problem {self.name}"]
        lines.append("  labels: " + " ".join(sorted(map(str, self.labels))))
        for (label, arity), options in sorted(
            self._configurations.items(), key=lambda kv: (label_sort_key(kv[0][0]), kv[0][1])
        ):
            rendered = " | ".join(
                " ".join(map(str, multiset.items)) or "()" for multiset in sorted(
                    options, key=lambda m: m.items
                )
            )
            lines.append(f"  {label} / arity {arity}: {rendered}")
        lines.append("  root: " + " ".join(sorted(map(str, self.root_allowed))))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RootedLCL(name={self.name!r}, |labels|={len(self.labels)})"


def check_rooted_solution(
    problem: RootedLCL, tree: RootedTree, labeling: Sequence[Any]
) -> List[int]:
    """Indices of nodes whose configuration (or root condition) fails."""
    if len(labeling) != tree.num_nodes:
        raise ProblemDefinitionError("need exactly one label per node")
    failed = []
    for v in range(tree.num_nodes):
        children_labels = [labeling[c] for c in tree.children[v]]
        ok = problem.allows(labeling[v], children_labels)
        if v == tree.root and labeling[v] not in problem.root_allowed:
            ok = False
        if not ok:
            failed.append(v)
    return failed


def solvable_on_tree(
    problem: RootedLCL, tree: RootedTree
) -> Optional[List[Any]]:
    """An exact bottom-up solvability decision, returning a solution.

    Computes each node's feasible label set by dynamic programming
    (children first); a label is feasible if some configuration's children
    multiset can be matched against the children's feasible sets
    (backtracking assignment).  Reconstructs a concrete labeling top-down,
    or returns ``None`` when the root has no feasible label in
    ``root_allowed``.
    """
    feasible: List[FrozenSet[Any]] = [frozenset()] * tree.num_nodes
    witness: Dict[Tuple[int, Any], Tuple[Any, ...]] = {}

    def match(multiset: Multiset, child_sets: List[FrozenSet[Any]]) -> Optional[Tuple[Any, ...]]:
        items = list(multiset.items)

        def recurse(index: int, remaining: List[Any]) -> Optional[Tuple[Any, ...]]:
            if index == len(child_sets):
                return ()
            for position, candidate in enumerate(remaining):
                if candidate in child_sets[index]:
                    rest = recurse(
                        index + 1, remaining[:position] + remaining[position + 1 :]
                    )
                    if rest is not None:
                        return (candidate,) + rest
            return None

        return recurse(0, items)

    for v in tree.bottom_up_order():
        child_sets = [feasible[c] for c in tree.children[v]]
        labels = set()
        for label in sorted(problem.labels, key=label_sort_key):
            for multiset in problem.children_options(label, tree.arity(v)):
                assignment = match(multiset, child_sets)
                if assignment is not None:
                    labels.add(label)
                    witness[(v, label)] = assignment
                    break
        feasible[v] = frozenset(labels)

    root_choices = sorted(
        feasible[tree.root] & problem.root_allowed, key=label_sort_key
    )
    if not root_choices:
        return None
    labeling: List[Any] = [None] * tree.num_nodes
    labeling[tree.root] = root_choices[0]
    order = sorted(range(tree.num_nodes), key=tree.depth)
    for v in order:
        assignment = witness[(v, labeling[v])]
        for child, label in zip(tree.children[v], assignment):
            labeling[child] = label
    return labeling
