"""Rooted trees: the §1.4 companion setting.

The paper's decidability discussion (§1.4) leans on the classification of
LCLs on *rooted* regular trees [8], where the parent-child orientation
makes certificate-based decision procedures possible — machinery that is
"entirely unclear" how to extend to unrooted trees, which is exactly what
makes the paper's Theorem 1.1 (unrooted, via round elimination)
interesting.  This subpackage provides the rooted side of that contrast:

* :class:`~repro.rooted.tree.RootedTree` — parent-array trees, generators,
  and the bridge to the LOCAL simulator (orientation inputs);
* :class:`~repro.rooted.problem.RootedLCL` — problems given by allowed
  ``(own label, children multiset)`` configurations, with a checker and an
  exact bottom-up solvability DP;
* :mod:`~repro.rooted.certificates` — greatest-fixpoint *certificates of
  unbounded solvability*: a label set witnessing top-down solvability on
  every tree of the class (the [8] certificate flavor, for the base
  question "solvable at all");
* :class:`~repro.rooted.coloring.RootedCVColoring` — 3-coloring arbitrary
  bounded-degree rooted trees in O(log* n) by running Cole–Vishkin on
  parent pointers plus the shift-down palette reduction — the Θ(log* n)
  class witness that needs no Linial-style machinery once a root is given.
"""

from repro.rooted.tree import RootedTree, complete_rooted_tree, random_rooted_tree
from repro.rooted.problem import RootedLCL, check_rooted_solution, solvable_on_tree
from repro.rooted.certificates import (
    certificate_family,
    certificate_of_unbounded_solvability,
    is_solvable_on_all,
    oblivious_certificate,
    top_down_labeling,
    unsolvability_witness,
)
from repro.rooted.coloring import RootedCVColoring
from repro.rooted import catalog

__all__ = [
    "RootedTree",
    "complete_rooted_tree",
    "random_rooted_tree",
    "RootedLCL",
    "check_rooted_solution",
    "solvable_on_tree",
    "certificate_family",
    "certificate_of_unbounded_solvability",
    "is_solvable_on_all",
    "oblivious_certificate",
    "top_down_labeling",
    "unsolvability_witness",
    "RootedCVColoring",
    "catalog",
]
