"""Rooted trees as parent arrays, with a bridge to the LOCAL simulator."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graphs.core import Graph, HalfEdgeLabeling

#: Input labels marking the parent/child direction of a half-edge.
TO_PARENT = "up"
TO_CHILD = "down"


class RootedTree:
    """A rooted tree given by a parent array (``parent[root] is None``)."""

    def __init__(self, parents: List[Optional[int]]):
        self.parents = list(parents)
        roots = [v for v, p in enumerate(self.parents) if p is None]
        if len(roots) != 1:
            raise GraphError(f"need exactly one root, found {len(roots)}")
        self.root = roots[0]
        self.children: List[List[int]] = [[] for _ in self.parents]
        for v, parent in enumerate(self.parents):
            if parent is not None:
                if not 0 <= parent < len(self.parents):
                    raise GraphError(f"node {v} has out-of-range parent {parent}")
                self.children[parent].append(v)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        depth_cache: List[Optional[int]] = [None] * self.num_nodes
        for start in range(self.num_nodes):
            chain: List[int] = []
            on_chain = set()
            v: Optional[int] = start
            while v is not None and depth_cache[v] is None:
                if v in on_chain:
                    raise GraphError("parent pointers contain a cycle")
                chain.append(v)
                on_chain.add(v)
                v = self.parents[v]
            # `v` is either None (we reached the root) or already solved.
            base = -1 if v is None else depth_cache[v]
            for node in reversed(chain):
                base += 1
                depth_cache[node] = base
        self._depths: List[int] = [d if d is not None else 0 for d in depth_cache]

    # -------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        return len(self.parents)

    def depth(self, v: int) -> int:
        return self._depths[v]

    @property
    def height(self) -> int:
        return max(self._depths, default=0)

    def arity(self, v: int) -> int:
        """Number of children (0 for leaves)."""
        return len(self.children[v])

    def leaves(self) -> List[int]:
        return [v for v in range(self.num_nodes) if not self.children[v]]

    def bottom_up_order(self) -> List[int]:
        """Nodes ordered leaves-first (children before parents)."""
        return sorted(range(self.num_nodes), key=self.depth, reverse=True)

    # --------------------------------------------------------------- bridge
    def as_graph(self) -> Tuple[Graph, HalfEdgeLabeling]:
        """The underlying port-numbered graph plus orientation inputs.

        Every half-edge is labeled :data:`TO_PARENT` or :data:`TO_CHILD`,
        which is how rooted structure enters the LOCAL simulator (the same
        convention as the oriented grids of §5: orientation as input).
        """
        edges = [
            (v, parent)
            for v, parent in enumerate(self.parents)
            if parent is not None
        ]
        graph = Graph(self.num_nodes, edges)
        labeling = HalfEdgeLabeling(graph)
        for v, parent in enumerate(self.parents):
            if parent is None:
                continue
            port_up = graph.port_to(v, parent)
            port_down = graph.neighbor_port(v, port_up)
            labeling[(v, port_up)] = TO_PARENT
            labeling[(parent, port_down)] = TO_CHILD
        return graph, labeling

    def __repr__(self) -> str:
        return (
            f"RootedTree(n={self.num_nodes}, height={self.height}, root={self.root})"
        )


def complete_rooted_tree(branching: int, height: int) -> RootedTree:
    """The complete ``branching``-ary rooted tree of the given height."""
    if branching < 1:
        raise GraphError("branching must be >= 1")
    parents: List[Optional[int]] = [None]
    frontier = [0]
    for _ in range(height):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                parents.append(parent)
                next_frontier.append(len(parents) - 1)
        frontier = next_frontier
    return RootedTree(parents)


def random_rooted_tree(
    num_nodes: int, max_children: int, seed: int = 0
) -> RootedTree:
    """A random rooted tree with at most ``max_children`` children per node."""
    if num_nodes < 1:
        raise GraphError("need at least one node")
    rng = random.Random(seed)
    parents: List[Optional[int]] = [None]
    open_slots = {0: max_children}
    for v in range(1, num_nodes):
        parent = rng.choice(list(open_slots))
        parents.append(parent)
        open_slots[parent] -= 1
        if open_slots[parent] == 0:
            del open_slots[parent]
        open_slots[v] = max_children
    return RootedTree(parents)
