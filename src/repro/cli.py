"""Command-line interface: ``lcl-landscape``.

Subcommands:

* ``show <problem>``        — print a catalog problem (or parse a file);
* ``classify <problem>``    — decide its complexity on directed paths and
  cycles (§1.4 trichotomy);
* ``speedup <problem>``     — run the Theorem 3.10/3.11 gap pipeline
  (Question 1.7 semidecision) and, on success, verify the synthesized
  algorithm on random forests;
* ``roundelim <problem>``   — iterate ``f = R̄∘R`` directly, printing the
  alphabet growth (and ``--stats``: cache/parallel engine counters);
* ``certify <problem>``     — run the pipeline and emit a checkable
  certificate for the verdict (``--catalog`` for all built-ins,
  ``--check PATH`` for offline engine-free re-checking,
  ``--replay`` to demand a bit-identical algorithm re-run);
* ``lint [paths]``          — run the determinism/purity static analysis
  (also the standalone ``repro-lint`` script; ``--env`` prints the
  ``REPRO_*`` environment-knob registry, ``--list-rules`` the catalog);
* ``catalog``               — list the built-in problems.

Problems are named like ``mis``, ``coloring:3``, ``sinkless:3``,
``echo:2`` — see ``lcl-landscape catalog`` — or given as ``file:PATH``
in the :mod:`repro.lcl.fmt` text format.

Robustness flags: ``--timeout`` / ``--max-configs`` attach a cooperative
:class:`repro.utils.budget.Budget` (exhaustion yields a structured
``UNKNOWN(>= step k)`` instead of a hang), ``--checkpoint`` /
``--resume`` persist and restore sequence walks, and the global
``--verbose`` / ``--quiet`` flags control the ``repro`` logger, which is
where budget hits, retries, pool fallbacks, and checkpoint writes are
reported.

The measured ``landscape`` panels (``trees`` / ``grids`` / ``volume``)
run as supervised campaigns (:mod:`repro.supervisor`): ``--isolate``
selects per-cell subprocess isolation, ``--cell-timeout`` /
``--cell-mem-mb`` / ``--cell-retries`` bound each cell, and
``--journal`` / ``--resume`` persist completed cells to an append-only
checksummed journal and restore them bit-identically after a crash or
``SIGINT`` (every verb exits 130 on interrupt, with all journaled and
checkpointed progress preserved).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Callable, Dict, Optional

from repro.exceptions import ReproError
from repro.lcl import catalog
from repro.lcl.fmt import parse as parse_problem
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.budget import Budget

#: name -> (builder taking one optional int parameter, description)
CATALOG: Dict[str, tuple] = {
    "trivial": (lambda k: catalog.trivial(k or 3), "everything allowed (O(1))"),
    "consensus": (lambda k: catalog.consensus(k or 3), "one common value (O(1))"),
    "input-copy": (lambda k: catalog.input_copy(k or 3), "output your input (O(1))"),
    "echo": (lambda k: catalog.echo(k or 3), "copy the opposite input (1 round)"),
    "echo2": (lambda k: catalog.echo2(), "two-hop echo on paths (2 rounds)"),
    "coloring": (
        lambda k: catalog.coloring(k or 3, max(2, (k or 3) - 1)),
        "proper k-coloring (Theta(log* n) for k = Delta+1)",
    ),
    "mis": (lambda k: catalog.mis(k or 3), "maximal independent set (Theta(log* n))"),
    "matching": (
        lambda k: catalog.maximal_matching(k or 3),
        "maximal matching (Theta(log* n))",
    ),
    "weak-coloring": (
        lambda k: catalog.weak_coloring(2, k or 3),
        "weak 2-coloring",
    ),
    "sinkless": (
        lambda k: catalog.sinkless_orientation(k or 3),
        "sinkless orientation (round-elimination fixed point)",
    ),
    "2-coloring": (lambda k: catalog.two_coloring(k or 2), "proper 2-coloring (Theta(n))"),
}


def configure_logging(verbosity: int) -> None:
    """Map ``-q``/``-v`` counts onto the ``repro`` logger level.

    ``0`` → WARNING (budget hits, fallbacks, corrupt caches are always
    visible), ``1`` → INFO (checkpoint writes, resumes, evictions),
    ``2+`` → DEBUG; negative (``--quiet``) → ERROR.
    """
    if verbosity < 0:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    repro_logger = logging.getLogger("repro")
    repro_logger.handlers[:] = [handler]
    repro_logger.setLevel(level)
    repro_logger.propagate = False


def build_budget(args: argparse.Namespace) -> Optional[Budget]:
    """A budget from ``--timeout`` / ``--max-configs``, or ``None``."""
    timeout = getattr(args, "timeout", None)
    max_configs = getattr(args, "max_configs", None)
    if timeout is None and max_configs is None:
        return None
    return Budget(deadline=timeout, max_configs=max_configs)


def resolve_problem(spec: str) -> NodeEdgeCheckableLCL:
    """Parse ``name``, ``name:param`` or ``file:PATH`` into a problem."""
    if spec.startswith("file:"):
        with open(spec[len("file:") :], "r", encoding="utf-8") as handle:
            return parse_problem(handle.read())
    name, _, parameter = spec.partition(":")
    if name not in CATALOG:
        known = ", ".join(sorted(CATALOG))
        raise ReproError(f"unknown problem {name!r}; known: {known}")
    builder, _ = CATALOG[name]
    return builder(int(parameter) if parameter else None)


def cmd_show(args: argparse.Namespace) -> int:
    problem = resolve_problem(args.problem)
    print(problem.summary())
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    for name, (_, description) in sorted(CATALOG.items()):
        print(f"{name:<14} {description}")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    from repro.decidability import classify_cycle_problem, classify_path_problem

    problem = resolve_problem(args.problem)
    print(f"problem: {problem.name}")
    print(f"on directed cycles: {classify_cycle_problem(problem)}")
    print(f"on directed paths:  {classify_path_problem(problem)}")
    return 0


def cmd_landscape(args: argparse.Namespace) -> int:
    if args.panel == "re":
        from repro.landscape import classify_constant_time

        problems = [resolve_problem(spec) for spec in ("trivial", "echo", "mis", "sinkless")]
        panel = classify_constant_time(
            problems,
            max_steps=args.max_steps,
            time_limit=args.timeout,
            max_configs=args.max_configs,
        )
        print(panel.render())
        return 0

    # The measured panels run as supervised campaigns: every (series, n)
    # cell is crash-isolated, retried, journaled, and — when it still
    # fails — quarantined into a visible hole instead of aborting the
    # panel.  Measured values are identical to the pre-supervisor CLI.
    from repro.supervisor import CampaignConfig, open_journal, run_campaign
    from repro.supervisor.measurements import assemble_panel, plan_panel

    plan = plan_panel(args.panel, args.points)
    config = CampaignConfig(
        seed=args.campaign_seed,
        timeout=args.cell_timeout,
        mem_mb=args.cell_mem_mb,
        retries=args.cell_retries,
        isolation=args.isolate,
    )
    journal = None
    if args.journal is not None or args.resume:
        journal = open_journal(
            plan.cells, seed=args.campaign_seed, directory=args.journal
        )
    if args.scheduler:
        from repro.scheduler import SchedulerConfig, run_scheduled_campaign

        def live_progress(line: str) -> None:
            # Carriage-return live line on stderr; panel output stays
            # clean on stdout.
            print(f"\r{line}", end="", file=sys.stderr, flush=True)

        progress = live_progress if sys.stderr.isatty() else None
        try:
            report = run_scheduled_campaign(
                plan.cells,
                config,
                scheduler=SchedulerConfig(workers=args.workers),
                journal=journal,
                resume=args.resume,
                progress=progress,
            )
        finally:
            if progress is not None:
                print(file=sys.stderr, flush=True)
        scheduler_stats = report.stats.summary()
    else:
        scheduler_stats = None
        report = run_campaign(
            plan.cells, config, journal=journal, resume=args.resume
        )
    panel = assemble_panel(plan, report)
    print(panel.render())
    if journal is not None or report.quarantined or report.resumed_count:
        print(f"  campaign: {report.summary()}")
    if scheduler_stats is not None:
        print(f"  scheduler: {scheduler_stats}")
    if journal is not None:
        print(f"  journal: {journal.path}")
    return 1 if panel.gap_violations() else 0


def cmd_roundelim(args: argparse.Namespace) -> int:
    import contextlib

    from repro.exceptions import BudgetExceededError, ProblemDefinitionError
    from repro.roundelim import ProblemSequence, configure_parallel, find_zero_round_algorithm
    from repro.utils import cache as operator_cache

    if args.no_cache:
        operator_cache.configure(enabled=False)
    if args.workers is not None:
        configure_parallel(workers=args.workers)
    operator_cache.reset_stats()
    problem = resolve_problem(args.problem)
    sequence = ProblemSequence(
        problem,
        use_domination=not args.no_domination,
        max_universe=args.max_universe,
        use_cache=not args.no_cache,
        checkpoint=args.checkpoint,
    )
    print(f"problem: {problem.name}")
    if args.resume:
        restored = sequence.resume()
        print(f"  resumed {restored} completed step(s) from checkpoint")
    budget = build_budget(args)
    fixed_point = None
    with budget if budget is not None else contextlib.nullcontext():
        for k in range(args.steps + 1):
            try:
                current = sequence.problem(k)
            except ProblemDefinitionError as error:
                print(f"  f^{k}: alphabet blow-up ({error})")
                break
            except BudgetExceededError as error:
                print(f"  f^{k}: UNKNOWN(>= step {sequence.completed_steps()})")
                print(f"  budget: {error.diagnostics.as_dict()}")
                break
            zero = find_zero_round_algorithm(current)
            print(
                f"  f^{k}: |sigma_out| = {len(current.sigma_out):<5d} "
                f"0-round solvable: {'yes' if zero is not None else 'no'}"
            )
            if k > 0 and fixed_point is None and sequence.find_fixed_point(k) is not None:
                fixed_point = sequence.find_fixed_point(k)
    if fixed_point is not None:
        print(f"  fixed point (up to relabeling) at step {fixed_point}")
    if args.stats:
        from repro.utils.cache import format_stats

        print(format_stats())
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    from repro.roundelim.gap import speedup, verify_on_random_forests

    problem = resolve_problem(args.problem)
    result = speedup(
        problem,
        max_steps=args.max_steps,
        budget=build_budget(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print(result.summary())
    if result.status == "constant" and not args.no_verify:
        sizes = (6, 4, 1) if problem.max_degree <= 2 else (7, 5, 3, 1)
        ok = verify_on_random_forests(result, component_sizes=sizes, trials=args.trials)
        print(f"verification on random forests: {'PASS' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    from repro.verify import check_certificate

    if args.check is not None:
        # Offline re-check: engine-free, works on any machine with the
        # package installed — no pipeline run involved.
        outcome = check_certificate(args.check)
        print(outcome)
        return 0 if outcome.ok else 1

    from repro.roundelim.gap import speedup

    specs = (
        sorted(CATALOG) if args.catalog else ([args.problem] if args.problem else [])
    )
    if not specs:
        print("error: name a problem, or pass --catalog / --check", file=sys.stderr)
        return 2
    failures = 0
    for spec in specs:
        problem = resolve_problem(spec)
        result = speedup(
            problem,
            max_steps=args.max_steps,
            budget=build_budget(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
        certificate = result.certify(trials=args.trials, seed=args.seed)
        outcome = check_certificate(certificate)
        status = "OK" if outcome.ok else "REJECTED"
        print(f"{spec:<14} {result.verdict_label():<22} certificate {status}")
        if not outcome.ok:
            failures += 1
            for error in outcome.errors:
                print(f"    {error}")
        if args.replay and certificate.kind == "constant":
            from repro.verify import replay_certificate

            errors = replay_certificate(certificate)
            print(f"    replay: {'bit-identical' if not errors else 'DIVERGED'}")
            failures += 1 if errors else 0
        if args.out is not None:
            if len(specs) == 1:
                path = certificate.save(args.out)
            else:
                safe = spec.replace(":", "_")
                path = certificate.save(f"{args.out.rstrip('/')}/{safe}.json")
            print(f"    wrote {path}")
    return 1 if failures else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_from_args

    return run_from_args(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcl-landscape",
        description=(
            "Executable machinery of 'The Landscape of Distributed "
            "Complexities on Trees and Beyond' (PODC 2022)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="increase repro logger verbosity (-v: INFO, -vv: DEBUG)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="only log errors (suppresses budget/fallback warnings)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_budget_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock budget; exhaustion yields UNKNOWN(>= step k)",
        )
        sub.add_argument(
            "--max-configs",
            type=int,
            default=None,
            metavar="N",
            help="budget on enumerated configurations across the walk",
        )

    def add_checkpoint_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--checkpoint",
            default=None,
            metavar="DIR",
            help="persist the sequence walk under DIR (default: REPRO_CHECKPOINT_DIR)",
        )
        sub.add_argument(
            "--resume",
            action="store_true",
            help="restore completed steps from the checkpoint before walking",
        )

    show = commands.add_parser("show", help="print a problem definition")
    show.add_argument("problem")
    show.set_defaults(handler=cmd_show)

    listing = commands.add_parser("catalog", help="list built-in problems")
    listing.set_defaults(handler=cmd_catalog)

    classify = commands.add_parser(
        "classify", help="decide the complexity on directed paths/cycles"
    )
    classify.add_argument("problem")
    classify.set_defaults(handler=cmd_classify)

    roundelim = commands.add_parser(
        "roundelim",
        help="iterate f = Rbar(R(.)) and report alphabet growth / engine stats",
    )
    roundelim.add_argument("problem")
    roundelim.add_argument("--steps", type=int, default=3)
    roundelim.add_argument("--max-universe", type=int, default=4096)
    roundelim.add_argument(
        "--stats",
        action="store_true",
        help="print cache hit/miss, configurations-tested, and wall-time counters",
    )
    roundelim.add_argument(
        "--no-cache", action="store_true", help="bypass the canonical operator cache"
    )
    roundelim.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the quantifier loops (default: REPRO_WORKERS)",
    )
    roundelim.add_argument(
        "--no-domination",
        action="store_true",
        help="disable dominated-label pruning during hygiene",
    )
    add_budget_flags(roundelim)
    add_checkpoint_flags(roundelim)
    roundelim.set_defaults(handler=cmd_roundelim)

    speedup = commands.add_parser(
        "speedup", help="run the Theorem 3.10/3.11 gap pipeline"
    )
    speedup.add_argument("problem")
    speedup.add_argument("--max-steps", type=int, default=4)
    speedup.add_argument("--trials", type=int, default=3)
    speedup.add_argument("--no-verify", action="store_true")
    add_budget_flags(speedup)
    add_checkpoint_flags(speedup)
    speedup.set_defaults(handler=cmd_speedup)

    certify = commands.add_parser(
        "certify",
        help="run the gap pipeline and emit/check verdict certificates",
        description=(
            "Certify a verdict (constant / fixed-point / unknown) with "
            "machine-checkable evidence, or re-check a saved certificate "
            "offline with the engine-free checker (--check)."
        ),
    )
    certify.add_argument("problem", nargs="?", default=None)
    certify.add_argument(
        "--catalog", action="store_true", help="certify every built-in problem"
    )
    certify.add_argument(
        "--check",
        default=None,
        metavar="PATH",
        help="re-check a saved certificate instead of producing one",
    )
    certify.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the certificate JSON (a directory when used with --catalog)",
    )
    certify.add_argument(
        "--replay",
        action="store_true",
        help="rebuild the algorithm from the certificate and demand a bit-identical re-run",
    )
    certify.add_argument("--max-steps", type=int, default=4)
    certify.add_argument("--trials", type=int, default=3)
    certify.add_argument("--seed", type=int, default=0)
    add_budget_flags(certify)
    add_checkpoint_flags(certify)
    certify.set_defaults(handler=cmd_certify)

    lint = commands.add_parser(
        "lint",
        help="run the determinism/purity static analysis (repro-lint)",
        description=(
            "Static analysis encoding the pipeline's correctness contract: "
            "seeded randomness, sorted canonical iteration, engine-free "
            "certificate checking, declared REPRO_* knobs, and more — see "
            "docs/STATIC_ANALYSIS.md."
        ),
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(handler=cmd_lint)

    landscape = commands.add_parser(
        "landscape", help="measure a Figure-1 landscape panel"
    )
    landscape.add_argument(
        "panel",
        choices=["trees", "grids", "volume", "re"],
        help="'re': anytime Question-1.7 verdict panel via round elimination",
    )
    landscape.add_argument("--points", type=int, default=5)
    landscape.add_argument("--max-steps", type=int, default=3)
    landscape.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "journal completed cells under DIR (default: REPRO_JOURNAL_DIR) "
            "so an interrupted campaign can --resume"
        ),
    )
    landscape.add_argument(
        "--resume",
        action="store_true",
        help="restore journaled cells bit-identically; only the rest runs",
    )
    landscape.add_argument(
        "--isolate",
        choices=["process", "inline"],
        default="process",
        help="run each cell in a supervised subprocess (default) or inline",
    )
    landscape.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock cap (default: REPRO_CELL_TIMEOUT)",
    )
    landscape.add_argument(
        "--cell-mem-mb",
        type=int,
        default=None,
        metavar="MB",
        help="per-cell address-space cap (default: REPRO_CELL_MEM_MB)",
    )
    landscape.add_argument(
        "--cell-retries",
        type=int,
        default=None,
        metavar="N",
        help="bounded deterministic retries per cell (default: REPRO_CELL_RETRIES)",
    )
    landscape.add_argument(
        "--campaign-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="campaign seed (names the journal; splits per-cell RNG streams)",
    )
    landscape.add_argument(
        "--scheduler",
        action="store_true",
        help=(
            "run the campaign across concurrent worker processes with "
            "lease-based crash recovery (results and journal are "
            "byte-identical to a serial run)"
        ),
    )
    landscape.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker process count for --scheduler "
            "(default: REPRO_SCHED_WORKERS, else min(cpus, 4))"
        ),
    )
    add_budget_flags(landscape)
    landscape.set_defaults(handler=cmd_landscape)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Journals and checkpoints are flushed+fsynced per record, so an
        # interrupt loses at most the in-flight cell/step; the standard
        # 128+SIGINT exit code tells callers the run is resumable.
        sys.stdout.flush()
        print("interrupted: journaled/checkpointed progress is preserved", file=sys.stderr)
        sys.stderr.flush()
        return 130
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
