"""repro — executable reproduction of "The Landscape of Distributed
Complexities on Trees and Beyond" (Brandt, Grunau, Rozhoň; PODC 2022).

Subpackage map:

* :mod:`repro.graphs` — port-numbered half-edge graphs and generators;
* :mod:`repro.lcl` — LCL problems (general and node-edge-checkable),
  solution checking, the problem catalog, random problems, text format;
* :mod:`repro.roundelim` — the round elimination operators R / R̄, the
  problem sequence, 0-round decidability, the Lemma 3.9 lifting and the
  Theorem 3.10/3.11 gap pipeline;
* :mod:`repro.local` — the LOCAL model simulator and classic algorithms;
* :mod:`repro.volume` — the VOLUME / LCA probe models (Theorem 4.1);
* :mod:`repro.grids` — oriented grids and PROD-LOCAL (Theorem 5.1);
* :mod:`repro.rooted` — rooted trees, certificates (§1.4 companion);
* :mod:`repro.decidability` — classification procedures (§1.4);
* :mod:`repro.landscape` — empirical complexity-class fitting (Figure 1).

The most-used entry points are re-exported here:

>>> import repro
>>> result = repro.speedup(repro.catalog.echo(3))
>>> result.status
'constant'
"""

from repro.exceptions import ReproError
from repro.lcl import catalog

__version__ = "1.0.0"

__all__ = ["ReproError", "catalog", "speedup", "__version__"]


def __getattr__(name: str):
    # ``speedup`` loads lazily so that engine-free consumers — notably the
    # certificate checker in :mod:`repro.verify` — can import ``repro``
    # without dragging the round-elimination engine into the process.
    if name == "speedup":
        from repro.roundelim.gap import speedup

        return speedup
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
