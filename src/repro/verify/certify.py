"""Certificate production: package a pipeline verdict with its evidence.

This is the *producer* half of the certification subsystem, and the only
module under :mod:`repro.verify` allowed to import the round-elimination
engine (it needs :class:`GapResult`, the problem sequence, and the
Lemma 3.9 lifting to describe and rebuild synthesized algorithms).  The
*checker* half — :mod:`repro.verify.check` — stays engine-free; keep it
that way when extending either side.

The certificate bodies:

``constant``
    ``rounds``, the ``chain`` (encoded problems ``Π_0 .. Π_k``, encoded
    intermediates ``R(Π_0) .. R(Π_{k-1})``, and the 0-round table with
    its clique), and a recorded :mod:`~repro.verify.transcript`.
    :func:`rebuild_algorithm` reconstructs the exact
    :class:`~repro.roundelim.lift.LiftedAlgorithm` composition from the
    chain, and :func:`replay_certificate` demands it reproduce the
    recorded outputs bit-for-bit.

``fixed-point``
    The fixed problem ``Π_k`` and its successor ``f(Π_k)`` (the checker
    re-establishes their isomorphism), plus a 0-round refutation witness
    for every step ``0 .. k``.

``unknown``
    The verified prefix: one refutation witness per completed step, the
    machine-checkable content of ``UNKNOWN(>= step k)``, along with the
    walk's note and budget diagnostics.

In every case the producer runs the corresponding *check* before
emitting — a certificate that its own independent checker rejects is a
bug in the engine, and :class:`CertificateError` says so loudly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import CertificateError
from repro.lcl.codec import decode_label, decode_problem, encode_label, encode_problem
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import LocalAlgorithm
from repro.roundelim.gap import GapResult
from repro.roundelim.lift import compose_lifts
from repro.roundelim.zero_round import ZeroRoundAlgorithm
from repro.utils.multiset import label_sort_key
from repro.verify.certificate import SCHEMA_VERSION, Certificate
from repro.verify.refute import build_refutation
from repro.verify.transcript import (
    DEFAULT_COMPONENT_SIZES,
    record_transcript,
    replay_transcript,
)


def _encode_zero_round(zero_round: ZeroRoundAlgorithm) -> Dict[str, Any]:
    return {
        "clique": [
            encode_label(x) for x in sorted(zero_round.clique, key=label_sort_key)
        ],
        "table": [
            [[encode_label(x) for x in inputs], [encode_label(x) for x in outputs]]
            for inputs, outputs in sorted(
                zero_round.table.items(),
                key=lambda kv: [label_sort_key(x) for x in kv[0]],
            )
        ],
    }


def _decode_zero_round(
    problem: NodeEdgeCheckableLCL, payload: Dict[str, Any]
) -> ZeroRoundAlgorithm:
    clique = frozenset(decode_label(x) for x in payload["clique"])
    table = {
        tuple(decode_label(x) for x in inputs): tuple(decode_label(x) for x in outputs)
        for inputs, outputs in payload["table"]
    }
    return ZeroRoundAlgorithm(problem, clique, table)


def _refutation_prefix(result: GapResult, steps: int) -> List[Dict[str, Any]]:
    """Refutation witnesses for ``f^j(Π)``, ``j = 0 .. steps - 1``.

    The walk already computed these problems, so ``sequence.problem(j)``
    is a cache hit; ``build_refutation`` must succeed on each of them —
    the walk's negative 0-round decision and the witness builder are two
    complete procedures for the same question, so a disagreement is an
    engine bug worth crashing on.
    """
    prefix: List[Dict[str, Any]] = []
    for step in range(steps):
        problem = result.sequence.problem(step)
        refutation = build_refutation(problem)
        if refutation is None:
            raise CertificateError(
                f"engine/witness disagreement: step {step} of "
                f"{result.problem.name!r} was walked past as not 0-round "
                "solvable, but a covering clique exists"
            )
        prefix.append(
            {
                "step": step,
                "problem": encode_problem(problem),
                "refutation": refutation,
            }
        )
    return prefix


def certify_result(
    result: GapResult,
    trials: int = 3,
    component_sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Certificate:
    """Package a :class:`GapResult` as a self-validating certificate.

    ``trials`` / ``component_sizes`` / ``seed`` shape the recorded
    transcript for ``"constant"`` verdicts (ignored otherwise).  The
    emitted certificate is pre-checked with the engine-free checker; a
    rejection raises :class:`CertificateError`.
    """
    body: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": result.status,
        "verdict": result.verdict_label(),
        "problem": encode_problem(result.problem),
    }
    if result.status == "constant":
        if result.algorithm is None or result.zero_round is None:
            raise CertificateError("constant verdict carries no algorithm")
        steps = result.constant_rounds or 0
        if component_sizes is None:
            # Multi-node random trees need max_degree >= 2; degenerate
            # problems fall back to isolated-node instances.
            component_sizes = (
                DEFAULT_COMPONENT_SIZES if result.problem.max_degree >= 2 else (1, 1)
            )
        body["rounds"] = steps
        body["chain"] = {
            "problems": [
                encode_problem(result.sequence.problem(j)) for j in range(steps + 1)
            ],
            "intermediates": [
                encode_problem(result.sequence.intermediate(j)) for j in range(steps)
            ],
            "zero_round": _encode_zero_round(result.zero_round),
        }
        body["transcript"] = record_transcript(
            result.problem,
            result.algorithm,
            component_sizes=component_sizes,
            trials=trials,
            seed=seed,
        )
    elif result.status == "fixed-point":
        if result.fixed_point_at is None:
            raise CertificateError("fixed-point verdict carries no step index")
        at = result.fixed_point_at
        body["fixed_point_at"] = at
        body["fixed_problem"] = encode_problem(result.sequence.problem(at))
        body["next_problem"] = encode_problem(result.sequence.problem(at + 1))
        body["refutations"] = _refutation_prefix(result, at + 1)
    elif result.status == "unknown":
        examined = result.unknown_since_step or 0
        body["unknown_since_step"] = examined
        body["note"] = result.note
        body["budget"] = (
            result.budget_diagnostics.as_dict()
            if result.budget_diagnostics is not None
            else None
        )
        body["prefix"] = _refutation_prefix(result, examined)
    else:
        raise CertificateError(f"cannot certify status {result.status!r}")

    certificate = Certificate(body)
    from repro.verify.check import check_certificate

    outcome = check_certificate(certificate)
    if not outcome.ok:
        raise CertificateError(
            "freshly produced certificate fails its own check "
            f"(engine bug): {'; '.join(outcome.errors)}"
        )
    return certificate


def certify_verdict(verdict, **kwargs) -> Certificate:
    """Certify a :class:`~repro.decidability.constant_time.ConstantTimeVerdict`
    via its underlying gap result."""
    result = getattr(verdict, "gap_result", None)
    if result is None:
        raise CertificateError("verdict carries no gap result to certify")
    return certify_result(result, **kwargs)


# ------------------------------------------------------------------- rebuild
def rebuild_algorithm(certificate: Certificate) -> LocalAlgorithm:
    """Reconstruct the synthesized algorithm from a ``"constant"``
    certificate's chain — no round-elimination operators are re-run; the
    chain *is* the algorithm description."""
    if certificate.kind != "constant":
        raise CertificateError(
            f"{certificate.kind!r} certificates carry no algorithm"
        )
    chain = certificate.body["chain"]
    problems = [decode_problem(p) for p in chain["problems"]]
    intermediates = [decode_problem(p) for p in chain["intermediates"]]
    zero_round = _decode_zero_round(problems[-1], chain["zero_round"])
    return compose_lifts(zero_round, problems, intermediates)


def replay_certificate(certificate: Certificate) -> List[str]:
    """Rebuild the algorithm and re-execute the recorded transcript,
    demanding bit-identical outputs.  Returns discrepancies (empty =
    exact reproduction) — the round-trip guarantee for serialized
    algorithm descriptions."""
    algorithm = rebuild_algorithm(certificate)
    return replay_transcript(
        certificate.problem(), algorithm, certificate.body["transcript"]
    )
