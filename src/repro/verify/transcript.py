"""Replayable execution transcripts for synthesized algorithms.

A transcript pins down a seeded family of random forest instances —
topology, identifier assignment, and input labeling — together with the
per-half-edge outputs a synthesized algorithm produced on them.  Three
consumers share this module:

* the certificate **producer** records a transcript while verifying a
  fresh ``"constant"`` verdict (:func:`record_transcript`);
* the engine-free **checker** re-derives the instance family from the
  recorded seed, confirms the transcript matches it (so a certificate
  cannot substitute hand-picked easy instances), and re-runs
  :func:`repro.lcl.checker.check_solution` on the recorded outputs
  (:func:`check_transcript`);
* the **replayer** re-executes a rebuilt algorithm on the recorded
  instances and demands bit-identical outputs
  (:func:`replay_transcript`) — the round-trip guarantee for serialized
  algorithm descriptions.

Imports are restricted to graphs, the LCL checker, and the LOCAL
simulator; the round-elimination engine never appears here.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.exceptions import CertificateError
from repro.graphs.core import Graph, HalfEdgeLabeling
from repro.graphs.generators import random_forest
from repro.graphs.ids import random_ids
from repro.lcl.checker import check_solution
from repro.lcl.codec import decode_label, encode_label
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.local.model import LocalAlgorithm, run_local_algorithm
from repro.utils.multiset import label_sort_key
from repro.utils.rng import SplittableRNG

#: Forest shape used when the caller does not choose one: a few non-trivial
#: components plus an isolated node, matching the historical default of
#: ``verify_on_random_forests``.
DEFAULT_COMPONENT_SIZES = (7, 5, 3, 1)


def generate_trials(
    problem: NodeEdgeCheckableLCL,
    component_sizes: Sequence[int] = DEFAULT_COMPONENT_SIZES,
    trials: int = 5,
    seed: int = 0,
) -> Iterator[Tuple[int, Graph, HalfEdgeLabeling, List[int]]]:
    """The seeded instance family, one ``(trial, graph, inputs, ids)`` at a
    time.

    The derivation is part of the certificate format: a root
    :class:`SplittableRNG` split per trial, one integer draw for the
    forest seed, one uniform draw from sorted ``Σ_in`` per half-edge, one
    integer draw for the identifier seed.  Producer and checker both call
    this function, which is what makes recorded instances re-derivable.
    """
    root = SplittableRNG(seed)
    inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
    for trial in range(trials):
        rng = root.child("trial", trial)
        graph = random_forest(
            component_sizes, max_degree=problem.max_degree, seed=rng.integer(0, 10**6)
        )
        inputs = HalfEdgeLabeling(
            graph,
            {
                h: inputs_sorted[rng.integer(0, len(inputs_sorted) - 1)]
                for h in graph.half_edges()
            },
        )
        ids = random_ids(graph, seed=rng.integer(0, 10**6))
        yield trial, graph, inputs, ids


def verify_algorithm_on_random_forests(
    problem: NodeEdgeCheckableLCL,
    algorithm: LocalAlgorithm,
    component_sizes: Sequence[int] = DEFAULT_COMPONENT_SIZES,
    trials: int = 5,
    seed: int = 0,
) -> bool:
    """Run ``algorithm`` over the seeded family and check every output.

    The behavior behind ``repro.roundelim.gap.verify_on_random_forests``;
    returns ``True`` iff every trial yields a valid solution.
    """
    for _, graph, inputs, ids in generate_trials(problem, component_sizes, trials, seed):
        simulation = run_local_algorithm(graph, algorithm, inputs=inputs, ids=ids)
        report = check_solution(problem, graph, inputs, simulation.outputs)
        if not report.is_valid:
            return False
    return True


# ---------------------------------------------------------------- recording
def _encode_labeling(labeling: HalfEdgeLabeling) -> List[List[Any]]:
    return [
        [v, port, encode_label(label)]
        for (v, port), label in sorted(labeling.items())
    ]


def _decode_labeling(graph: Graph, payload: Sequence[Sequence[Any]]) -> HalfEdgeLabeling:
    return HalfEdgeLabeling(
        graph, {(v, port): decode_label(enc) for v, port, enc in payload}
    )


def _encode_graph(graph: Graph) -> Dict[str, Any]:
    return {
        "num_nodes": graph.num_nodes,
        "edges": [list(edge) for edge in graph.edges()],
    }


def _decode_graph(payload: Dict[str, Any]) -> Graph:
    """Rebuild the exact port structure from recorded ``(u, pu, v, pv)``
    edges — independent of how the generator originally assigned ports."""
    num_nodes = int(payload["num_nodes"])
    ports: List[List[Tuple[int, int]]] = [[] for _ in range(num_nodes)]
    for u, pu, v, pv in payload["edges"]:
        for side, port, other in ((u, pu, (v, pv)), (v, pv, (u, pu))):
            while len(ports[side]) <= port:
                ports[side].append((-1, -1))
            ports[side][port] = other
    return Graph.from_port_map(ports)


def record_transcript(
    problem: NodeEdgeCheckableLCL,
    algorithm: LocalAlgorithm,
    component_sizes: Sequence[int] = DEFAULT_COMPONENT_SIZES,
    trials: int = 5,
    seed: int = 0,
) -> Dict[str, Any]:
    """Run ``algorithm`` over the seeded family and record everything.

    Raises :class:`~repro.exceptions.CertificateError` if any trial is
    invalid — an algorithm that fails its own verification must not be
    certified.
    """
    payload: Dict[str, Any] = {
        "seed": seed,
        "component_sizes": list(component_sizes),
        "trials": [],
    }
    for trial, graph, inputs, ids in generate_trials(
        problem, component_sizes, trials, seed
    ):
        simulation = run_local_algorithm(graph, algorithm, inputs=inputs, ids=ids)
        report = check_solution(problem, graph, inputs, simulation.outputs)
        if not report.is_valid:
            raise CertificateError(
                f"refusing to certify {problem.name!r}: trial {trial} failed "
                f"verification — {report}"
            )
        payload["trials"].append(
            {
                "trial": trial,
                "graph": _encode_graph(graph),
                "ids": list(ids),
                "inputs": _encode_labeling(inputs),
                "outputs": _encode_labeling(simulation.outputs),
            }
        )
    return payload


# ----------------------------------------------------------------- checking
def check_transcript(
    problem: NodeEdgeCheckableLCL, transcript: Dict[str, Any]
) -> List[str]:
    """Engine-free transcript validation; returns discrepancies.

    Confirms (a) the recorded instances are exactly the ones the recorded
    seed generates — topology, identifiers, and inputs alike — and
    (b) every recorded output labeling passes the Definition 2.4 checker.
    """
    errors: List[str] = []
    try:
        seed = int(transcript["seed"])
        component_sizes = [int(x) for x in transcript["component_sizes"]]
        recorded_trials = list(transcript["trials"])
    except (KeyError, TypeError, ValueError) as error:
        return [f"transcript payload is malformed: {error}"]
    if not recorded_trials:
        return ["transcript records no trials"]

    expected = {
        trial: (graph, inputs, ids)
        for trial, graph, inputs, ids in generate_trials(
            problem, component_sizes, len(recorded_trials), seed
        )
    }
    for index, recorded in enumerate(recorded_trials):
        where = f"trial #{index}"
        try:
            trial = int(recorded["trial"])
            graph = _decode_graph(recorded["graph"])
            ids = [int(x) for x in recorded["ids"]]
            inputs = _decode_labeling(graph, recorded["inputs"])
            outputs = _decode_labeling(graph, recorded["outputs"])
        except Exception as error:
            errors.append(f"{where} is malformed: {error}")
            continue
        generated = expected.get(trial)
        if generated is None:
            errors.append(f"{where} names unknown trial index {trial}")
            continue
        expected_graph, expected_inputs, expected_ids = generated
        # The (u, pu, v, pv) tuples pin down the whole port structure, so
        # order-insensitive equality is exact topology equality.
        if sorted(graph.edges()) != sorted(expected_graph.edges()) or (
            graph.num_nodes != expected_graph.num_nodes
        ):
            errors.append(f"{where}: recorded topology differs from the seeded family")
            continue
        if ids != list(expected_ids):
            errors.append(f"{where}: recorded identifiers differ from the seeded family")
        if dict(inputs.items()) != dict(expected_inputs.items()):
            errors.append(f"{where}: recorded inputs differ from the seeded family")
        report = check_solution(problem, graph, inputs, outputs)
        if not report.is_valid:
            errors.append(f"{where}: recorded outputs are not a valid solution — {report}")
    return errors


def replay_transcript(
    problem: NodeEdgeCheckableLCL,
    algorithm: LocalAlgorithm,
    transcript: Dict[str, Any],
) -> List[str]:
    """Re-execute ``algorithm`` on the recorded instances; demand
    bit-identical outputs.

    This is the strong form of the round-trip guarantee: a rebuilt
    algorithm description must reproduce the recorded run exactly, not
    merely produce *some* valid solution.
    """
    errors: List[str] = []
    for index, recorded in enumerate(transcript.get("trials", [])):
        where = f"trial #{index}"
        try:
            graph = _decode_graph(recorded["graph"])
            ids = [int(x) for x in recorded["ids"]]
            inputs = _decode_labeling(graph, recorded["inputs"])
            outputs = _decode_labeling(graph, recorded["outputs"])
        except Exception as error:
            errors.append(f"{where} is malformed: {error}")
            continue
        simulation = run_local_algorithm(graph, algorithm, inputs=inputs, ids=ids)
        if dict(simulation.outputs.items()) != dict(outputs.items()):
            errors.append(
                f"{where}: replayed outputs differ from the recorded outputs"
            )
    return errors
