"""The independent certificate checker — engine-free by construction.

``check_certificate`` re-establishes a certificate's claims using only
the LCL formalism (:mod:`repro.lcl`), the graph layer
(:mod:`repro.graphs`), and the LOCAL simulator's checker
(:func:`repro.lcl.checker.check_solution`).  It must **never** import
``repro.roundelim`` or ``repro.decidability`` — the point of a
certificate is that accepting it does not require trusting the engine
that produced it, and the test suite asserts this import boundary by
inspecting ``sys.modules`` from a fresh interpreter.

What acceptance means, per kind:

``constant``
    The recorded 0-round table genuinely solves the bottom problem of
    the chain (clique + cover conditions re-verified by brute force),
    and the recorded transcript is exactly the instance family its seed
    generates with outputs that :func:`check_solution` accepts on the
    *original* problem.  The chain links ``Π_j → Π_{j+1}`` themselves are
    the engine's construction; what the checker certifies end-to-end is
    that the claimed algorithm *behavior* solves the claimed problem.

``fixed-point``
    The recorded successor problem is isomorphic to the fixed problem
    (pure label-renaming search), and every step ``0 .. k`` carries a
    valid 0-round refutation — recomputed maximal cliques, re-exhausted
    witnesses.

``unknown``
    Every step of the verified prefix carries a valid refutation, so the
    anytime claim ``UNKNOWN(>= step k)`` is backed by ``k`` proofs.

Hostile or damaged input never raises: every defect becomes an entry in
:attr:`CheckOutcome.errors`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Union

from repro.exceptions import ReproError
from repro.lcl.codec import decode_problem
from repro.verify.certificate import KINDS, SCHEMA_VERSION, Certificate
from repro.verify.refute import check_refutation, check_zero_round_table
from repro.verify.transcript import check_transcript


@dataclass(frozen=True)
class CheckOutcome:
    """Result of independently checking one certificate."""

    ok: bool
    kind: str
    errors: Tuple[str, ...]
    #: Evidence volume actually re-verified (trials replayed, refutation
    #: steps re-exhausted, ...) — lets callers assert a check was not
    #: vacuous.
    counts: Dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        if self.ok:
            extras = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
            return f"certificate OK ({self.kind}; {extras})"
        lines = [f"certificate REJECTED ({self.kind}): {len(self.errors)} error(s)"]
        lines.extend(f"  {error}" for error in self.errors)
        return "\n".join(lines)


def _reject(kind: str, errors: List[str]) -> CheckOutcome:
    return CheckOutcome(ok=False, kind=kind, errors=tuple(errors))


def check_certificate(
    certificate: Union[Certificate, str, os.PathLike]
) -> CheckOutcome:
    """Re-establish a certificate's claims from its recorded evidence.

    Accepts a :class:`Certificate` or a filesystem path to one.  Never
    raises on malformed, damaged, or dishonest input — every defect is
    reported through :attr:`CheckOutcome.errors`.
    """
    if not isinstance(certificate, Certificate):
        try:
            certificate = Certificate.load(certificate)
        except ReproError as error:
            return _reject("?", [str(error)])

    body = certificate.body
    if body.get("schema") != SCHEMA_VERSION:
        return _reject("?", [f"unsupported schema {body.get('schema')!r}"])
    kind = body.get("kind")
    if kind not in KINDS:
        return _reject("?", [f"unknown certificate kind {kind!r}"])
    try:
        problem = decode_problem(body["problem"])
    except Exception as error:
        return _reject(kind, [f"certified problem cannot be decoded: {error}"])

    errors: List[str] = []
    counts: Dict[str, int] = {}
    try:
        if kind == "constant":
            _check_constant(problem, body, errors, counts)
        elif kind == "fixed-point":
            _check_fixed_point(problem, body, errors, counts)
        else:
            _check_unknown(problem, body, errors, counts)
    except Exception as error:  # hostile payload shapes must not raise
        errors.append(f"certificate body is malformed: {error!r}")
    return CheckOutcome(ok=not errors, kind=kind, errors=tuple(errors), counts=counts)


def _check_constant(problem, body: Dict[str, Any], errors: List[str], counts) -> None:
    chain = body["chain"]
    problems = [decode_problem(p) for p in chain["problems"]]
    if body.get("rounds") != len(problems) - 1:
        errors.append(
            f"declared rounds {body.get('rounds')!r} do not match the "
            f"{len(problems)}-problem chain"
        )
    if len(chain["intermediates"]) != len(problems) - 1:
        errors.append("chain problem/intermediate shape mismatch")
    if problems[0] != problem:
        errors.append("chain base differs from the certified problem")

    zero_round = chain["zero_round"]
    from repro.lcl.codec import decode_label

    clique = [decode_label(x) for x in zero_round["clique"]]
    table = {
        tuple(decode_label(x) for x in inputs): tuple(decode_label(x) for x in outputs)
        for inputs, outputs in zero_round["table"]
    }
    table_errors = check_zero_round_table(problems[-1], clique, table)
    errors.extend(f"zero-round table: {error}" for error in table_errors)
    counts["table_rules"] = len(table)

    transcript = body["transcript"]
    errors.extend(check_transcript(problem, transcript))
    counts["trials"] = len(transcript.get("trials", []))


def _check_refutation_steps(
    problem,
    steps: List[Dict[str, Any]],
    expected_count: int,
    errors: List[str],
    counts,
    label: str,
) -> Dict[int, Any]:
    """Shared refutation-list validation; returns decoded problems by step."""
    decoded: Dict[int, Any] = {}
    if [entry.get("step") for entry in steps] != list(range(expected_count)):
        errors.append(
            f"{label} must cover steps 0..{expected_count - 1} contiguously"
        )
        return decoded
    for entry in steps:
        step = entry["step"]
        try:
            step_problem = decode_problem(entry["problem"])
        except Exception as error:
            errors.append(f"{label} step {step}: problem cannot be decoded: {error}")
            continue
        decoded[step] = step_problem
        if step == 0 and step_problem != problem:
            errors.append(f"{label} step 0 is not the certified problem")
        step_errors = check_refutation(step_problem, entry["refutation"])
        errors.extend(f"{label} step {step}: {error}" for error in step_errors)
    counts["refutation_steps"] = len(steps)
    return decoded


def _check_fixed_point(problem, body: Dict[str, Any], errors: List[str], counts) -> None:
    at = body["fixed_point_at"]
    fixed_problem = decode_problem(body["fixed_problem"])
    next_problem = decode_problem(body["next_problem"])
    if not fixed_problem.is_isomorphic(next_problem):
        errors.append(
            "recorded successor problem is not isomorphic to the fixed "
            "problem — no fixed point is exhibited"
        )
    decoded = _check_refutation_steps(
        problem, list(body["refutations"]), at + 1, errors, counts, "refutations"
    )
    recorded_fixed = decoded.get(at)
    if recorded_fixed is not None and recorded_fixed != fixed_problem:
        errors.append(
            f"refutation step {at} does not match the declared fixed problem"
        )


def _check_unknown(problem, body: Dict[str, Any], errors: List[str], counts) -> None:
    examined = body["unknown_since_step"]
    prefix = list(body["prefix"])
    if len(prefix) != examined:
        errors.append(
            f"verified prefix has {len(prefix)} step(s) but claims "
            f"UNKNOWN(>= step {examined})"
        )
        return
    _check_refutation_steps(problem, prefix, examined, errors, counts, "prefix")
