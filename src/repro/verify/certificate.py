"""The ``Certificate`` artifact: a serializable, checksummed verdict proof.

A certificate packages one gap-pipeline verdict together with enough
machine-checkable evidence that an independent checker
(:mod:`repro.verify.check` — which deliberately never imports the
round-elimination engine) can re-establish the verdict's claims:

``kind == "constant"``
    The full synthesized-algorithm description (the hygiene-reduced
    problem chain ``Π_0 .. Π_k``, the ``R(Π_j)`` intermediates the
    Lemma 3.9 lifting selects pairs from, and the 0-round ``A_det``
    table), plus a replayable transcript: a seeded family of random
    forests with explicit inputs, identifiers, and the per-half-edge
    outputs the algorithm produced.  The checker re-validates the table
    against the clique-cover conditions and re-runs
    :func:`repro.lcl.checker.check_solution` on every trial.

``kind == "fixed-point"``
    The fixed-point problem ``Π_k``, its successor ``f(Π_k)`` (checked
    isomorphic with :meth:`NodeEdgeCheckableLCL.is_isomorphic` — pure
    LCL machinery), and a 0-round *refutation witness* for every step of
    the walk: per maximal self-looped clique, an input tuple that the
    clique provably cannot cover (brute-force exhaustion).

``kind == "unknown"``
    The verified sequence prefix: for every step the walk completed
    before its budget tripped, the problem at that step plus its 0-round
    refutation witness — the machine-checkable content of the anytime
    verdict ``UNKNOWN(>= step k)``.

Like :mod:`repro.roundelim.checkpoint` snapshots, the JSON rendering is
versioned and whole-file checksummed, so truncation, bit-rot, and
tampering are all *detected* — a damaged certificate fails its check, it
never silently passes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict

from repro.exceptions import CertificateError
from repro.lcl.codec import decode_problem
from repro.lcl.nec import NodeEdgeCheckableLCL

#: Bump on any incompatible change to the certificate body layout.
SCHEMA_VERSION = 1

#: The three certificate kinds, matching ``GapResult.status``.
KINDS = ("constant", "fixed-point", "unknown")


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def body_checksum(body: Dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON rendering of the body."""
    return sha256(_canonical_json(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Certificate:
    """An immutable, JSON-native certificate body.

    The body holds only JSON-representable values (the constructor
    normalizes via a JSON round trip), so ``to_json``/``from_json`` are
    bit-identical inverses: serializing a certificate, parsing it back,
    and serializing again yields the same byte string.
    """

    body: Dict[str, Any]

    def __post_init__(self) -> None:
        normalized = json.loads(_canonical_json(self.body))
        object.__setattr__(self, "body", normalized)

    # -------------------------------------------------------------- accessors
    @property
    def kind(self) -> str:
        """``"constant"`` / ``"fixed-point"`` / ``"unknown"``."""
        return self.body.get("kind", "?")

    @property
    def verdict(self) -> str:
        """The human-readable verdict label the certificate backs."""
        return self.body.get("verdict", self.kind)

    def problem(self) -> NodeEdgeCheckableLCL:
        """The certified problem, rebuilt bit-identically."""
        return decode_problem(self.body["problem"])

    def summary(self) -> str:
        lines = [
            f"certificate for {self.body.get('problem', {}).get('name', '?')!r}: "
            f"{self.verdict}"
        ]
        if self.kind == "constant":
            transcript = self.body.get("transcript", {})
            lines.append(
                f"  {self.body.get('rounds')}-round algorithm, "
                f"{len(transcript.get('trials', []))} replayable trial(s)"
            )
        elif self.kind == "fixed-point":
            lines.append(
                f"  RE fixed point at step {self.body.get('fixed_point_at')}, "
                f"{len(self.body.get('refutations', []))} step refutation(s)"
            )
        else:
            lines.append(
                f"  verified prefix: {len(self.body.get('prefix', []))} step(s) "
                f"proved not 0-round solvable"
            )
        return "\n".join(lines)

    # ---------------------------------------------------------- serialization
    def to_json(self) -> str:
        """The canonical JSON envelope ``{"body": ..., "checksum": ...}``."""
        return _canonical_json({"body": self.body, "checksum": body_checksum(self.body)})

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        """Parse an envelope; raises :class:`CertificateError` when the
        JSON is unreadable, the checksum fails, or the schema is foreign.

        (The independent checker re-verifies all of this itself and
        *reports* rather than raises; this constructor is for cooperating
        callers that want a typed error.)
        """
        try:
            envelope = json.loads(text)
            body = envelope["body"]
            recorded = envelope["checksum"]
        except (ValueError, KeyError, TypeError) as error:
            raise CertificateError(f"unreadable certificate envelope: {error}") from error
        if not isinstance(body, dict):
            raise CertificateError("certificate body must be an object")
        if body_checksum(body) != recorded:
            raise CertificateError("certificate checksum mismatch (file damaged?)")
        if body.get("schema") != SCHEMA_VERSION:
            raise CertificateError(
                f"unsupported certificate schema {body.get('schema')!r}"
            )
        if body.get("kind") not in KINDS:
            raise CertificateError(f"unknown certificate kind {body.get('kind')!r}")
        return cls(body)

    def save(self, path: os.PathLike) -> Path:
        """Write the envelope atomically (tmp file + ``os.replace``)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + f".tmp{os.getpid()}")
        tmp.write_text(self.to_json() + "\n", encoding="utf-8")
        os.replace(tmp, target)
        return target

    @classmethod
    def load(cls, path: os.PathLike) -> "Certificate":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise CertificateError(f"cannot read certificate {path}: {error}") from error
        return cls.from_json(text)
