"""Certificate-carrying verdicts: produce, serialize, and independently check.

Two halves with a deliberate import boundary:

* the **checker** half (:class:`Certificate`, :func:`check_certificate`,
  :class:`CheckOutcome`, and the :mod:`~repro.verify.refute` /
  :mod:`~repro.verify.transcript` evidence modules) imports only the LCL
  formalism, the graph layer, and the LOCAL simulator — never the
  round-elimination engine.  ``import repro.verify`` therefore stays
  engine-free;
* the **producer** half (:func:`certify_result`, :func:`certify_verdict`,
  :func:`rebuild_algorithm`, :func:`replay_certificate`) needs the engine
  and is loaded lazily on first attribute access (PEP 562), so checking a
  certificate never drags the machinery that made it into the process.

See ``docs/TESTING.md`` for the certificate format and the conformance
harness built on top of this package.
"""

from __future__ import annotations

from repro.verify.certificate import KINDS, SCHEMA_VERSION, Certificate
from repro.verify.check import CheckOutcome, check_certificate

__all__ = [
    "KINDS",
    "SCHEMA_VERSION",
    "Certificate",
    "CheckOutcome",
    "check_certificate",
    "certify_result",
    "certify_verdict",
    "rebuild_algorithm",
    "replay_certificate",
]

_PRODUCER_EXPORTS = (
    "certify_result",
    "certify_verdict",
    "rebuild_algorithm",
    "replay_certificate",
)


def __getattr__(name: str):
    if name in _PRODUCER_EXPORTS:
        from repro.verify import certify

        return getattr(certify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
