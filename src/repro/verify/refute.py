"""Independent 0-round (non-)solvability evidence: build and check.

Theorem 3.10's base decision — "does ``Π`` admit a deterministic 0-round
algorithm?" — has a finite characterization (see
:mod:`repro.roundelim.zero_round`): the labels a 0-round algorithm ever
outputs form a *self-looped clique* of the edge-compatibility graph, and
that clique must *cover* every input tuple (choose, per tuple, outputs
inside ``g`` whose multiset is a node configuration).  Both sides of the
decision therefore admit small, self-contained evidence:

* **positive** — the ``A_det`` table itself.  :func:`check_zero_round_table`
  re-verifies the clique condition and the cover condition directly
  against the problem, by brute force, without consulting the engine
  that produced the table;
* **negative** — a :func:`build_refutation` witness: the complete list
  of maximal self-looped cliques, and for each of them one input tuple
  the clique cannot cover.  :func:`check_refutation` *recomputes* the
  maximal cliques with its own enumeration (so a certificate cannot
  hide a clique) and re-exhausts each recorded tuple by backtracking
  over every output choice — a brute-force exhaustion witness.  Since
  any 0-round algorithm's label set is contained in some maximal clique,
  and shrinking a clique only makes covering harder, defeating every
  maximal clique defeats every algorithm.

Everything here imports only the LCL formalism at module level — it is
shared by the certificate producer (:mod:`repro.verify.certify`) and the
independent checker (:mod:`repro.verify.check`).  The *builder* half
(:func:`build_refutation`) may consult the CNF engine of
:mod:`repro.sat` (lazily imported, dispatch under ``REPRO_SAT``) to
decide each clique, but every recorded witness is re-derived from the
encoder's oracle-order candidate table and the *checker* half never
touches the engine: :func:`check_refutation` re-exhausts each witness by
the same brute force regardless of which engine proposed it.
"""

from __future__ import annotations

import itertools
import logging
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lcl.codec import decode_label, encode_label
from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.utils.multiset import Multiset, label_sort_key

logger = logging.getLogger(__name__)

#: Operator name under which the SAT dispatch records its stats.
_STAT_KEY = "refute"


def self_looped_cliques(problem: NodeEdgeCheckableLCL) -> List[FrozenSet[Any]]:
    """All maximal cliques of the edge-compatibility graph restricted to
    self-looped labels, in a deterministic order.

    Independent of the engine's Bron–Kerbosch implementation: plain
    ordered expansion with an explicit maximality filter.  Post-hygiene
    alphabets are small, so quadratic bookkeeping is irrelevant here and
    the straight-line code doubles as a cross-check of the engine's
    pivoted search.
    """
    vertices = [
        label
        for label in sorted(problem.sigma_out, key=label_sort_key)
        if problem.allows_edge(label, label)
    ]
    adjacency: Dict[Any, FrozenSet[Any]] = {
        v: frozenset(u for u in vertices if u != v and problem.allows_edge(u, v))
        for v in vertices
    }
    cliques: List[FrozenSet[Any]] = []

    def expand(clique: Tuple[Any, ...], candidates: List[Any]) -> None:
        extended = False
        for index, vertex in enumerate(candidates):
            extended = True
            expand(
                clique + (vertex,),
                [u for u in candidates[index + 1 :] if u in adjacency[vertex]],
            )
        if not extended and clique:
            grown = frozenset(clique)
            # Maximal iff no vertex outside is adjacent to all members.
            if not any(
                grown <= adjacency[v] for v in vertices if v not in grown
            ):
                if grown not in cliques:
                    cliques.append(grown)

    expand((), vertices)
    return cliques


#: Observable accounting for the candidate hoist in
#: :func:`uncoverable_tuple`: ``candidate_lists`` counts how many
#: ``g(input) ∩ clique`` lists were materialized.  After the hoist that
#: is one per input label per call; before it, one per *port of every
#: enumerated tuple* — combinatorially more.  A regression test pins the
#: post-hoist count.
_candidate_stats: Dict[str, int] = {"candidate_lists": 0}


def _sorted_candidates(
    problem: NodeEdgeCheckableLCL, clique: FrozenSet[Any], input_label: Any
) -> Tuple[Any, ...]:
    """``g(input) ∩ clique`` in deterministic order (counted for tests)."""
    _candidate_stats["candidate_lists"] += 1
    return tuple(
        sorted(problem.allowed_outputs(input_label) & clique, key=label_sort_key)
    )


def uncoverable_tuple(
    problem: NodeEdgeCheckableLCL,
    clique: FrozenSet[Any],
    degrees: Optional[Sequence[int]] = None,
) -> Optional[Tuple[int, Tuple[Any, ...]]]:
    """An input tuple ``clique`` cannot cover, or ``None`` if it covers all.

    Returns ``(degree, input_tuple)`` for the first (in deterministic
    order) tuple for which no per-port output choice from
    ``g(input) ∩ clique`` forms a node configuration.
    """
    chosen_degrees = tuple(sorted(degrees)) if degrees is not None else problem.degrees()
    inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
    # ``g(i) ∩ clique`` depends only on the input label, never on the
    # tuple it sits in, so the candidate lists are hoisted out of the
    # tuple enumeration: |sigma_in| computations per call instead of one
    # per port per tuple.
    candidates_by_input = {
        input_label: _sorted_candidates(problem, clique, input_label)
        for input_label in inputs_sorted
    }
    for degree in chosen_degrees:
        allowed = problem.node_constraints.get(degree, frozenset())
        for input_tuple in itertools.combinations_with_replacement(inputs_sorted, degree):
            ports = [candidates_by_input[i] for i in input_tuple]
            if not _covers_candidates(allowed, ports):
                return degree, input_tuple
    return None


def _covers(
    problem: NodeEdgeCheckableLCL, clique: FrozenSet[Any], input_tuple: Tuple[Any, ...]
) -> bool:
    """Exhaustive search: can ``clique`` label this input tuple?

    The standalone per-tuple entry point used by :func:`check_refutation`
    — it recomputes its candidate lists from scratch so checking one
    witness shares no state with the builder.
    """
    allowed = problem.node_constraints.get(len(input_tuple), frozenset())
    candidates = [
        tuple(sorted(problem.allowed_outputs(i) & clique, key=label_sort_key))
        for i in input_tuple
    ]
    return _covers_candidates(allowed, candidates)


def _covers_candidates(
    allowed: FrozenSet[Multiset], candidates: Sequence[Tuple[Any, ...]]
) -> bool:
    """Backtracking over precomputed per-port candidate lists."""
    if not allowed:
        return False
    chosen: List[Any] = []

    def recurse(index: int) -> bool:
        if index == len(candidates):
            return Multiset(chosen) in allowed
        for label in candidates[index]:
            chosen.append(label)
            if recurse(index + 1):
                return True
            chosen.pop()
        return False

    return recurse(0)


# --------------------------------------------------------------- refutations
def _witness_entry(
    clique: FrozenSet[Any], degree: int, input_tuple: Tuple[Any, ...]
) -> Dict[str, Any]:
    """The serialized per-clique witness — shared by both engines, so the
    refutation payload is byte-identical regardless of which one ran."""
    return {
        "clique": [encode_label(x) for x in sorted(clique, key=label_sort_key)],
        "degree": degree,
        "inputs": [encode_label(x) for x in input_tuple],
    }


def build_refutation(problem: NodeEdgeCheckableLCL) -> Optional[Dict[str, Any]]:
    """A serializable witness that ``Π`` is *not* 0-round solvable.

    Returns ``None`` when no refutation exists (i.e. some maximal clique
    covers everything — the problem *is* 0-round solvable).

    Dispatch: under ``REPRO_SAT`` (default on) the per-clique cover
    questions are answered by incremental assumption queries against one
    CNF formula (:mod:`repro.sat`, imported lazily so the checker half of
    this module stays engine-free), with each uncoverable-tuple witness
    read back from the encoder's oracle-order candidate table — the
    payload is byte-identical to the enumeration path's, which any
    :class:`~repro.sat.SatError` falls back to (counted as
    ``sat_fallbacks`` under the ``refute`` operator).
    """
    from repro import sat
    from repro.utils import cache as operator_cache

    if sat.sat_enabled():
        try:
            return _build_refutation_sat(problem)
        except sat.SatError as error:
            logger.info(
                "SAT path declined refutation of %s (%s); enumerating",
                problem.name,
                error,
            )
            operator_cache.record(_STAT_KEY, sat_fallbacks=1)
    return _build_refutation_enumeration(problem)


def _build_refutation_enumeration(
    problem: NodeEdgeCheckableLCL,
) -> Optional[Dict[str, Any]]:
    """The complete exhaustive builder (the differential oracle)."""
    witnesses = []
    for clique in self_looped_cliques(problem):
        witness = uncoverable_tuple(problem, clique)
        if witness is None:
            return None
        degree, input_tuple = witness
        witnesses.append(_witness_entry(clique, degree, input_tuple))
    return {"witnesses": witnesses}


def _build_refutation_sat(problem: NodeEdgeCheckableLCL) -> Optional[Dict[str, Any]]:
    """SAT-backed refutation builder, pinned to the enumeration order.

    One loaded formula, queried per clique of :func:`self_looped_cliques`
    (the *checker's* clique order, so the witness list is identical to
    the enumeration builder's).  A satisfiable clique means the problem
    is 0-round solvable — no refutation — and the model is validated by
    the encoder's decoder before being believed.  An unsatisfiable
    clique contributes the oracle-order first uncoverable tuple, read
    from the encoder's candidate table
    (:meth:`~repro.sat.ZeroRoundEncoder.first_uncoverable`), which is a
    direct recomputation rather than a decoded model — a lying solver
    can only cause a :class:`~repro.sat.SatDecodeError` fallback, never
    a wrong witness.
    """
    from repro import sat
    from repro.utils import cache as operator_cache

    encoder = sat.ZeroRoundEncoder(problem, problem.degrees())
    witnesses: List[Dict[str, Any]] = []
    with sat.SatSolver(
        encoder.formula, decision_order=encoder.decision_order()
    ) as solver:
        for clique in self_looped_cliques(problem):
            model = solver.solve(encoder.assumptions_excluding(clique))
            if model is not None:
                encoder.decode_clique(model)  # validation only; raises on a lie
                operator_cache.record(_STAT_KEY, sat_steps=1)
                return None
            witness = encoder.first_uncoverable(clique)
            if witness is None:
                raise sat.SatDecodeError(
                    f"solver calls clique "
                    f"{sorted(clique, key=label_sort_key)!r} uncovering, but "
                    f"every input tuple has a candidate — refusing the witness"
                )
            degree, input_tuple = witness
            witnesses.append(_witness_entry(clique, degree, input_tuple))
    operator_cache.record(_STAT_KEY, sat_steps=1)
    return {"witnesses": witnesses}


def check_refutation(
    problem: NodeEdgeCheckableLCL, refutation: Dict[str, Any]
) -> List[str]:
    """Independently verify a :func:`build_refutation` witness.

    Returns a list of discrepancies (empty means the refutation stands):

    * the recorded clique list must equal the *recomputed* set of maximal
      self-looped cliques — a witness cannot omit a clique;
    * for every clique, the recorded input tuple must be well-formed and
      provably uncoverable, re-established by exhaustive search here.
    """
    errors: List[str] = []
    try:
        witnesses = list(refutation["witnesses"])
    except (KeyError, TypeError):
        return ["refutation payload is malformed"]

    try:
        recorded = [
            frozenset(decode_label(x) for x in witness["clique"])
            for witness in witnesses
        ]
    except Exception as error:  # decode errors on hostile payloads
        return [f"refutation cliques cannot be decoded: {error}"]
    expected = self_looped_cliques(problem)
    if sorted(recorded, key=lambda c: sorted(map(label_sort_key, c))) != sorted(
        expected, key=lambda c: sorted(map(label_sort_key, c))
    ):
        errors.append(
            f"recorded clique list ({len(recorded)}) does not match the "
            f"recomputed maximal self-looped cliques ({len(expected)})"
        )

    declared = set(problem.degrees())
    sigma_in = problem.sigma_in
    for index, witness in enumerate(witnesses):
        try:
            clique = frozenset(decode_label(x) for x in witness["clique"])
            degree = int(witness["degree"])
            input_tuple = tuple(decode_label(x) for x in witness["inputs"])
        except Exception as error:
            errors.append(f"witness #{index} is malformed: {error}")
            continue
        if degree not in declared:
            errors.append(f"witness #{index} names undeclared degree {degree}")
            continue
        if len(input_tuple) != degree:
            errors.append(f"witness #{index} input tuple has wrong arity")
            continue
        if any(i not in sigma_in for i in input_tuple):
            errors.append(f"witness #{index} uses labels outside sigma_in")
            continue
        if not clique <= problem.sigma_out:
            errors.append(f"witness #{index} clique leaves sigma_out")
            continue
        if _covers(problem, clique, input_tuple):
            errors.append(
                f"witness #{index}: clique "
                f"{sorted(clique, key=label_sort_key)!r} DOES cover input "
                f"tuple {input_tuple!r} — exhaustion claim is false"
            )
    return errors


# ------------------------------------------------------- positive-side check
def check_zero_round_table(
    problem: NodeEdgeCheckableLCL,
    clique: Sequence[Any],
    table: Dict[Tuple[Any, ...], Tuple[Any, ...]],
) -> List[str]:
    """Independently verify a recorded ``A_det`` table solves ``Π`` in
    0 rounds (the two conditions of the Theorem 3.10 base case).

    Returns discrepancies; empty means the table is a valid deterministic
    0-round algorithm for the problem's declared degrees.
    """
    errors: List[str] = []
    used = set()
    # Populating a membership set: no order reaches any serialized byte
    # (consumers below iterate `used` via sorted(..., key=label_sort_key)).
    for outputs in table.values():  # repro-lint: disable=REP002
        used.update(outputs)
    clique_set = frozenset(clique)
    if not used <= clique_set:
        errors.append("table outputs labels outside its declared clique")
    if not clique_set <= problem.sigma_out:
        errors.append("declared clique leaves sigma_out")
    # Condition 2: every pair of ever-output labels is edge-compatible
    # (including self-pairs) — the adversary can place any two tuples on
    # adjacent nodes.
    for a in sorted(used, key=label_sort_key):
        for b in sorted(used, key=label_sort_key):
            if not problem.allows_edge(a, b):
                errors.append(
                    f"output labels {a!r}, {b!r} are not edge-compatible"
                )
    # Condition 1: the table covers every input tuple of every declared
    # degree, with outputs inside g and a multiset in N.
    inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
    for degree in problem.degrees():
        for input_tuple in itertools.combinations_with_replacement(inputs_sorted, degree):
            outputs = table.get(tuple(input_tuple))
            if outputs is None:
                errors.append(f"no rule for input tuple {input_tuple!r}")
                continue
            if len(outputs) != degree:
                errors.append(f"rule for {input_tuple!r} has wrong arity")
                continue
            for input_label, output in zip(input_tuple, outputs):
                if output not in problem.allowed_outputs(input_label):
                    errors.append(
                        f"rule for {input_tuple!r}: g({input_label!r}) "
                        f"rejects {output!r}"
                    )
            if not problem.allows_node(Multiset(outputs)):
                errors.append(
                    f"rule for {input_tuple!r}: outputs {outputs!r} are not "
                    f"a node configuration"
                )
    return errors
