"""SAT-backed decision kernels for the landscape classification.

The brute-force decision procedures at the heart of the pipeline — is
``f^k(Π)`` 0-round solvable? which input tuple defeats a clique? — are
re-expressed here as CNF (:mod:`repro.sat.encode`), solved by ``pysat``
when installed or by the bundled pure-Python DPLL otherwise
(:mod:`repro.sat.solver` / :mod:`repro.sat.dpll`), and decoded back into
the *same* witness shapes the enumeration engine produces, so
certificates and canonical hashes are byte-identical regardless of which
engine answered.

Dispatch is governed by the ``REPRO_SAT`` knob (default on) or the
process-local :func:`configure_sat` override; every condition the SAT
path cannot handle — unsupported shapes, solver budget trips, failed
model validation — raises a :class:`~repro.sat.errors.SatError` that the
calling kernel converts into an automatic enumeration fallback, counted
per-operator as ``sat_fallbacks`` next to the served ``sat_steps``.

This package never imports :mod:`repro.roundelim` or
:mod:`repro.decidability` (lint rule REP003): the engine kernels import
*us*, and the import-pure checker half of :mod:`repro.verify` reaches us
lazily inside function bodies.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sat.cnf import CnfFormula
from repro.sat.dpll import DpllSolver, solve_formula
from repro.sat.encode import MAX_DEGREE, MAX_TUPLES, ZeroRoundEncoder
from repro.sat.errors import (
    SatBudgetExceeded,
    SatDecodeError,
    SatError,
    SatUnsupported,
)
from repro.sat.solver import SatSolver
from repro.utils import env

__all__ = [
    "CnfFormula",
    "DpllSolver",
    "MAX_DEGREE",
    "MAX_TUPLES",
    "SatBudgetExceeded",
    "SatDecodeError",
    "SatError",
    "SatSolver",
    "SatUnsupported",
    "ZeroRoundEncoder",
    "configure_sat",
    "sat_enabled",
    "solve_formula",
]

_ENV_SAT = "REPRO_SAT"

#: Programmatic override for the ``REPRO_SAT`` knob (``None`` = env).
_sat_overrides: Dict[str, Optional[bool]] = {"enabled": None}


def configure_sat(enabled: Optional[bool] = None) -> None:
    """Override the ``REPRO_SAT`` knob for this process.

    ``True`` forces the SAT decision kernels, ``False`` forces pure
    enumeration, ``None`` clears the override (falling back to the
    environment knob, default on).  Unsupported shapes and solver budget
    trips always fall back to enumeration regardless of this setting.
    """
    _sat_overrides["enabled"] = enabled


def sat_enabled() -> bool:
    """Should decision kernels attempt the SAT path for this call?"""
    override = _sat_overrides["enabled"]
    if override is not None:
        return bool(override)
    return env.get_bool(_ENV_SAT)
