"""A minimal CNF container shared by the encoder and both solver backends.

Variables are positive integers handed out by :meth:`CnfFormula.new_var`;
a literal is a signed variable (DIMACS convention).  Clauses are stored as
immutable tuples in insertion order — the encoder streams clauses in a
deterministic order derived from the canonical label order
(:func:`repro.utils.multiset.label_sort_key`), so two runs over the same
problem produce the same variable numbering and the same clause sequence,
which keeps solver behavior (and therefore fallback/timeout behavior)
reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.sat.errors import SatUnsupported

#: Hard ceiling on formula size; the encoder declines larger instances so
#: the pure-Python solver can never be handed a multi-megabyte formula.
MAX_VARIABLES = 200_000
MAX_CLAUSES = 1_000_000


class CnfFormula:
    """A growable CNF formula with validated clause insertion."""

    __slots__ = ("num_vars", "clauses")

    def __init__(self) -> None:
        self.num_vars: int = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate and return the next variable (1-based)."""
        if self.num_vars >= MAX_VARIABLES:
            raise SatUnsupported(
                f"formula exceeds {MAX_VARIABLES} variables"
            )
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Append one clause.  An *empty* clause is legal and makes the
        formula trivially unsatisfiable (the encoder emits one when an
        input tuple has no candidate configuration at all)."""
        clause = tuple(literals)
        for literal in clause:
            if literal == 0 or abs(literal) > self.num_vars:
                raise ValueError(f"literal {literal} names no allocated variable")
        if len(self.clauses) >= MAX_CLAUSES:
            raise SatUnsupported(f"formula exceeds {MAX_CLAUSES} clauses")
        self.clauses.append(clause)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def satisfied_by(self, model: Dict[int, bool]) -> bool:
        """Does ``model`` (a total assignment) satisfy every clause?"""
        for clause in self.clauses:
            if not any(model[abs(lit)] == (lit > 0) for lit in clause):
                return False
        return True

    def __repr__(self) -> str:
        return f"CnfFormula(vars={self.num_vars}, clauses={self.num_clauses})"
