"""CNF encoding of the Theorem 3.10 base case (0-round solvability).

A deterministic 0-round algorithm for a node-edge-checkable LCL exists
iff some *self-looped clique* ``C`` of the edge-compatibility graph
*covers* every input tuple: for each tuple there is an allowed node
configuration, achievable under ``g``, whose support lies inside ``C``
(see :mod:`repro.roundelim.zero_round`).  :class:`ZeroRoundEncoder`
expresses exactly that as CNF:

* one selector variable ``s_ℓ`` per self-looped output label ``ℓ``
  ("``ℓ`` may be output"), allocated in canonical label order;
* a binary clause ``(¬s_a ∨ ¬s_b)`` per *non*-adjacent self-looped pair —
  the selected labels form a clique;
* one variable ``u_{t,c}`` per (input tuple ``t``, *candidate*
  configuration ``c``) — candidates are the allowed configurations of
  ``t``'s degree whose support is self-looped and which are achievable
  for ``t`` under ``g`` (a clique-independent property, computed once
  here); plus implications ``(¬u_{t,c} ∨ s_ℓ)`` for every ``ℓ`` in
  ``c``'s support and one cover clause ``(∨_c u_{t,c})`` per tuple.

The formula is satisfiable iff the problem is 0-round solvable, and a
query under assumptions ``¬s_ℓ`` for every ``ℓ`` outside a given clique
answers "does *this* clique cover everything?" — the per-maximal-clique
question the enumeration engine answers by backtracking.

Fidelity contract
-----------------
Tuples are enumerated exactly as the enumeration oracle does (sorted
degrees, ``combinations_with_replacement`` over inputs sorted by
:func:`~repro.utils.multiset.label_sort_key`), and per-tuple candidate
lists are kept in canonical configuration order, so
:meth:`first_uncoverable` reproduces the *same* witness tuple
:func:`repro.verify.refute.uncoverable_tuple` finds — certificates are
byte-identical regardless of which engine answered.  Oversized shapes
(degree above :data:`MAX_DEGREE`, tuple blow-ups past
:data:`MAX_TUPLES`) raise :exc:`~repro.sat.errors.SatUnsupported`
*before* any stats mutation so dispatch can fall back cleanly, and
:meth:`decode_clique` never trusts a model: totality, clause
satisfaction, cliqueness, and full cover are all re-validated here,
independent of the solver.

This module deliberately imports nothing from :mod:`repro.roundelim` or
:mod:`repro.decidability` (lint rule REP003): the import-pure checker
half of :mod:`repro.verify` reaches it lazily.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.lcl.nec import NodeEdgeCheckableLCL
from repro.sat.cnf import CnfFormula
from repro.sat.errors import SatDecodeError, SatUnsupported
from repro.utils.multiset import label_sort_key

#: Node degrees the encoder covers; achievability matching is factorial in
#: the degree, so larger tuples fall back to enumeration.
MAX_DEGREE = 6
#: Upper bound on the number of input tuples across all degrees.
MAX_TUPLES = 20_000

#: A candidate: (configuration as a sorted rank tuple, its support ranks).
_Candidate = Tuple[Tuple[int, ...], FrozenSet[int]]


def _achievable(
    items: Tuple[int, ...], ports: Tuple[FrozenSet[int], ...]
) -> bool:
    """Can the configuration's items be assigned one-per-port within g?

    ``items`` is the multiset of output ranks, ``ports`` the allowed rank
    set of each port's input label.  Backtracking with duplicate-skip;
    degree is capped at :data:`MAX_DEGREE` so this stays trivial.
    """
    first = ports[0]
    if all(port is first or port == first for port in ports):
        return all(rank in first for rank in items)
    remaining: List[Optional[int]] = list(items)

    def recurse(index: int) -> bool:
        if index == len(ports):
            return True
        tried = set()
        for position, rank in enumerate(remaining):
            if rank is None or rank in tried:
                continue
            tried.add(rank)
            if rank in ports[index]:
                remaining[position] = None
                if recurse(index + 1):
                    return True
                remaining[position] = rank
        return False

    return recurse(0)


class ZeroRoundEncoder:
    """CNF for "``problem`` is 0-round solvable on the given degrees"."""

    def __init__(
        self,
        problem: NodeEdgeCheckableLCL,
        degrees: Optional[Iterable[int]] = None,
    ) -> None:
        self.problem = problem
        chosen = (
            tuple(sorted(degrees)) if degrees is not None else problem.degrees()
        )
        if not chosen:
            raise SatUnsupported("problem declares no degrees to cover")
        if chosen[-1] > MAX_DEGREE:
            raise SatUnsupported(
                f"node degree {chosen[-1]} exceeds the encoder cap {MAX_DEGREE}"
            )
        self.degrees = chosen

        # Canonical label universe: ranks follow label_sort_key order, so
        # variable numbering and clause order are process-independent.
        self._labels: List[Any] = sorted(problem.sigma_out, key=label_sort_key)
        rank: Dict[Any, int] = {
            label: index for index, label in enumerate(self._labels)
        }
        self._rank = rank

        # Self-loops and adjacency, read off the edge constraint directly
        # (set-population only: no order reaches any output).
        looped: set = set()
        adjacent: set = set()
        for configuration in problem.edge_constraint:
            first, second = configuration.items
            rank_a, rank_b = rank[first], rank[second]
            if rank_a == rank_b:
                looped.add(rank_a)
            else:
                adjacent.add((rank_a, rank_b) if rank_a < rank_b else (rank_b, rank_a))
        self._selfloop_ranks: List[int] = sorted(looped)
        self._adjacent = frozenset(adjacent)

        # g images as rank sets, per input label.
        g_ranks: Dict[Any, FrozenSet[int]] = {
            label: frozenset(
                rank[output]
                for output in problem.allowed_outputs(label)
                if output in rank
            )
            for label in problem.sigma_in
        }

        formula = CnfFormula()
        self._svar: Dict[int, int] = {
            looped_rank: formula.new_var() for looped_rank in self._selfloop_ranks
        }
        for index, rank_a in enumerate(self._selfloop_ranks):
            svar_a = self._svar[rank_a]
            for rank_b in self._selfloop_ranks[index + 1 :]:
                if (rank_a, rank_b) not in self._adjacent:
                    formula.add_clause((-svar_a, -self._svar[rank_b]))

        # Candidate configurations per degree: allowed, self-looped
        # support, in canonical (rank tuple) order.
        selfloop_set = frozenset(self._selfloop_ranks)
        candidates_by_degree: Dict[int, List[_Candidate]] = {}
        for degree in chosen:
            entries: List[_Candidate] = []
            for configuration in problem.node_constraints.get(degree, frozenset()):
                ranks = tuple(sorted(rank[item] for item in configuration.items))
                support = frozenset(ranks)
                if support <= selfloop_set:
                    entries.append((ranks, support))
            entries.sort()
            candidates_by_degree[degree] = entries

        # Input tuples in the oracle's exact enumeration order, each with
        # its achievable candidates and its freshly numbered u-variables.
        inputs_sorted = sorted(problem.sigma_in, key=label_sort_key)
        #: (degree, input tuple, candidates) per tuple, in witness order.
        self._tuples: List[Tuple[int, Tuple[Any, ...], List[_Candidate]]] = []
        #: var -> human-readable role, for the relabeling-invariance tests.
        self._semantics: Dict[int, Tuple[Any, ...]] = {}
        #: u-variables in allocation (tuple, candidate) order.
        self._uvars: List[int] = []
        for looped_rank in self._selfloop_ranks:
            self._semantics[self._svar[looped_rank]] = (
                "s",
                self._labels[looped_rank],
            )
        for degree in chosen:
            entries = candidates_by_degree[degree]
            for input_tuple in itertools.combinations_with_replacement(
                inputs_sorted, degree
            ):
                if len(self._tuples) >= MAX_TUPLES:
                    raise SatUnsupported(
                        f"input tuple count exceeds the encoder cap {MAX_TUPLES}"
                    )
                ports = tuple(g_ranks[label] for label in input_tuple)
                achievable = [
                    entry for entry in entries if _achievable(entry[0], ports)
                ]
                tuple_index = len(self._tuples)
                cover_clause: List[int] = []
                for ranks, support in achievable:
                    uvar = formula.new_var()
                    cover_clause.append(uvar)
                    self._uvars.append(uvar)
                    self._semantics[uvar] = (
                        "u",
                        tuple_index,
                        tuple(self._labels[item] for item in ranks),
                    )
                    for looped_rank in sorted(support):
                        formula.add_clause((-uvar, self._svar[looped_rank]))
                formula.add_clause(cover_clause)
                self._tuples.append((degree, input_tuple, achievable))
        self.formula = formula

    # ------------------------------------------------------------- queries
    @property
    def num_tuples(self) -> int:
        return len(self._tuples)

    def selector_var(self, label: Any) -> int:
        """The ``s`` variable of a self-looped output label."""
        looped_rank = self._rank.get(label)
        if looped_rank is None or looped_rank not in self._svar:
            raise KeyError(f"label {label!r} has no selector (not self-looped)")
        return self._svar[looped_rank]

    def var_semantics(self) -> Dict[int, Tuple[Any, ...]]:
        """``var -> ("s", label)`` or ``("u", tuple index, config labels)``."""
        return dict(self._semantics)

    def decision_order(self) -> List[int]:
        """Branching order for the bundled DPLL: tuple-cover variables in
        tuple order first, then selectors.  Deciding candidates per tuple
        (with the selectors following by unit propagation) makes the
        search mirror the enumeration engine's per-tuple backtracking;
        branching on selectors first would enumerate clique subsets,
        which is exponentially worse on unsatisfiable instances."""
        return self._uvars + [
            self._svar[looped_rank] for looped_rank in self._selfloop_ranks
        ]

    def maximal_cliques(self) -> List[FrozenSet[Any]]:
        """Maximal self-looped cliques, in the engine's search order.

        Bron–Kerbosch with pivoting over integer ranks; the result is
        sorted by ``(-size, rank tuple)``.  Ranks follow
        :func:`~repro.utils.multiset.label_sort_key` order, so this is
        the *same* clique sequence
        :func:`repro.roundelim.zero_round.find_zero_round_algorithm`
        iterates — computed without re-deriving a single sort key.
        """
        adjacency: Dict[int, FrozenSet[int]] = {}
        for vertex in self._selfloop_ranks:
            adjacency[vertex] = frozenset(
                other
                for other in self._selfloop_ranks
                if other != vertex
                and (
                    (vertex, other) if vertex < other else (other, vertex)
                )
                in self._adjacent
            )
        cliques: List[Tuple[int, ...]] = []

        def expand(grown: set, candidates: set, excluded: set) -> None:
            if not candidates and not excluded:
                cliques.append(tuple(sorted(grown)))
                return
            pivot = max(
                candidates | excluded,
                key=lambda vertex: (len(adjacency[vertex] & candidates), -vertex),
            )
            for vertex in sorted(candidates - adjacency[pivot]):
                expand(
                    grown | {vertex},
                    candidates & adjacency[vertex],
                    excluded & adjacency[vertex],
                )
                candidates = candidates - {vertex}
                excluded = excluded | {vertex}

        if self._selfloop_ranks:
            expand(set(), set(self._selfloop_ranks), set())
        cliques.sort(key=lambda ranks: (-len(ranks), ranks))
        return [
            frozenset(self._labels[item] for item in ranks) for ranks in cliques
        ]

    def assumptions_excluding(self, clique: Iterable[Any]) -> List[int]:
        """Assumption literals restricting selectors to ``clique``."""
        keep = self._clique_ranks(clique)
        return [
            -self._svar[looped_rank]
            for looped_rank in self._selfloop_ranks
            if looped_rank not in keep
        ]

    def first_uncoverable(
        self, clique: Iterable[Any]
    ) -> Optional[Tuple[int, Tuple[Any, ...]]]:
        """The oracle-order first input tuple ``clique`` cannot cover.

        Scans the precomputed candidate table in the exact order
        :func:`repro.verify.refute.uncoverable_tuple` enumerates, so the
        returned ``(degree, input tuple)`` witness is identical.
        """
        keep = self._clique_ranks(clique)
        for degree, input_tuple, candidates in self._tuples:
            if not any(support <= keep for _, support in candidates):
                return degree, input_tuple
        return None

    def _clique_ranks(self, clique: Iterable[Any]) -> FrozenSet[int]:
        ranks = set()
        for label in clique:
            looped_rank = self._rank.get(label)
            if looped_rank is not None:
                ranks.add(looped_rank)
        return frozenset(ranks)

    # ------------------------------------------------------------- decoding
    def decode_clique(self, model: Dict[int, bool]) -> FrozenSet[Any]:
        """Validate a model and return the selected clique as labels.

        The model is *never* trusted: this re-checks assignment totality,
        satisfaction of every clause, pairwise edge-compatibility of the
        selected labels, and full tuple cover — each independently of the
        solver.  Any failure raises :exc:`SatDecodeError` (the dispatch
        falls back to enumeration rather than propagate a bad witness).
        """
        for variable in range(1, self.formula.num_vars + 1):
            if variable not in model:
                raise SatDecodeError(f"model leaves variable {variable} unassigned")
        if not self.formula.satisfied_by(model):
            raise SatDecodeError("model does not satisfy the formula")
        selected = [
            looped_rank
            for looped_rank in self._selfloop_ranks
            if model[self._svar[looped_rank]]
        ]
        for index, rank_a in enumerate(selected):
            for rank_b in selected[index + 1 :]:
                if (rank_a, rank_b) not in self._adjacent:
                    raise SatDecodeError(
                        f"decoded labels {self._labels[rank_a]!r} and "
                        f"{self._labels[rank_b]!r} are not edge-compatible"
                    )
        clique = frozenset(self._labels[looped_rank] for looped_rank in selected)
        uncovered = self.first_uncoverable(clique)
        if uncovered is not None:
            raise SatDecodeError(
                f"decoded clique does not cover input tuple {uncovered[1]!r} "
                f"at degree {uncovered[0]}"
            )
        return clique

    def __repr__(self) -> str:
        return (
            f"ZeroRoundEncoder(problem={self.problem.name!r}, "
            f"selectors={len(self._svar)}, tuples={self.num_tuples}, "
            f"formula={self.formula!r})"
        )
