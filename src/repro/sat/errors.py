"""Exception vocabulary of the SAT decision-kernel backend.

Every condition under which the SAT path declines to answer is a distinct
:class:`SatError` subclass, and all of them share one contract with
:exc:`repro.roundelim.bitset.BitsetUnsupported`: they are raised *before*
the dispatching caller records a served step, so the caller can fall back
to the enumeration oracle cleanly and count the event as a
``sat_fallbacks`` stat.  None of these errors ever escapes a public
decision API — the enumeration path answers instead.
"""

from __future__ import annotations


class SatError(Exception):
    """Base class: the SAT backend cannot (or must not) answer this call."""


class SatUnsupported(SatError):
    """The problem shape exceeds the encoder's declared limits.

    Raised before any clause is trusted or any stats/budget mutation, so
    oversized instances (high node degrees, combinatorial tuple blow-ups)
    deterministically take the enumeration path.
    """


class SatBudgetExceeded(SatError):
    """A solver call exhausted its step budget or wall-clock timeout."""


class SatDecodeError(SatError):
    """A solver model failed validation against the encoding semantics.

    The decoder never trusts a model: it re-checks totality, clause
    satisfaction, and the *semantic* zero-round conditions (self-looped
    clique, full tuple cover) independently.  Any discrepancy — including
    a disagreement between a SAT verdict and the enumeration cross-check —
    raises this, which the dispatch converts into an enumeration fallback
    rather than a wrong answer.
    """
