"""A bundled, dependency-free DPLL solver with incremental assumptions.

This is the fallback engine behind :class:`repro.sat.solver.SatSolver`
when ``pysat`` is not installed — which the repository treats as the
*normal* situation: the image bakes in no SAT dependency, CI runs one leg
explicitly without ``pysat``, and the differential harness pins this
solver's answers to the enumeration oracle bit-for-bit.

Design points:

* **two-watched-literal propagation** — the only part that matters for
  speed on the clique-cover formulas, whose clauses are mostly binary
  implications;
* **chronological backtracking, no clause learning** — the instances are
  tiny (hundreds of variables) and determinism is worth more than CDCL
  sophistication here;
* **deterministic search order** — decisions pick the first unassigned
  variable of a static order (the caller's ``decision_order``, defaulting
  to variable index), *negative* phase first, so the same formula
  explores the same tree in every process.  The encoder passes its
  tuple-cover variables first; deciding them off until a cover clause
  unit-forces one on makes the search walk candidate choices tuple by
  tuple — the enumeration engine's own backtracking shape — instead of
  exponentially enumerating selector subsets;
* **incremental assumptions** — :meth:`DpllSolver.solve` takes a list of
  assumption literals enqueued as unflippable decision levels, and the
  solver object can be re-queried with different assumptions (watch lists
  persist; the trail is rewound to level 0 between calls), which is how
  the dispatch asks "is this particular clique enough?" per maximal
  clique without re-encoding;
* **budgets, not hangs** — a step counter (decisions + propagated
  literals) raises :exc:`~repro.sat.errors.SatBudgetExceeded` past
  ``max_steps``, and an optional ``interrupt`` callback (polled every
  few hundred steps) lets the driver impose a wall-clock deadline without
  this module ever reading a clock itself.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sat.cnf import CnfFormula
from repro.sat.errors import SatBudgetExceeded

#: Default step budget: generous for the decision kernels (whose formulas
#: solve in well under a thousand steps) while still bounding a
#: pathological instance to well under a second of pure-Python search.
DEFAULT_MAX_STEPS = 2_000_000

#: How many steps pass between polls of the driver's interrupt callback.
_INTERRUPT_POLL_MASK = 0x1FF


class DpllSolver:
    """Deterministic DPLL over a fixed :class:`CnfFormula`."""

    def __init__(
        self,
        formula: CnfFormula,
        max_steps: Optional[int] = None,
        interrupt: Optional[Callable[[], bool]] = None,
        decision_order: Optional[Sequence[int]] = None,
    ) -> None:
        self.num_vars = formula.num_vars
        self.max_steps = DEFAULT_MAX_STEPS if max_steps is None else max_steps
        self._interrupt = interrupt
        order = list(decision_order) if decision_order is not None else []
        known = set(order)
        if any(var < 1 or var > self.num_vars for var in order):
            raise ValueError("decision_order names an unallocated variable")
        order.extend(
            var for var in range(1, self.num_vars + 1) if var not in known
        )
        self._decision_order = order
        self._steps = 0
        #: 0 = unassigned, +1 = true, -1 = false; index 0 unused.
        self._assign: List[int] = [0] * (self.num_vars + 1)
        self._trail: List[int] = []
        self._level_starts: List[int] = []
        #: clause id -> mutable literal list; positions 0/1 are watched.
        self._clauses: List[List[int]] = []
        #: literal -> clause ids currently watching it.
        self._watches: Dict[int, List[int]] = {}
        self._initial_units: List[int] = []
        self._root_conflict = False
        self._root_propagated = False
        for clause in formula.clauses:
            if not clause:
                self._root_conflict = True
                continue
            if len(clause) == 1:
                self._initial_units.append(clause[0])
                continue
            index = len(self._clauses)
            self._clauses.append(list(clause))
            self._watches.setdefault(clause[0], []).append(index)
            self._watches.setdefault(clause[1], []).append(index)

    # ------------------------------------------------------------ accounting
    @property
    def steps(self) -> int:
        """Decisions + propagated literals across all queries so far."""
        return self._steps

    def _bump(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise SatBudgetExceeded(
                f"DPLL exceeded its step budget ({self.max_steps})"
            )
        if (
            self._interrupt is not None
            and self._steps & _INTERRUPT_POLL_MASK == 0
            and self._interrupt()
        ):
            raise SatBudgetExceeded("DPLL interrupted (wall-clock deadline)")

    # ------------------------------------------------------------- assignment
    def _value(self, literal: int) -> int:
        value = self._assign[abs(literal)]
        if value == 0:
            return 0
        return 1 if (value > 0) == (literal > 0) else -1

    def _enqueue(self, literal: int) -> bool:
        """Assign ``literal`` true; False when it is already false."""
        current = self._value(literal)
        if current != 0:
            return current > 0
        self._bump()
        self._assign[abs(literal)] = 1 if literal > 0 else -1
        self._trail.append(literal)
        return True

    def _new_level(self) -> None:
        self._level_starts.append(len(self._trail))

    def _cancel_to(self, level: int) -> None:
        """Rewind the trail so only ``level`` decision levels remain."""
        if len(self._level_starts) <= level:
            return
        start = self._level_starts[level]
        for literal in self._trail[start:]:
            self._assign[abs(literal)] = 0
        del self._trail[start:]
        del self._level_starts[level:]

    # ------------------------------------------------------------ propagation
    def _propagate(self, head: int) -> bool:
        """Watched-literal unit propagation from trail position ``head``.

        Returns False on conflict.
        """
        while head < len(self._trail):
            false_literal = -self._trail[head]
            head += 1
            watching = self._watches.get(false_literal)
            if not watching:
                continue
            retained: List[int] = []
            for scan, clause_id in enumerate(watching):
                clause = self._clauses[clause_id]
                # Normalize: keep the false literal at position 1.
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._value(other) == 1:
                    retained.append(clause_id)
                    continue
                moved = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) != -1:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause_id)
                        moved = True
                        break
                if moved:
                    continue
                retained.append(clause_id)
                if not self._enqueue(other):
                    retained.extend(watching[scan + 1 :])
                    self._watches[false_literal] = retained
                    return False
            self._watches[false_literal] = retained
        return True

    def _propagate_roots(self) -> bool:
        """Enqueue the formula's unit clauses at level 0 (once)."""
        if self._root_conflict:
            return False
        if self._root_propagated:
            return True
        head = len(self._trail)
        for literal in self._initial_units:
            if not self._enqueue(literal):
                self._root_conflict = True
                return False
        if not self._propagate(head):
            self._root_conflict = True
            return False
        self._root_propagated = True
        return True

    # ------------------------------------------------------------------ solve
    def solve(
        self, assumptions: Sequence[int] = ()
    ) -> Optional[Dict[int, bool]]:
        """A total model as ``{var: bool}``, or ``None`` when UNSAT.

        ``assumptions`` are literals held true for this query only; a
        conflict forced by them (directly or via propagation) yields
        ``None`` without disturbing later queries.
        """
        self._cancel_to(0)
        if not self._propagate_roots():
            return None
        for literal in assumptions:
            current = self._value(literal)
            if current == 1:
                continue
            if current == -1:
                return None
            self._new_level()
            head = len(self._trail)
            if not self._enqueue(literal) or not self._propagate(head):
                return None
        base_levels = len(self._level_starts)
        # (decision literal, tried-both-phases) per search level.
        decisions: List[Tuple[int, bool]] = []
        while True:
            variable = self._next_unassigned()
            if variable is None:
                model = {
                    var: self._assign[var] > 0
                    for var in range(1, self.num_vars + 1)
                }
                self._cancel_to(base_levels)
                return model
            self._new_level()
            head = len(self._trail)
            self._enqueue(-variable)
            decisions.append((-variable, False))
            while not self._propagate(head):
                while decisions and decisions[-1][1]:
                    decisions.pop()
                if not decisions:
                    self._cancel_to(base_levels)
                    return None
                flipped = -decisions[-1][0]
                decisions[-1] = (flipped, True)
                self._cancel_to(base_levels + len(decisions) - 1)
                self._new_level()
                head = len(self._trail)
                self._enqueue(flipped)

    def _next_unassigned(self) -> Optional[int]:
        for variable in self._decision_order:
            if self._assign[variable] == 0:
                return variable
        return None


def solve_formula(
    formula: CnfFormula,
    assumptions: Iterable[int] = (),
    max_steps: Optional[int] = None,
) -> Optional[Dict[int, bool]]:
    """One-shot convenience wrapper used by tests."""
    return DpllSolver(formula, max_steps=max_steps).solve(tuple(assumptions))
