"""The solver driver: pysat when installed, bundled DPLL otherwise.

:class:`SatSolver` is the only object the decision-kernel dispatch talks
to.  It owns backend selection (``REPRO_SAT_SOLVER``: ``auto`` prefers an
installed ``pysat``, ``pysat`` requires it, ``dpll`` forces the bundled
solver), the per-call wall-clock deadline (``REPRO_SAT_TIMEOUT``), and
incremental assumption queries against one loaded formula.

The repository has **no hard SAT dependency**: ``pysat`` is probed lazily
and its absence is not an error — the DPLL fallback is the normal,
CI-exercised path.  Whatever backend answers, the model surface is the
same (``{var: bool}``, total over the formula's variables), so the
decoder's validation in :mod:`repro.sat.encode` is engine-blind.

A deadline trip raises :exc:`~repro.sat.errors.SatBudgetExceeded`; the
dispatch converts that into an enumeration fallback (counted as
``sat_fallbacks``), so a slow solver call can delay an answer but never
change it.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, Optional, Sequence

from repro.sat.cnf import CnfFormula
from repro.sat.dpll import DpllSolver
from repro.sat.errors import SatBudgetExceeded, SatUnsupported
from repro.utils import env

logger = logging.getLogger(__name__)

_ENV_SOLVER = "REPRO_SAT_SOLVER"
_ENV_TIMEOUT = "REPRO_SAT_TIMEOUT"

_VALID_MODES = ("auto", "pysat", "dpll")


#: Memoized pysat probe: ``None`` before the first attempt, ``False`` when
#: the import failed (the normal, dependency-free situation), else the
#: solver class.  A failed import costs a full importlib walk, so probing
#: once per process instead of once per query matters to the benchmarks.
_pysat_probe: Any = None


def _pysat_class() -> Optional[Any]:
    """The preferred pysat solver class, or ``None`` when not installed."""
    global _pysat_probe
    if _pysat_probe is None:
        try:
            from pysat.solvers import Glucose3  # type: ignore[import-not-found]

            _pysat_probe = Glucose3  # pragma: no cover - needs pysat
        except Exception:
            _pysat_probe = False
    return _pysat_probe or None


class SatSolver:
    """One loaded formula, queryable under different assumption sets."""

    def __init__(
        self,
        formula: CnfFormula,
        max_steps: Optional[int] = None,
        timeout: Optional[float] = None,
        decision_order: Optional[Sequence[int]] = None,
    ) -> None:
        mode = (env.get_str(_ENV_SOLVER) or "auto").strip().lower()
        if mode not in _VALID_MODES:
            raise SatUnsupported(
                f"unknown {_ENV_SOLVER} value {mode!r}; expected one of {_VALID_MODES}"
            )
        self.timeout = env.get_float(_ENV_TIMEOUT) if timeout is None else timeout
        self.num_vars = formula.num_vars
        self._pysat: Any = None
        self._dpll: Optional[DpllSolver] = None
        self._deadline: Optional[float] = None
        if mode in ("auto", "pysat"):
            solver_class = _pysat_class()
            if solver_class is not None:  # pragma: no cover - needs pysat
                self._pysat = solver_class(
                    bootstrap_with=[list(c) for c in formula.clauses if c]
                )
                self._pysat_unsat = any(not c for c in formula.clauses)
                self.backend = "pysat"
                return
            if mode == "pysat":
                raise SatUnsupported(
                    "REPRO_SAT_SOLVER=pysat but pysat is not installed"
                )
        self._dpll = DpllSolver(
            formula,
            max_steps=max_steps,
            interrupt=self._past_deadline,
            decision_order=decision_order,
        )
        self.backend = "dpll"

    # ----------------------------------------------------------- deadline
    def _past_deadline(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    def _arm_deadline(self) -> None:
        if self.timeout is not None:
            self._deadline = time.monotonic() + self.timeout

    # -------------------------------------------------------------- solve
    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
        """A total model, or ``None`` when UNSAT under ``assumptions``.

        Raises :exc:`SatBudgetExceeded` when the step budget or the
        wall-clock deadline trips first.
        """
        self._arm_deadline()
        if self._dpll is not None:
            return self._dpll.solve(tuple(assumptions))
        return self._solve_pysat(assumptions)  # pragma: no cover - needs pysat

    def _solve_pysat(
        self, assumptions: Sequence[int]
    ) -> Optional[Dict[int, bool]]:  # pragma: no cover - needs pysat
        if self._pysat_unsat:
            return None
        if self.timeout is not None:
            timer = threading.Timer(self.timeout, self._pysat.interrupt)
            timer.start()
            try:
                answer = self._pysat.solve_limited(
                    assumptions=list(assumptions), expect_interrupt=True
                )
            finally:
                timer.cancel()
            if answer is None:
                self._pysat.clear_interrupt()
                raise SatBudgetExceeded(
                    f"pysat exceeded the {self.timeout}s deadline"
                )
        else:
            answer = self._pysat.solve(assumptions=list(assumptions))
        if not answer:
            return None
        model: Dict[int, bool] = {
            abs(literal): literal > 0 for literal in self._pysat.get_model()
        }
        # Variables absent from every clause are unconstrained; pysat may
        # omit them.  Default them False, matching the DPLL decision
        # phase, so both backends decode to the same witness.
        for variable in range(1, self.num_vars + 1):
            model.setdefault(variable, False)
        return model

    # ---------------------------------------------------------- lifecycle
    @property
    def steps(self) -> int:
        """Search steps spent so far (DPLL backend only; 0 under pysat)."""
        return self._dpll.steps if self._dpll is not None else 0

    def close(self) -> None:
        if self._pysat is not None:  # pragma: no cover - needs pysat
            self._pysat.delete()
            self._pysat = None

    def __enter__(self) -> "SatSolver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
