"""Empirical complexity landscapes (Figure 1): growth fitting and reports."""

from repro.landscape.fit import (
    GROWTH_SHAPES,
    FitResult,
    fit_growth,
)
from repro.landscape.report import (
    ClassificationPanel,
    LandscapePanel,
    QuarantinedRow,
    SeriesRow,
    VerdictRow,
    classify_constant_time,
)

__all__ = [
    "GROWTH_SHAPES",
    "FitResult",
    "fit_growth",
    "LandscapePanel",
    "QuarantinedRow",
    "SeriesRow",
    "ClassificationPanel",
    "VerdictRow",
    "classify_constant_time",
]
